//! The wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one JSON value on one line, terminated by `\n` — the
//! [`most_testkit::ser`] encoding of a [`Request`] (client → server) or a
//! [`Response`] (server → client).  Each request frame produces exactly one
//! reply frame; [`Response::Delta`] and [`Response::Lagged`] frames are
//! *pushed* by the server between replies, so clients must be prepared to
//! receive them at any point (see `most_server::client`).
//!
//! Malformed input never kills a session: an oversized line, invalid
//! UTF-8, or unparseable JSON produces a structured [`Response::Error`]
//! frame and the connection stays usable ([`FrameReader`] re-synchronises
//! at the next newline).  Blank lines are keep-alives and produce no
//! reply.

use most_core::UpdateOp;
use most_dbms::value::Value;
use most_ftl::answer::Answer;
use most_hist::RegionCount;
use most_temporal::{Interval, Tick};
use most_testkit::ser::{to_json_string, Json, ToJson};
use std::io::{self, Read};

/// Default cap on a single request line, in bytes (a line longer than this
/// is consumed and answered with [`ErrorCode::FrameTooLong`]).
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024;

/// A client request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; replied with [`Response::Pong`].
    Ping,
    /// The current clock tick.
    Now,
    /// Advance the database clock by `ticks`.
    AdvanceClock {
        /// How many ticks to advance.
        ticks: u64,
    },
    /// Evaluate an instantaneous query (FTL text) against the current
    /// state; replied with the full [`Answer`] in global ticks.
    Instantaneous {
        /// FTL query text (`RETRIEVE ... WHERE ...`).
        query: String,
    },
    /// Evaluate a persistent query anchored at `origin` against the
    /// recorded history.
    Persistent {
        /// FTL query text.
        query: String,
        /// Anchor tick (must not lie in the future).
        origin: Tick,
    },
    /// Register a continuous query; replied with its id.
    Register {
        /// FTL query text.
        query: String,
    },
    /// Cancel a registered continuous query.
    Cancel {
        /// Continuous-query id from [`Response::Registered`].
        cq: u64,
    },
    /// Subscribe this session to a continuous query: the reply carries the
    /// current display, and every later display change is pushed as a
    /// [`Response::Delta`].
    Subscribe {
        /// Continuous-query id.
        cq: u64,
    },
    /// Stop receiving deltas for a continuous query.
    Unsubscribe {
        /// Continuous-query id.
        cq: u64,
    },
    /// Apply a batch of explicit updates (one write-lock acquisition and
    /// one refresh pass for the whole batch).
    Update {
        /// The updates, applied in order.
        ops: Vec<UpdateOp>,
    },
    /// A full database snapshot (the `core` snapshot JSON) — the
    /// session-recovery path: a client can restore it locally and replay.
    Snapshot,
    /// Server-side counters.
    Stats,
    /// The committed write-ahead-log records with sequence number
    /// `>= from_seq` — the replica catch-up feed.  Only served by a
    /// durable server ([`crate::Server::bind_durable`]); others reply
    /// [`ErrorCode::NotDurable`].
    Feed {
        /// First sequence number wanted.
        from_seq: u64,
    },
    /// The alibi query against the recorded history: all ticks in
    /// `[begin, end]` at which objects `a` and `b` — each assumed no
    /// faster than `vmax` between recorded samples — could have occupied
    /// the same point.  Replied with [`Response::Alibi`]; objects
    /// without at least two usable history samples in the range draw
    /// [`ErrorCode::NoHistory`].
    Alibi {
        /// First object id.
        a: u64,
        /// Second object id.
        b: u64,
        /// Speed bound (distance per tick) for both objects.
        vmax: f64,
        /// First tick of the query range (inclusive).
        begin: Tick,
        /// Last tick of the query range (inclusive).
        end: Tick,
    },
    /// Warehouse aggregates over the recorded history: for every
    /// aggregate window overlapping `[begin, end]`, the `k` busiest
    /// regions by distinct-object count.  Replied with
    /// [`Response::Aggregate`].
    Aggregate {
        /// First tick of the range (inclusive).
        begin: Tick,
        /// Last tick of the range (inclusive).
        end: Tick,
        /// How many regions per window to return.
        k: u64,
    },
}

most_testkit::json_enum!(Request {
    Ping,
    Now,
    AdvanceClock { ticks },
    Instantaneous { query },
    Persistent { query, origin },
    Register { query },
    Cancel { cq },
    Subscribe { cq },
    Unsubscribe { cq },
    Update { ops },
    Snapshot,
    Stats,
    Feed { from_seq },
    Alibi { a, b, vmax, begin, end },
    Aggregate { begin, end, k },
});

/// Machine-readable error categories carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line exceeded the frame cap; it was consumed up to the
    /// next newline and the session stays alive.
    FrameTooLong,
    /// The request line was not valid UTF-8.
    InvalidUtf8,
    /// The request line was not valid JSON.
    BadJson,
    /// The JSON did not decode into a [`Request`] (unknown variant,
    /// missing field, wrong type) or a request argument was out of range.
    BadRequest,
    /// The FTL query text failed to parse.
    Parse,
    /// Query evaluation failed.
    Eval,
    /// The continuous-query id is unknown (or not subscribed).
    UnknownCq,
    /// Advancing the clock would overflow the tick domain.
    ClockOverflow,
    /// An update batch was rejected (prior ops in the batch stay applied,
    /// matching [`most_core::Database::apply_updates`] semantics).
    Rejected,
    /// The request needs a durable (WAL-backed) server — e.g.
    /// [`Request::Feed`] on an in-memory one.
    NotDurable,
    /// The requested feed start predates the checkpoint horizon: those
    /// records were pruned with the segments the checkpoint covered.
    /// Bootstrap from [`Request::Snapshot`] and resume the feed from
    /// the horizon sequence carried in the error message.
    FeedPruned,
    /// The write-ahead log failed; the mutation was not applied.
    Wal,
    /// An alibi query named an object with fewer than two usable history
    /// samples in the range — nothing is recorded to testify about.
    NoHistory,
    /// The server's pending-connection queue is full; retry later.
    Busy,
    /// The server is shutting down.
    ShuttingDown,
    /// An internal server error (e.g. an unencodable reply).
    Internal,
}

most_testkit::json_enum!(ErrorCode {
    FrameTooLong,
    InvalidUtf8,
    BadJson,
    BadRequest,
    Parse,
    Eval,
    UnknownCq,
    ClockOverflow,
    Rejected,
    NotDurable,
    FeedPruned,
    Wal,
    NoHistory,
    Busy,
    ShuttingDown,
    Internal,
});

/// An incremental display change for a subscribed continuous query: the
/// rows that entered and left the display at `tick`, relative to the last
/// frame the subscriber was sent ([`Response::Subscribed`] carries the
/// baseline).  Produced by [`most_core::display_delta`].
#[derive(Debug, Clone, PartialEq)]
pub struct CqDelta {
    /// Continuous-query id.
    pub cq: u64,
    /// Clock tick of the new display.
    pub tick: Tick,
    /// Rows newly in the display.
    pub added: Vec<Vec<Value>>,
    /// Rows no longer in the display.
    pub removed: Vec<Vec<Value>>,
}

most_testkit::json_struct!(CqDelta { cq, tick, added, removed });

/// One committed write-ahead-log record in a [`Response::Feed`] frame.
/// The record travels as its canonical JSON text — the identical bytes
/// the WAL frames on disk — so a replica applies exactly what the
/// primary logged.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedRecord {
    /// Global WAL sequence number.
    pub seq: u64,
    /// The `most_core::wal::WalRecord`, JSON-encoded.
    pub record: String,
}

most_testkit::json_struct!(FeedRecord { seq, record });

/// One aggregate window's busiest regions in a [`Response::Aggregate`]
/// frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCounts {
    /// Start tick of the window (covers `window` ticks from here).
    pub start: Tick,
    /// The busiest regions, count-descending, ties by name.
    pub counts: Vec<RegionCount>,
}

most_testkit::json_struct!(WindowCounts { start, counts });

/// A server frame: the reply to a request, or a pushed notification.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Now`] / [`Request::AdvanceClock`].
    Tick {
        /// The current clock tick.
        now: Tick,
    },
    /// Reply to [`Request::Instantaneous`] / [`Request::Persistent`].
    Answer {
        /// Clock tick at evaluation time.
        now: Tick,
        /// The answer, in global ticks.
        answer: Answer,
    },
    /// Reply to [`Request::Register`].
    Registered {
        /// The continuous-query id.
        cq: u64,
    },
    /// Reply to [`Request::Cancel`].
    Cancelled {
        /// The cancelled id.
        cq: u64,
    },
    /// Reply to [`Request::Subscribe`]: the display baseline deltas build
    /// on.
    Subscribed {
        /// The continuous-query id.
        cq: u64,
        /// Clock tick of the baseline display.
        tick: Tick,
        /// The current display rows.
        rows: Vec<Vec<Value>>,
    },
    /// Reply to [`Request::Unsubscribe`].
    Unsubscribed {
        /// The continuous-query id.
        cq: u64,
    },
    /// Reply to [`Request::Update`].
    Applied {
        /// Number of ops applied.
        count: u64,
    },
    /// Reply to [`Request::Snapshot`]: the database serialized with
    /// `most-testkit` JSON, restorable via
    /// `from_json_str::<most_core::Database>`.
    Db {
        /// The snapshot text.
        json: String,
    },
    /// Reply to [`Request::Stats`].
    Stats {
        /// Request frames handled (including malformed ones).
        requests: u64,
        /// Error frames sent.
        errors: u64,
        /// Delta frames produced.
        deltas: u64,
        /// Delta frames dropped by outbox backpressure.
        dropped: u64,
        /// Connections rejected with [`ErrorCode::Busy`].
        busy: u64,
        /// Sessions currently open.
        sessions: u64,
    },
    /// Reply to [`Request::Feed`]: the committed WAL suffix requested.
    Feed {
        /// The sequence number to ask from next (one past the last
        /// record returned; equal to `from_seq` when nothing new).
        next_seq: u64,
        /// The committed records, in sequence order.
        records: Vec<FeedRecord>,
    },
    /// Reply to [`Request::Alibi`]: the meet-possible tick intervals.
    Alibi {
        /// Clock tick at evaluation time.
        now: Tick,
        /// Ticks at which the two objects could have met, as disjoint
        /// sorted intervals.
        meets: Vec<Interval>,
    },
    /// Reply to [`Request::Aggregate`]: per-window busiest regions.
    Aggregate {
        /// Clock tick at evaluation time.
        now: Tick,
        /// The aggregate window width in ticks.
        window: u64,
        /// One entry per overlapping window with recorded activity, in
        /// start-tick order.
        tops: Vec<WindowCounts>,
    },
    /// Pushed: an incremental display change for a subscription.
    Delta(CqDelta),
    /// Pushed: this session's outbox overflowed and `dropped` delta frames
    /// (cumulative total) were discarded.  The subscription baseline is
    /// stale — re-subscribe to resynchronise.
    Lagged {
        /// Cumulative dropped-frame count for this session.
        dropped: u64,
    },
    /// A structured error; the session stays alive.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

most_testkit::json_enum!(Response {
    Pong,
    Tick { now },
    Answer { now, answer },
    Registered { cq },
    Cancelled { cq },
    Subscribed { cq, tick, rows },
    Unsubscribed { cq },
    Applied { count },
    Db { json },
    Stats { requests, errors, deltas, dropped, busy, sessions },
    Feed { next_seq, records },
    Alibi { now, meets },
    Aggregate { now, window, tops },
    Delta(delta),
    Lagged { dropped },
    Error { code, message },
});

/// Why an incoming line could not be turned into a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// The line exceeded the frame cap.
    TooLong,
    /// The line was not valid UTF-8.
    InvalidUtf8,
    /// The line was not valid JSON.
    BadJson(String),
    /// The JSON did not decode into the expected frame type.
    BadFrame(String),
}

impl FrameError {
    /// The structured error frame a server sends for this failure.
    pub fn to_response(&self) -> Response {
        let (code, message) = match self {
            FrameError::TooLong => {
                (ErrorCode::FrameTooLong, "request line exceeds frame cap".to_owned())
            }
            FrameError::InvalidUtf8 => {
                (ErrorCode::InvalidUtf8, "request line is not valid UTF-8".to_owned())
            }
            FrameError::BadJson(m) => (ErrorCode::BadJson, m.clone()),
            FrameError::BadFrame(m) => (ErrorCode::BadRequest, m.clone()),
        };
        Response::Error { code, message }
    }
}

/// Encodes one frame: the JSON text plus the terminating newline.
///
/// Encoding only fails on non-finite floats; should a reply ever contain
/// one, an [`ErrorCode::Internal`] error frame (always encodable) is sent
/// in its place rather than killing the session.
pub fn encode_frame<T: ToJson>(v: &T) -> String {
    match to_json_string(v) {
        Ok(mut s) => {
            s.push('\n');
            s
        }
        Err(e) => {
            let fallback = Response::Error {
                code: ErrorCode::Internal,
                message: format!("unencodable frame: {e}"),
            };
            let mut s = to_json_string(&fallback).expect("error frame encodes");
            s.push('\n');
            s
        }
    }
}

/// Decodes a request line (newline already stripped).
pub fn decode_request(line: &str) -> Result<Request, FrameError> {
    decode_frame(line)
}

/// Decodes a response line (newline already stripped).
pub fn decode_response(line: &str) -> Result<Response, FrameError> {
    decode_frame(line)
}

fn decode_frame<T: most_testkit::ser::FromJson>(line: &str) -> Result<T, FrameError> {
    // Parse first so a syntax error and a schema mismatch report
    // different codes.
    let json = Json::parse(line).map_err(|e| FrameError::BadJson(e.to_string()))?;
    T::from_json(&json).map_err(|e| FrameError::BadFrame(e.to_string()))
}

/// Incremental line framing over a raw byte stream.
///
/// Keeps partial-line state across calls, so it composes with a read
/// timeout on the underlying socket: a `WouldBlock`/`TimedOut` error
/// surfaces from [`FrameReader::next_frame`] without losing buffered
/// bytes, and the caller simply retries.
///
/// A line longer than `max` bytes is discarded up to its terminating
/// newline and reported as [`FrameError::TooLong`] — the stream stays in
/// sync and the next line parses normally.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    pending: Vec<u8>,
    overflow: bool,
    max: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream with a frame cap of `max` bytes per line.
    pub fn new(inner: R, max: usize) -> Self {
        FrameReader { inner, pending: Vec::new(), overflow: false, max }
    }

    /// The underlying stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// The next line: `Ok(None)` at end of stream, `Ok(Some(Err(..)))` for
    /// a malformed line (stream still usable), I/O errors (including read
    /// timeouts) passed through.  Blank lines are skipped.
    pub fn next_frame(&mut self) -> io::Result<Option<Result<String, FrameError>>> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if std::mem::take(&mut self.overflow) || line.len() > self.max {
                    return Ok(Some(Err(FrameError::TooLong)));
                }
                if line.is_empty() {
                    continue; // blank keep-alive
                }
                return Ok(Some(match String::from_utf8(line) {
                    Ok(s) => Ok(s),
                    Err(_) => Err(FrameError::InvalidUtf8),
                }));
            }
            // No newline buffered: everything pending belongs to one
            // still-incomplete line.  Past the cap, drop the bytes and
            // remember to report the line as oversized once it ends.
            if self.pending.len() > self.max || self.overflow {
                if self.pending.len() > self.max {
                    self.overflow = true;
                }
                self.pending.clear();
            }
            let mut chunk = [0u8; 4096];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                return Ok(None);
            }
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frames = [
            Request::Ping,
            Request::AdvanceClock { ticks: 7 },
            Request::Instantaneous { query: "RETRIEVE o WHERE true".into() },
            Request::Persistent { query: "RETRIEVE o WHERE true".into(), origin: 3 },
            Request::Update {
                ops: vec![UpdateOp::Static {
                    id: 1,
                    attr: "PRICE".into(),
                    value: Value::from(9.5),
                }],
            },
            Request::Snapshot,
            Request::Alibi { a: 1, b: 2, vmax: 1.5, begin: 0, end: 99 },
            Request::Aggregate { begin: 10, end: 50, k: 3 },
        ];
        for f in frames {
            let line = encode_frame(&f);
            assert!(line.ends_with('\n'));
            assert_eq!(decode_request(line.trim_end()).unwrap(), f, "{line}");
        }
        let responses = [
            Response::Delta(CqDelta {
                cq: 2,
                tick: 10,
                added: vec![vec![Value::Id(1)]],
                removed: vec![],
            }),
            Response::Alibi { now: 40, meets: vec![Interval::new(3, 9), Interval::new(20, 20)] },
            Response::Aggregate {
                now: 40,
                window: 16,
                tops: vec![WindowCounts {
                    start: 16,
                    counts: vec![RegionCount { region: "downtown".into(), count: 4 }],
                }],
            },
        ];
        for resp in responses {
            let line = encode_frame(&resp);
            assert_eq!(decode_response(line.trim_end()).unwrap(), resp);
        }
    }

    #[test]
    fn decode_distinguishes_syntax_and_schema_errors() {
        assert!(matches!(decode_request("{\"Ping\""), Err(FrameError::BadJson(_))));
        assert!(matches!(decode_request("{\"Nope\":1}"), Err(FrameError::BadFrame(_))));
        assert!(matches!(
            decode_request("{\"AdvanceClock\":{\"ticks\":\"x\"}}"),
            Err(FrameError::BadFrame(_))
        ));
    }

    #[test]
    fn frame_reader_splits_lines_and_skips_blanks() {
        let data = b"\"Ping\"\n\r\n\"Now\"\r\n".to_vec();
        let mut r = FrameReader::new(&data[..], 64);
        assert_eq!(r.next_frame().unwrap().unwrap().unwrap(), "\"Ping\"");
        assert_eq!(r.next_frame().unwrap().unwrap().unwrap(), "\"Now\"");
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_reader_recovers_from_oversized_line() {
        let mut data = vec![b'x'; 100];
        data.extend_from_slice(b"\n\"Ping\"\n");
        let mut r = FrameReader::new(&data[..], 16);
        assert_eq!(r.next_frame().unwrap().unwrap(), Err(FrameError::TooLong));
        assert_eq!(r.next_frame().unwrap().unwrap().unwrap(), "\"Ping\"");
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_reader_reports_invalid_utf8_per_line() {
        let data = b"\xff\xfe\n\"Ping\"\n".to_vec();
        let mut r = FrameReader::new(&data[..], 64);
        assert_eq!(r.next_frame().unwrap().unwrap(), Err(FrameError::InvalidUtf8));
        assert_eq!(r.next_frame().unwrap().unwrap().unwrap(), "\"Ping\"");
    }

    #[test]
    fn frame_reader_drops_unterminated_tail() {
        let data = b"\"Ping\"\n\"Partial".to_vec();
        let mut r = FrameReader::new(&data[..], 64);
        assert_eq!(r.next_frame().unwrap().unwrap().unwrap(), "\"Ping\"");
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn malformed_frames_map_to_structured_errors() {
        for (fe, code) in [
            (FrameError::TooLong, ErrorCode::FrameTooLong),
            (FrameError::InvalidUtf8, ErrorCode::InvalidUtf8),
            (FrameError::BadJson("x".into()), ErrorCode::BadJson),
            (FrameError::BadFrame("x".into()), ErrorCode::BadRequest),
        ] {
            match fe.to_response() {
                Response::Error { code: c, .. } => assert_eq!(c, code),
                other => panic!("expected error frame, got {other:?}"),
            }
        }
    }
}
