//! A deterministic closed-loop load generator with a single-threaded
//! oracle.
//!
//! Three harnesses, used by experiments E12 and E15:
//!
//! * [`run_correctness`] — one driver client performs a seeded, scripted
//!   mutation sequence while N passive subscriber clients each hold a
//!   subscription to every continuous query.  Because every mutation and
//!   its delta fan-out serialise through the server's mutation-order lock,
//!   each subscriber must receive *exactly* the delta sequence a
//!   single-threaded replay of the same script against a plain
//!   [`Database`] produces — byte-identical frames, zero losses.  The
//!   fence is the wire protocol itself: the driver's final reply proves
//!   all deltas were enqueued, and each subscriber's ping reply proves its
//!   own outbox (FIFO) was drained past them.
//! * [`run_throughput`] — N closed-loop reader clients each issue a fixed
//!   number of instantaneous queries while a driver applies update
//!   batches; wall-clock throughput and client-observed latency are
//!   measured, and afterwards a fresh client's answers are compared
//!   byte-for-byte against an oracle replay (reads must not corrupt
//!   anything).
//! * [`run_crash_recovery`] — a *durable* server runs the first half of
//!   the script, crashes mid-run (its WAL even gains a torn tail), is
//!   recovered with [`DurableDb::open`], and a second server finishes the
//!   script.  The final state must match an oracle that never crashed,
//!   byte for byte, and the recovered engine's epoch accounting must
//!   still conserve (`created == retired + live`).
//!
//! Everything is a pure function of the spec (object placement, region
//! grid, query texts, per-tick update batches), so same-seed runs are
//! reproducible end to end.

use crate::client::Client;
use crate::protocol::CqDelta;
use crate::server::{Server, ServerConfig};
use most_core::wal::{DurableDb, WalConfig};
use most_core::{Database, SharedDatabase, UpdateOp};
use most_dbms::value::Value;
use most_ftl::Query;
use most_spatial::{Point, Polygon, Velocity};
use most_testkit::rng::Rng;
use most_testkit::ser::to_json_string;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload shape shared by both harnesses.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Passive subscriber clients (correctness phase).
    pub subscribers: usize,
    /// Continuous queries registered (and subscribed to).
    pub queries: usize,
    /// Moving objects.
    pub objects: usize,
    /// Side length of the square world.
    pub area: f64,
    /// Scripted ticks: each tick advances the clock by one and applies one
    /// update batch.
    pub ticks: u64,
    /// Updates per batch.
    pub batch: usize,
    /// Workload seed.
    pub seed: u64,
}

impl LoadSpec {
    /// A small default workload.
    pub fn small(seed: u64) -> Self {
        LoadSpec {
            subscribers: 2,
            queries: 4,
            objects: 40,
            area: 400.0,
            ticks: 6,
            batch: 8,
            seed,
        }
    }
}

/// Outcome of the correctness harness.  `mismatches == 0`, `dropped == 0`
/// and `lagged == 0` are the assertions CI gates on.
#[derive(Debug, Clone)]
pub struct CorrectnessOutcome {
    /// Client-side request count across all clients.
    pub requests: u64,
    /// Delta frames the oracle produced (per subscriber).
    pub oracle_deltas: usize,
    /// Delta frames each subscriber received (index = subscriber).
    pub received_deltas: Vec<usize>,
    /// Subscriber delta frames differing from the oracle sequence
    /// (byte-compared as JSON).
    pub mismatches: usize,
    /// Server-side dropped-frame count.
    pub dropped: u64,
    /// Max cumulative lag reported to any subscriber.
    pub lagged: u64,
    /// Wall-clock time for the scripted phase.
    pub elapsed: Duration,
}

/// Builds the seeded world: objects on the square with seeded positions,
/// velocities and a PRICE attribute, plus a grid of named regions
/// `R0..R{queries-1}`.
pub fn build_world(spec: &LoadSpec) -> Database {
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut db = Database::new(100_000);
    for _ in 0..spec.objects {
        let x = rng.f64() * spec.area;
        let y = rng.f64() * spec.area;
        let vx = rng.f64() * 4.0 - 2.0;
        let vy = rng.f64() * 4.0 - 2.0;
        let id = db.insert_moving_object("cars", Point::new(x, y), Velocity::new(vx, vy));
        let price = (40.0 + rng.f64() * 120.0).round();
        db.set_static(id, "PRICE", Value::from(price)).expect("open class admits PRICE");
    }
    // A horizontal band per query, tiling the world so displays are
    // neither empty nor everything.
    let bands = spec.queries.max(1) as f64;
    for k in 0..spec.queries {
        let y0 = spec.area * k as f64 / bands;
        let y1 = spec.area * (k as f64 + 1.0) / bands;
        db.add_region(format!("R{k}"), Polygon::rectangle(0.0, y0, spec.area, y1));
    }
    db
}

/// The continuous-query texts, mixing spatial, attribute, and temporal
/// shapes.
pub fn query_texts(spec: &LoadSpec) -> Vec<String> {
    (0..spec.queries)
        .map(|k| match k % 3 {
            0 => format!("RETRIEVE o WHERE INSIDE(o, R{k})"),
            1 => format!("RETRIEVE o WHERE o.PRICE <= {}", 70 + 20 * (k % 4)),
            _ => format!("RETRIEVE o WHERE Eventually within 40 INSIDE(o, R{k})"),
        })
        .collect()
}

/// The scripted update batch for tick `t` — a pure function of
/// `(spec.seed, t)`: odd ticks re-aim motion vectors, even ticks re-price.
pub fn script_ops(object_ids: &[u64], spec: &LoadSpec, t: u64) -> Vec<UpdateOp> {
    let n = object_ids.len() as u64;
    (0..spec.batch as u64)
        .map(|i| {
            let id = object_ids[((spec.seed ^ (t * 7 + i * 13)) % n) as usize];
            if t % 2 == 1 {
                let vx = ((t * 31 + i * 17) % 100) as f64 / 25.0 - 2.0;
                let vy = ((t * 19 + i * 23) % 100) as f64 / 25.0 - 2.0;
                UpdateOp::Motion { id, velocity: Velocity::new(vx, vy) }
            } else {
                let price = (40 + (t * 11 + i * 29) % 120) as f64;
                UpdateOp::Static { id, attr: "PRICE".into(), value: Value::from(price) }
            }
        })
        .collect()
}

/// Replays one oracle step: the displays that changed since `last`, in
/// ascending cq order — exactly what the server pushes per mutation.
fn oracle_step(
    db: &Database,
    cq_ids: &[u64],
    last: &mut BTreeMap<u64, Vec<Vec<Value>>>,
    out: &mut Vec<CqDelta>,
) {
    let now = db.now();
    for &cq in cq_ids {
        let rows = db.continuous_display(cq, now).expect("oracle cq exists");
        let prev = last.get(&cq).expect("baseline recorded at subscribe");
        let (added, removed) = most_core::display_delta(prev, &rows);
        if added.is_empty() && removed.is_empty() {
            continue;
        }
        out.push(CqDelta { cq, tick: now, added, removed });
        last.insert(cq, rows);
    }
}

/// Runs the correctness harness against a fresh server on an ephemeral
/// port.  Panics on any client/server failure; disagreement with the
/// oracle is *reported*, not panicked, so the caller can assert with
/// context.
pub fn run_correctness(spec: &LoadSpec) -> CorrectnessOutcome {
    let db = build_world(spec);
    let mut oracle = db.clone();
    let cfg = ServerConfig {
        // Every client gets a worker so none waits in the pending queue.
        workers: spec.subscribers + 2,
        outbox: 1 << 16,
        ..ServerConfig::default()
    };
    let shared = SharedDatabase::new(db);
    let server =
        Server::bind("127.0.0.1:0", shared.clone(), cfg).expect("bind ephemeral port");
    let addr: SocketAddr = server.local_addr();
    let mut requests = 0u64;

    // The driver registers the continuous queries over the wire; the
    // oracle registers the same texts in the same order, so ids match.
    let mut driver = Client::connect(addr).expect("driver connects");
    let texts = query_texts(spec);
    let mut cq_ids = Vec::with_capacity(texts.len());
    for q in &texts {
        cq_ids.push(driver.register(q).expect("register over the wire"));
        requests += 1;
    }
    let oracle_ids: Vec<u64> = texts
        .iter()
        .map(|q| {
            oracle
                .register_continuous(Query::parse(q).expect("query parses"))
                .expect("oracle registers")
        })
        .collect();
    assert_eq!(cq_ids, oracle_ids, "wire and oracle assign the same cq ids");

    // Subscribers connect sequentially and subscribe to every query; the
    // baselines must equal the oracle's current displays.
    let mut oracle_last: BTreeMap<u64, Vec<Vec<Value>>> = BTreeMap::new();
    for &cq in &cq_ids {
        let rows = oracle.continuous_display(cq, oracle.now()).expect("oracle display");
        oracle_last.insert(cq, rows);
    }
    let mut subscribers: Vec<Client> = Vec::with_capacity(spec.subscribers);
    for _ in 0..spec.subscribers {
        let mut c = Client::connect(addr).expect("subscriber connects");
        for &cq in &cq_ids {
            let (_tick, rows) = c.subscribe(cq).expect("subscribe");
            requests += 1;
            assert_eq!(
                rows, oracle_last[&cq],
                "subscription baseline equals the oracle display"
            );
        }
        subscribers.push(c);
    }

    // The scripted phase: advance + batch per tick, mirrored on the
    // oracle.  Deltas may arise from both the clock advance (displays
    // change with time, no update needed — the MOST hallmark) and the
    // batch refresh.
    let object_ids = oracle.object_ids();
    let mut oracle_deltas: Vec<CqDelta> = Vec::new();
    let start = Instant::now();
    for t in 1..=spec.ticks {
        driver.advance(1).expect("advance clock");
        requests += 1;
        oracle.advance_clock(1);
        oracle_step(&oracle, &cq_ids, &mut oracle_last, &mut oracle_deltas);
        let ops = script_ops(&object_ids, spec, t);
        driver.update(&ops).expect("apply update batch");
        requests += 1;
        oracle.apply_updates(&ops).expect("oracle applies batch");
        oracle_step(&oracle, &cq_ids, &mut oracle_last, &mut oracle_deltas);
    }
    let elapsed = start.elapsed();

    // Fence + compare: the driver's last reply proves every delta was
    // enqueued; each subscriber's ping reply proves its FIFO outbox
    // drained past them.
    let mut received_deltas = Vec::with_capacity(subscribers.len());
    let mut mismatches = 0usize;
    let mut lagged = 0u64;
    for c in &mut subscribers {
        c.ping().expect("fence ping");
        requests += 1;
        let got = c.take_deltas();
        received_deltas.push(got.len());
        lagged = lagged.max(c.lagged());
        for (g, want) in got.iter().zip(oracle_deltas.iter()) {
            let g_json = to_json_string(g).expect("delta encodes");
            let w_json = to_json_string(want).expect("delta encodes");
            if g_json != w_json {
                mismatches += 1;
            }
        }
        mismatches += got.len().abs_diff(oracle_deltas.len());
    }

    // Epoch hygiene at quiescence: every mutation published exactly one
    // epoch, nothing stayed buffered, and with no request in flight only
    // the published snapshot is alive (`created == retired + live`).
    let st = shared.epoch_stats();
    assert_eq!(st.created, st.retired + st.live, "epoch accounting leak: {st:?}");
    assert_eq!(st.live, 1, "server retained old epochs: {st:?}");
    assert_eq!(st.pending_batches, 0, "server left a batch buffered: {st:?}");

    let dropped = server.stats().dropped;
    drop(subscribers);
    drop(driver);
    server.shutdown();
    CorrectnessOutcome {
        requests,
        oracle_deltas: oracle_deltas.len(),
        received_deltas,
        mismatches,
        dropped,
        lagged,
        elapsed,
    }
}

/// Throughput harness shape.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputSpec {
    /// Closed-loop reader clients.
    pub readers: usize,
    /// Instantaneous queries each reader issues.
    pub requests_per_reader: usize,
    /// Update batches the driver applies concurrently.
    pub update_batches: u64,
    /// Workload shape (objects/queries/area/batch/seed reused).
    pub load: LoadSpec,
}

/// Outcome of the throughput harness.
#[derive(Debug, Clone)]
pub struct ThroughputOutcome {
    /// Total requests completed (reads + driver traffic).
    pub requests: u64,
    /// Wall-clock time for the concurrent phase.
    pub elapsed: Duration,
    /// Median client-observed request latency.
    pub p50: Duration,
    /// 95th-percentile client-observed request latency.
    pub p95: Duration,
    /// Whether the post-run state matched the oracle replay byte for byte.
    pub verified: bool,
}

/// Runs the throughput harness: concurrent readers + one mutating driver,
/// then a byte-identical state check against an oracle replay.
pub fn run_throughput(spec: &ThroughputSpec) -> ThroughputOutcome {
    let db = build_world(&spec.load);
    let mut oracle = db.clone();
    let cfg = ServerConfig {
        workers: spec.readers + 2,
        outbox: 1 << 16,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", SharedDatabase::new(db), cfg)
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    let texts = query_texts(&spec.load);
    let object_ids = oracle.object_ids();

    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut driver_requests = 0u64;
    std::thread::scope(|scope| {
        let mut readers = Vec::with_capacity(spec.readers);
        for r in 0..spec.readers {
            let texts = texts.clone();
            readers.push(scope.spawn(move || {
                let mut c = Client::connect(addr).expect("reader connects");
                let mut lats = Vec::with_capacity(spec.requests_per_reader);
                for i in 0..spec.requests_per_reader {
                    let q = &texts[(r + i) % texts.len()];
                    let t0 = Instant::now();
                    c.instantaneous(q).expect("instantaneous read");
                    lats.push(t0.elapsed().as_nanos() as u64);
                }
                lats
            }));
        }
        // The driver mutates from this thread while readers run.
        let mut driver = Client::connect(addr).expect("driver connects");
        for t in 1..=spec.update_batches {
            driver.advance(1).expect("advance clock");
            let ops = script_ops(&object_ids, &spec.load, t);
            driver.update(&ops).expect("apply update batch");
            driver_requests += 2;
        }
        for r in readers {
            latencies.extend(r.join().expect("reader thread"));
        }
    });
    let elapsed = start.elapsed();

    // Oracle replay of the driver's (deterministic) mutations; reads must
    // not have perturbed anything, so a fresh client's answers match byte
    // for byte.
    for t in 1..=spec.update_batches {
        oracle.advance_clock(1);
        oracle.apply_updates(&script_ops(&object_ids, &spec.load, t)).expect("oracle batch");
    }
    let mut check = Client::connect(addr).expect("check client connects");
    let mut verified = true;
    for q in &texts {
        let (_, answer) = check.instantaneous(q).expect("check read");
        let want = oracle
            .instantaneous_readonly(&Query::parse(q).expect("query parses"))
            .expect("oracle read");
        let got_json = to_json_string(&answer).expect("answer encodes");
        let want_json = to_json_string(&want).expect("answer encodes");
        if got_json != want_json {
            verified = false;
        }
    }

    latencies.sort_unstable();
    let pick = |p: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        Duration::from_nanos(latencies[idx])
    };
    let outcome = ThroughputOutcome {
        requests: latencies.len() as u64 + driver_requests + texts.len() as u64,
        elapsed,
        p50: pick(0.50),
        p95: pick(0.95),
        verified,
    };
    drop(check);
    server.shutdown();
    outcome
}

/// Outcome of the crash-recovery harness.  `verified` and
/// `epoch_conserved` are the assertions CI gates on.
#[derive(Debug, Clone)]
pub struct CrashRecoveryOutcome {
    /// Client-side request count across both server incarnations.
    pub requests: u64,
    /// WAL records recovery replayed after the crash.
    pub records_replayed: u64,
    /// Whether recovery detected (and stopped at) the torn tail.
    pub truncated_tail: bool,
    /// Whether every post-run answer and the database fingerprint matched
    /// the never-crashed oracle byte for byte.
    pub verified: bool,
    /// Whether the recovered engine's epoch accounting conserved at
    /// quiescence (`created == retired + live`, one live snapshot).
    pub epoch_conserved: bool,
    /// Wall-clock time for both scripted phases (excludes recovery).
    pub elapsed: Duration,
}

/// Runs the scripted workload against a durable server, crashes it
/// halfway (leaving a torn frame on the WAL tail), recovers into a second
/// server, finishes the script, and verifies the final state against an
/// oracle that never crashed.  `dir` is the WAL directory; the caller
/// picks a unique path per invocation.
pub fn run_crash_recovery(spec: &LoadSpec, dir: &Path) -> CrashRecoveryOutcome {
    let _ = std::fs::remove_dir_all(dir);
    let db = build_world(spec);
    let mut oracle = db.clone();
    let cfg = ServerConfig { workers: 2, outbox: 1 << 16, ..ServerConfig::default() };
    let durable = Arc::new(
        DurableDb::create(dir, db, WalConfig::default()).expect("create WAL directory"),
    );
    let server = Server::bind_durable("127.0.0.1:0", Arc::clone(&durable), cfg.clone())
        .expect("bind ephemeral port");
    let mut requests = 0u64;

    let mut driver = Client::connect(server.local_addr()).expect("driver connects");
    let texts = query_texts(spec);
    for q in &texts {
        driver.register(q).expect("register over the wire");
        oracle
            .register_continuous(Query::parse(q).expect("query parses"))
            .expect("oracle registers");
        requests += 1;
    }

    let object_ids = oracle.object_ids();
    let crash_tick = (spec.ticks / 2).max(1).min(spec.ticks);
    let start = Instant::now();
    for t in 1..=crash_tick {
        driver.advance(1).expect("advance clock");
        oracle.advance_clock(1);
        let ops = script_ops(&object_ids, spec, t);
        driver.update(&ops).expect("apply update batch");
        oracle.apply_updates(&ops).expect("oracle applies batch");
        requests += 2;
    }
    let mut pre_crash = start.elapsed();

    // Crash: the server dies with the driver mid-session, and the last
    // WAL write tears — a frame header promising 200 bytes backed by 4.
    drop(driver);
    server.shutdown();
    drop(durable);
    let newest = newest_segment(dir);
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&newest)
            .expect("open newest segment");
        let mut torn = Vec::new();
        torn.extend_from_slice(&200u32.to_le_bytes());
        torn.extend_from_slice(&0u64.to_le_bytes());
        torn.extend_from_slice(b"torn");
        f.write_all(&torn).expect("append torn frame");
    }

    // Recover and finish the script on a second server incarnation.
    let (recovered, recovery) =
        DurableDb::open(dir, WalConfig::default()).expect("recovery succeeds");
    let recovered = Arc::new(recovered);
    let server =
        Server::bind_durable("127.0.0.1:0", Arc::clone(&recovered), cfg.clone())
            .expect("bind ephemeral port after recovery");
    let mut driver = Client::connect(server.local_addr()).expect("driver reconnects");
    let resume = Instant::now();
    for t in crash_tick + 1..=spec.ticks {
        driver.advance(1).expect("advance clock");
        oracle.advance_clock(1);
        let ops = script_ops(&object_ids, spec, t);
        driver.update(&ops).expect("apply update batch");
        oracle.apply_updates(&ops).expect("oracle applies batch");
        requests += 2;
    }
    pre_crash += resume.elapsed();

    // Verify: every instantaneous answer byte-identical to the oracle,
    // and the whole engine state fingerprint-identical.
    let mut check = Client::connect(server.local_addr()).expect("check client connects");
    let mut verified = true;
    for q in &texts {
        let (_, answer) = check.instantaneous(q).expect("check read");
        requests += 1;
        let want = oracle
            .instantaneous_readonly(&Query::parse(q).expect("query parses"))
            .expect("oracle read");
        let got_json = to_json_string(&answer).expect("answer encodes");
        let want_json = to_json_string(&want).expect("answer encodes");
        if got_json != want_json {
            verified = false;
        }
    }
    if recovered.pin().fingerprint() != oracle.fingerprint() {
        verified = false;
    }

    // Epoch hygiene on the *recovered* engine at quiescence: recovery
    // replay plus every post-crash mutation published exactly one epoch
    // each, nothing stayed buffered, one snapshot alive.
    drop(check);
    drop(driver);
    server.shutdown();
    let st = recovered.epochs().stats();
    let epoch_conserved =
        st.created == st.retired + st.live && st.live == 1 && st.pending_batches == 0;

    let outcome = CrashRecoveryOutcome {
        requests,
        records_replayed: recovery.records_replayed,
        truncated_tail: recovery.truncated_tail,
        verified,
        epoch_conserved,
        elapsed: pre_crash,
    };
    let _ = std::fs::remove_dir_all(dir);
    outcome
}

/// The highest-numbered WAL segment in `dir` — where a torn tail lands.
fn newest_segment(dir: &Path) -> std::path::PathBuf {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .expect("read WAL directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("a durable run leaves at least one segment")
}
