//! The in-crate client: a blocking, closed-loop counterpart to the wire
//! protocol.
//!
//! One request is in flight at a time; pushed [`Response::Delta`] /
//! [`Response::Lagged`] frames that arrive while waiting for a reply are
//! buffered ([`Client::take_deltas`], [`Client::lagged`]) rather than
//! confused with it.  Between requests, [`Client::poll_pushed`] drains
//! pushes with a bounded wait.

use crate::protocol::{
    decode_response, encode_frame, CqDelta, ErrorCode, FeedRecord, FrameReader, Request,
    Response, DEFAULT_MAX_FRAME,
};
use most_core::{Database, UpdateOp};
use most_dbms::value::Value;
use most_ftl::answer::Answer;
use most_temporal::Tick;
use most_testkit::ser::from_json_str;
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent a frame this client could not decode.
    Frame(String),
    /// The server replied with a structured error.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server replied with a well-formed frame of the wrong kind.
    Unexpected(String),
    /// The connection closed while a reply was pending.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(m) => write!(f, "bad frame from server: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code:?}]: {message}")
            }
            ClientError::Unexpected(m) => write!(f, "unexpected reply: {m}"),
            ClientError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// The backoff schedule [`connect_with_retry`] sleeps through, computed
/// as a pure function of the seed so tests can assert it exactly.
///
/// Full jitter over an exponentially growing window (the AWS
/// architecture-blog shape): retry `i` sleeps a uniformly random
/// duration in `[0, min(base · 2^i, cap)]`.  A fixed cadence makes every
/// client that failed together retry together — each round of the
/// thundering herd arrives still synchronised; jitter decorrelates
/// them, and seeding keeps the schedule reproducible.
pub fn backoff_delays(seed: u64, attempts: u32, base: Duration, cap: Duration) -> Vec<Duration> {
    let mut rng = most_testkit::rng::Rng::seed_from_u64(seed);
    let mut window = base;
    let mut out = Vec::new();
    for _ in 1..attempts.max(1) {
        let ceil = window.min(cap).as_nanos() as u64;
        out.push(Duration::from_nanos(rng.random_range(0..=ceil)));
        window = window.saturating_mul(2);
    }
    out
}

/// Connects with seeded exponential backoff and **full jitter**, so
/// tests and tools racing a just-spawned server never flake on the
/// accept path and a fleet of clients never retries in lockstep.
/// `attempts` bounds the tries; sleeps follow
/// [`backoff_delays`]`(seed, attempts, 1ms, 100ms)`.
pub fn connect_with_retry_seeded(
    addr: SocketAddr,
    attempts: u32,
    seed: u64,
) -> io::Result<TcpStream> {
    let delays =
        backoff_delays(seed, attempts, Duration::from_millis(1), Duration::from_millis(100));
    let mut last = io::Error::new(io::ErrorKind::TimedOut, "no connect attempts made");
    for attempt in 0..attempts.max(1) as usize {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = e,
        }
        if let Some(d) = delays.get(attempt) {
            std::thread::sleep(*d);
        }
    }
    Err(last)
}

/// [`connect_with_retry_seeded`] with a seed derived from the target
/// address and process id — distinct processes (and distinct targets)
/// jitter differently without any caller-side plumbing.
pub fn connect_with_retry(addr: SocketAddr, attempts: u32) -> io::Result<TcpStream> {
    let mut key = format!("{addr}|{}", std::process::id()).into_bytes();
    key.extend_from_slice(&attempts.to_le_bytes());
    connect_with_retry_seeded(addr, attempts, most_testkit::hash::fnv1a64(&key))
}

/// A connected client session.
#[derive(Debug)]
pub struct Client {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
    deltas: Vec<CqDelta>,
    lagged: u64,
}

impl Client {
    /// Connects (with retry) to a server.
    pub fn connect(addr: SocketAddr) -> ClientResult<Client> {
        let stream = connect_with_retry(addr, 20)?;
        Client::from_stream(stream)
    }

    /// Wraps an established connection.
    pub fn from_stream(stream: TcpStream) -> ClientResult<Client> {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(None)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: FrameReader::new(stream, DEFAULT_MAX_FRAME),
            writer,
            deltas: Vec::new(),
            lagged: 0,
        })
    }

    /// Sends a request and blocks for its reply, buffering any pushed
    /// frames that arrive in between.
    pub fn request(&mut self, req: &Request) -> ClientResult<Response> {
        self.writer.write_all(encode_frame(req).as_bytes())?;
        loop {
            match self.reader.next_frame() {
                Err(e) => return Err(ClientError::Io(e)),
                Ok(None) => return Err(ClientError::Closed),
                Ok(Some(Err(fe))) => return Err(ClientError::Frame(format!("{fe:?}"))),
                Ok(Some(Ok(line))) => {
                    let resp = decode_response(&line)
                        .map_err(|fe| ClientError::Frame(format!("{fe:?}")))?;
                    match resp {
                        Response::Delta(d) => self.deltas.push(d),
                        Response::Lagged { dropped } => self.lagged = self.lagged.max(dropped),
                        other => return Ok(other),
                    }
                }
            }
        }
    }

    /// Drains pushed frames for up to `wait`, without sending anything.
    /// Returns how many pushes (deltas + lag markers) arrived.
    pub fn poll_pushed(&mut self, wait: Duration) -> ClientResult<usize> {
        self.reader.get_ref().set_read_timeout(Some(wait))?;
        let mut got = 0usize;
        let result = loop {
            match self.reader.next_frame() {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break Ok(got);
                }
                Err(e) => break Err(ClientError::Io(e)),
                Ok(None) => break if got > 0 { Ok(got) } else { Err(ClientError::Closed) },
                Ok(Some(Err(fe))) => break Err(ClientError::Frame(format!("{fe:?}"))),
                Ok(Some(Ok(line))) => {
                    let resp = decode_response(&line)
                        .map_err(|fe| ClientError::Frame(format!("{fe:?}")))?;
                    match resp {
                        Response::Delta(d) => {
                            self.deltas.push(d);
                            got += 1;
                        }
                        Response::Lagged { dropped } => {
                            self.lagged = self.lagged.max(dropped);
                            got += 1;
                        }
                        other => {
                            break Err(ClientError::Unexpected(format!("{other:?}")));
                        }
                    }
                }
            }
        };
        self.reader.get_ref().set_read_timeout(None)?;
        result
    }

    /// Takes the buffered pushed deltas, in arrival order.
    pub fn take_deltas(&mut self) -> Vec<CqDelta> {
        std::mem::take(&mut self.deltas)
    }

    /// The highest cumulative dropped-frame count the server has reported
    /// for this session (0 = no backpressure loss).
    pub fn lagged(&self) -> u64 {
        self.lagged
    }

    fn unexpected<T>(resp: Response) -> ClientResult<T> {
        match resp {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Self::unexpected(other),
        }
    }

    /// The server's current clock tick.
    pub fn now(&mut self) -> ClientResult<Tick> {
        match self.request(&Request::Now)? {
            Response::Tick { now } => Ok(now),
            other => Self::unexpected(other),
        }
    }

    /// Advances the clock; returns the new tick.
    pub fn advance(&mut self, ticks: u64) -> ClientResult<Tick> {
        match self.request(&Request::AdvanceClock { ticks })? {
            Response::Tick { now } => Ok(now),
            other => Self::unexpected(other),
        }
    }

    /// Evaluates an instantaneous query; returns `(now, answer)`.
    pub fn instantaneous(&mut self, query: &str) -> ClientResult<(Tick, Answer)> {
        match self.request(&Request::Instantaneous { query: query.to_owned() })? {
            Response::Answer { now, answer } => Ok((now, answer)),
            other => Self::unexpected(other),
        }
    }

    /// Evaluates a persistent query anchored at `origin`.
    pub fn persistent(&mut self, query: &str, origin: Tick) -> ClientResult<(Tick, Answer)> {
        match self.request(&Request::Persistent { query: query.to_owned(), origin })? {
            Response::Answer { now, answer } => Ok((now, answer)),
            other => Self::unexpected(other),
        }
    }

    /// Registers a continuous query; returns its id.
    pub fn register(&mut self, query: &str) -> ClientResult<u64> {
        match self.request(&Request::Register { query: query.to_owned() })? {
            Response::Registered { cq } => Ok(cq),
            other => Self::unexpected(other),
        }
    }

    /// Cancels a continuous query.
    pub fn cancel(&mut self, cq: u64) -> ClientResult<()> {
        match self.request(&Request::Cancel { cq })? {
            Response::Cancelled { .. } => Ok(()),
            other => Self::unexpected(other),
        }
    }

    /// Subscribes to a continuous query; returns the baseline
    /// `(tick, display rows)` future deltas build on.
    pub fn subscribe(&mut self, cq: u64) -> ClientResult<(Tick, Vec<Vec<Value>>)> {
        match self.request(&Request::Subscribe { cq })? {
            Response::Subscribed { tick, rows, .. } => Ok((tick, rows)),
            other => Self::unexpected(other),
        }
    }

    /// Unsubscribes from a continuous query.
    pub fn unsubscribe(&mut self, cq: u64) -> ClientResult<()> {
        match self.request(&Request::Unsubscribe { cq })? {
            Response::Unsubscribed { .. } => Ok(()),
            other => Self::unexpected(other),
        }
    }

    /// Applies a batch of updates; returns how many ops applied.
    pub fn update(&mut self, ops: &[UpdateOp]) -> ClientResult<u64> {
        match self.request(&Request::Update { ops: ops.to_vec() })? {
            Response::Applied { count } => Ok(count),
            other => Self::unexpected(other),
        }
    }

    /// Fetches and restores a full database snapshot — the
    /// session-recovery path (the spatial index is not serialized; re-enable
    /// it after restoring if needed).
    pub fn snapshot(&mut self) -> ClientResult<Database> {
        match self.request(&Request::Snapshot)? {
            Response::Db { json } => {
                from_json_str(&json).map_err(|e| ClientError::Frame(e.to_string()))
            }
            other => Self::unexpected(other),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> ClientResult<Response> {
        match self.request(&Request::Stats)? {
            s @ Response::Stats { .. } => Ok(s),
            other => Self::unexpected(other),
        }
    }

    /// Fetches the committed WAL records with `seq >= from_seq` from a
    /// durable server — the replica catch-up feed.  Returns
    /// `(next_seq, records)`; poll again from `next_seq` to tail the
    /// log.  A `from_seq` below the server's checkpoint horizon fails
    /// with [`ErrorCode::FeedPruned`]: those records were pruned, so
    /// bootstrap from [`Client::snapshot`] and resume from the horizon
    /// instead of tailing into a permanent gap.
    pub fn feed(&mut self, from_seq: u64) -> ClientResult<(u64, Vec<FeedRecord>)> {
        match self.request(&Request::Feed { from_seq })? {
            Response::Feed { next_seq, records } => Ok((next_seq, records)),
            other => Self::unexpected(other),
        }
    }

    /// The alibi query: all ticks in `[begin, end]` at which objects `a`
    /// and `b` — each assumed no faster than `vmax` between their
    /// recorded samples — could have occupied the same point.  Returns
    /// `(now, meet-possible intervals)`; an empty vector is a proven
    /// alibi over the range.  Fails with [`ErrorCode::NoHistory`] when
    /// either object lacks two usable samples in the range.
    pub fn alibi(
        &mut self,
        a: u64,
        b: u64,
        vmax: f64,
        begin: Tick,
        end: Tick,
    ) -> ClientResult<(Tick, Vec<most_temporal::Interval>)> {
        match self.request(&Request::Alibi { a, b, vmax, begin, end })? {
            Response::Alibi { now, meets } => Ok((now, meets)),
            other => Self::unexpected(other),
        }
    }

    /// Warehouse aggregates: the top-`k` busiest regions of every
    /// history window overlapping `[begin, end]`.  Returns
    /// `(now, window width, per-window counts)` in ascending window
    /// order.
    pub fn aggregate(
        &mut self,
        begin: Tick,
        end: Tick,
        k: u64,
    ) -> ClientResult<(Tick, u64, Vec<crate::protocol::WindowCounts>)> {
        match self.request(&Request::Aggregate { begin, end, k })? {
            Response::Aggregate { now, window, tops } => Ok((now, window, tops)),
            other => Self::unexpected(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_windowed() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(100);
        let a = backoff_delays(42, 12, base, cap);
        let b = backoff_delays(42, 12, base, cap);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 11, "one sleep between each pair of attempts");
        // Every delay fits its attempt's jitter window [0, min(base·2^i, cap)].
        for (i, d) in a.iter().enumerate() {
            let window = base.saturating_mul(2u32.saturating_pow(i as u32)).min(cap);
            assert!(*d <= window, "delay {i} = {d:?} exceeds window {window:?}");
        }
        // Different seeds produce different schedules (jitter is real).
        let c = backoff_delays(43, 12, base, cap);
        assert_ne!(a, c, "distinct seeds must decorrelate retries");
    }

    #[test]
    fn backoff_edge_cases() {
        assert!(backoff_delays(7, 0, Duration::from_millis(1), Duration::from_millis(10))
            .is_empty());
        assert!(backoff_delays(7, 1, Duration::from_millis(1), Duration::from_millis(10))
            .is_empty());
        // Zero base: windows are all zero, every delay is zero.
        let z = backoff_delays(7, 5, Duration::ZERO, Duration::from_millis(10));
        assert!(z.iter().all(|d| *d == Duration::ZERO));
    }
}
