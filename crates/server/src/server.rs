//! The serving layer: acceptor, bounded worker pool, per-session state.
//!
//! ```text
//! acceptor thread ──try_send──▶ bounded queue ──recv──▶ worker pool
//!                     │                                    │ one session
//!                     └─ full: Busy frame, close            ▼ at a time
//!                                         reader loop ── handle ── reply
//!                                              │                     │
//!                                              ▼                     ▼
//!                                        per-session subs      bounded outbox ──▶ writer thread
//! ```
//!
//! Every mutating request (`AdvanceClock`, `Update`, `Register`, `Cancel`,
//! `Subscribe`, `Unsubscribe`) serialises through one mutex so that
//! subscription deltas form a single global sequence: after each mutation
//! the server recomputes every subscribed display under the same lock and
//! enqueues the deltas before the mutator's reply is enqueued.  Because a
//! session's outbox is FIFO, a subscriber that completes any round-trip
//! after a mutation has necessarily drained the deltas that mutation
//! produced — the fence the deterministic load harness builds on.
//!
//! Read-only requests don't even take a lock: each one **pins the
//! published epoch** (`most_core::epoch`) — an `Arc` clone — and answers
//! from that immutable snapshot, so sessions read concurrently with
//! mutations and with the continuous-query refresh they trigger.  Each
//! `Update` batch publishes exactly one epoch (one batch → one refresh
//! pass → one epoch → one delta fan-out), and `notify_subscribers` pins
//! the just-published epoch so every delta in the global sequence is
//! computed from a single consistent state.
//!
//! Backpressure: replies always enqueue (the closed-loop protocol bounds
//! them at one per in-flight request), but pushed delta frames are
//! *droppable* — when a session's outbox is at capacity the delta is
//! counted and discarded, and the writer inserts a [`Response::Lagged`]
//! frame so the client knows its baseline is stale and can re-subscribe.
//! Nothing is ever silently lost.

use crate::protocol::{
    decode_request, encode_frame, CqDelta, ErrorCode, FeedRecord, Request, Response, WindowCounts,
    DEFAULT_MAX_FRAME,
};
use most_core::continuous::display_delta;
use most_core::sharded::{CutPin, ShardedDb};
use most_core::wal::DurableDb;
use most_core::{CoreError, CoreResult, EpochPin, SharedDatabase};
use most_dbms::value::Value;
use most_ftl::answer::Answer;
use most_ftl::Query;
use most_hist::{HistoryConfig, HistoryRecorder};
use most_temporal::{Interval, Tick};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Recovers a mutex from poisoning.  Every structure the server guards
/// this way — outboxes, the session registry, subscription baselines, the
/// parse cache, the mutation-order token — is a plain value that is
/// consistent between operations, so a session thread that panicked while
/// holding the lock must not cascade into killing unrelated sessions (a
/// poisoned-lock `.expect` was exactly that cascade).
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each serves one session at a time).
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before new
    /// ones are rejected with [`ErrorCode::Busy`].
    pub pending: usize,
    /// Per-session outbox capacity for droppable (pushed) frames.
    pub outbox: usize,
    /// Per-line frame cap in bytes.
    pub max_frame: usize,
    /// Socket read timeout — the poll interval at which idle sessions
    /// notice a server shutdown.
    pub read_timeout: Duration,
    /// Fault injection for the panic-safety regression tests: a
    /// `Register` request whose query text contains this marker panics
    /// inside the handler **while holding the mutation-order lock** — the
    /// worst-placed panic a request can produce.  The server must survive
    /// it: the panic is caught at the request boundary, the session gets
    /// an `Internal` error frame, and every lock recovers from poisoning.
    /// Never set outside tests.
    pub panic_trigger: Option<String>,
    /// Sizing knobs for the trajectory history warehouse that records at
    /// the engine's epoch-publish boundary and answers
    /// [`Request::Alibi`] / [`Request::Aggregate`].
    pub history: HistoryConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            pending: 32,
            outbox: 1024,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(20),
            panic_trigger: None,
            history: HistoryConfig::default(),
        }
    }
}

/// The storage engine behind the server: one epoch stream, or N of them
/// behind a cross-shard cut.
#[derive(Debug)]
enum Engine {
    /// A single [`SharedDatabase`], optionally write-ahead logged.
    Single {
        db: SharedDatabase,
        /// When set, every mutation routes through the write-ahead log
        /// before publishing its epoch, and [`Request::Feed`] serves the
        /// committed record sequence.  `db` shares the same epoch engine,
        /// so reads see exactly the logged-then-published states.
        durable: Option<Arc<DurableDb>>,
    },
    /// A partitioned [`ShardedDb`]: mutations apply shard-locally in
    /// parallel, reads pin a whole cross-shard cut.
    Sharded(Arc<ShardedDb>),
}

/// A consistent read view: one pinned epoch or one pinned cut.  All
/// queries in a request answer from the same view.
enum View {
    Single(EpochPin),
    Sharded(CutPin),
}

impl View {
    fn now(&self) -> Tick {
        match self {
            View::Single(pin) => pin.now(),
            View::Sharded(cut) => cut.now(),
        }
    }

    fn instantaneous(&self, q: &Query) -> CoreResult<Answer> {
        match self {
            View::Single(pin) => pin.instantaneous_readonly(q),
            View::Sharded(cut) => cut.instantaneous(q),
        }
    }

    fn persistent_answer(&self, q: &Query, origin: Tick) -> CoreResult<Answer> {
        match self {
            View::Single(pin) => pin.persistent_answer(q, origin),
            View::Sharded(cut) => cut.persistent_answer(q, origin),
        }
    }

    fn continuous_display(&self, cq: u64, at: Tick) -> CoreResult<Vec<Vec<Value>>> {
        match self {
            View::Single(pin) => pin.continuous_display(cq, at),
            View::Sharded(cut) => cut.continuous_display(cq, at),
        }
    }
}

impl Engine {
    fn pin(&self) -> View {
        match self {
            Engine::Single { db, .. } => View::Single(db.pin()),
            Engine::Sharded(s) => View::Sharded(s.pin()),
        }
    }

    fn now(&self) -> Tick {
        self.pin().now()
    }

    fn advance_clock(&self, ticks: u64) -> CoreResult<()> {
        match self {
            Engine::Single { durable: Some(d), .. } => d.advance_clock(ticks),
            Engine::Single { db, .. } => {
                db.advance_clock(ticks);
                Ok(())
            }
            Engine::Sharded(s) => {
                s.advance_clock(ticks);
                Ok(())
            }
        }
    }

    fn apply_updates(&self, ops: &[most_core::UpdateOp]) -> CoreResult<()> {
        match self {
            Engine::Single { durable: Some(d), .. } => d.apply_updates(ops),
            Engine::Single { db, .. } => db.apply_updates(ops),
            Engine::Sharded(s) => s.apply_updates(ops),
        }
    }

    fn register_continuous(&self, text: &str, q: Query) -> CoreResult<u64> {
        match self {
            // The durable path logs the *text* so replay re-parses
            // identically.
            Engine::Single { durable: Some(d), .. } => d.register_continuous(text),
            Engine::Single { db, .. } => db.write(|d| d.register_continuous(q)),
            Engine::Sharded(s) => s.register_continuous(&q),
        }
    }

    fn cancel_continuous(&self, cq: u64) -> CoreResult<()> {
        match self {
            Engine::Single { durable: Some(d), .. } => d.cancel_continuous(cq),
            Engine::Single { db, .. } => db.write(|d| d.cancel_continuous(cq)),
            Engine::Sharded(s) => s.cancel_continuous(cq),
        }
    }

    /// JSON of the full database state as **one** canonical `Database`
    /// object.  The sharded engine merges its cut ([`merged_cut_json`]),
    /// so clients decode the same shape regardless of the engine behind
    /// the server.
    fn snapshot_json(&self) -> Result<String, most_testkit::ser::JsonError> {
        match self {
            Engine::Single { db, .. } => db.read(most_testkit::ser::to_json_string),
            Engine::Sharded(s) => merged_cut_json(&s.pin())?.render(),
        }
    }
}

/// Merges a pinned cross-shard cut into one canonical `Database` JSON
/// object: shard 0 provides the replicated fields (clock, expiration,
/// regions, refresh mode, triggers), object and class entries from every
/// shard are merged in ascending key order, `next_id` is the cross-shard
/// maximum, and the cost counters are summed (each update applies on
/// exactly one shard).  Without registered continuous queries the result
/// is byte-identical to a single-engine snapshot of the same logical
/// state; with CQs, shard 0's registry stands in for the cut (per-shard
/// registries hold shard-local materialized answers — see E16).
fn merged_cut_json(
    cut: &CutPin,
) -> Result<most_testkit::ser::Json, most_testkit::ser::JsonError> {
    use most_core::database::DbStats;
    use most_testkit::ser::{FromJson, Json, JsonError, ToJson};
    let mut template: Vec<(String, Json)> = Vec::new();
    let mut objects: Vec<(String, Json)> = Vec::new();
    let mut classes: Vec<(String, Json)> = Vec::new();
    let mut next_id = 0u64;
    let mut stats = DbStats::default();
    for i in 0..cut.shard_count() {
        let Json::Obj(fields) = cut.shard(i).to_json() else {
            return Err(JsonError::Decode("shard snapshot is not an object".to_owned()));
        };
        for (key, value) in &fields {
            match key.as_str() {
                "objects" => {
                    let Json::Obj(entries) = value else {
                        return Err(JsonError::Decode("shard objects are not a map".to_owned()));
                    };
                    objects.extend(entries.iter().cloned());
                }
                "classes" => {
                    // Classes are auto-created on the shard an object
                    // lands on; the canonical snapshot holds their union
                    // (definitions are pure schema, identical wherever
                    // the class appears).
                    let Json::Obj(entries) = value else {
                        return Err(JsonError::Decode("shard classes are not a map".to_owned()));
                    };
                    for entry in entries {
                        if !classes.iter().any(|(name, _)| name == &entry.0) {
                            classes.push(entry.clone());
                        }
                    }
                }
                "next_id" => next_id = next_id.max(u64::from_json(value)?),
                "stats" => {
                    let s = DbStats::from_json(value)?;
                    stats.updates += s.updates;
                    stats.instantaneous_queries += s.instantaneous_queries;
                }
                _ => {}
            }
        }
        if i == 0 {
            template = fields;
        }
    }
    objects.sort_by_key(|(key, _)| key.parse::<u64>().unwrap_or(u64::MAX));
    classes.sort_by(|(a, _), (b, _)| a.cmp(b));
    for (key, value) in template.iter_mut() {
        match key.as_str() {
            "objects" => *value = Json::Obj(std::mem::take(&mut objects)),
            "classes" => *value = Json::Obj(std::mem::take(&mut classes)),
            "next_id" => *value = next_id.to_json(),
            "stats" => *value = stats.to_json(),
            _ => {}
        }
    }
    Ok(Json::Obj(template))
}

/// A snapshot of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Request frames handled (including malformed ones).
    pub requests: u64,
    /// Error frames sent in reply.
    pub errors: u64,
    /// Delta frames produced for subscribers.
    pub deltas: u64,
    /// Delta frames dropped by outbox backpressure.
    pub dropped: u64,
    /// Connections rejected because the pending queue was full.
    pub busy: u64,
    /// Sessions currently open.
    pub sessions: u64,
    /// Sessions opened over the server's lifetime.
    pub opened: u64,
}

/// Whether a frame made it into a session's outbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushOutcome {
    Queued,
    Dropped,
    Closed,
}

/// Droppable frames waiting for the session's writer thread.
#[derive(Debug, Default)]
struct Outbox {
    queue: VecDeque<String>,
    closed: bool,
    /// A drop happened since the writer last announced it.
    lag_pending: bool,
}

/// Per-connection state.
#[derive(Debug)]
struct Session {
    outbox: Mutex<Outbox>,
    cond: Condvar,
    /// Subscribed continuous queries with the last display each was sent
    /// (the baseline the next delta is computed against).
    subs: Mutex<BTreeMap<u64, Vec<Vec<Value>>>>,
    /// Cumulative delta frames dropped for this session.
    dropped: AtomicU64,
}

impl Session {
    fn new() -> Self {
        Session {
            outbox: Mutex::new(Outbox::default()),
            cond: Condvar::new(),
            subs: Mutex::new(BTreeMap::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Enqueues an encoded frame.  Replies (`droppable = false`) always
    /// queue; pushed frames are discarded (with accounting) when the
    /// outbox is at capacity.
    fn push(&self, frame: String, droppable: bool, cap: usize) -> PushOutcome {
        let mut ob = lock_clean(&self.outbox);
        if ob.closed {
            return PushOutcome::Closed;
        }
        if droppable && ob.queue.len() >= cap {
            ob.lag_pending = true;
            self.dropped.fetch_add(1, Ordering::Relaxed);
            drop(ob);
            self.cond.notify_one();
            return PushOutcome::Dropped;
        }
        ob.queue.push_back(frame);
        let depth = ob.queue.len() as u64;
        drop(ob);
        self.cond.notify_one();
        most_obs::observe("server.outbox.depth", depth);
        most_obs::gauge_max("server.outbox.peak", depth);
        PushOutcome::Queued
    }

    /// Marks the outbox closed; the writer drains what is queued, then
    /// exits.
    fn close(&self) {
        let mut ob = lock_clean(&self.outbox);
        ob.closed = true;
        drop(ob);
        self.cond.notify_all();
    }
}

/// State shared by the acceptor, workers, and the [`Server`] handle.
#[derive(Debug)]
struct Shared {
    engine: Engine,
    cfg: ServerConfig,
    /// Trajectory history warehouse, attached to the engine's
    /// epoch-publish boundary at bind time; answers
    /// [`Request::Alibi`] / [`Request::Aggregate`] without taking the
    /// mutation-order lock.
    hist: Arc<HistoryRecorder>,
    /// Serialises mutation + delta-notification so subscription deltas
    /// form one global sequence.
    sync: Mutex<()>,
    sessions: Mutex<BTreeMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    deltas: AtomicU64,
    dropped: AtomicU64,
    busy: AtomicU64,
    opened: AtomicU64,
    /// Parse-once cache: clients (re)sending the same query text — retried
    /// registrations, fleets of identical subscribers, periodic
    /// instantaneous polls — skip the lexer/parser after the first hit.
    /// Bounded; beyond [`PARSE_CACHE_CAP`] entries new texts parse without
    /// being cached.
    parsed: Mutex<BTreeMap<String, Query>>,
}

/// Upper bound on distinct query texts kept in the parse-once cache.
const PARSE_CACHE_CAP: usize = 1024;

/// A running server.  Dropping the handle shuts it down gracefully:
/// sessions drain their outboxes fully before their connections close, so
/// no queued frame is lost.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stopped: bool,
}

impl Server {
    /// Binds and starts serving.  Bind to port 0 and read the ephemeral
    /// port back with [`Server::local_addr`] — tests must never hard-code
    /// ports.
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: SharedDatabase,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_inner(addr, Engine::Single { db, durable: None }, cfg)
    }

    /// Binds a server over a **sharded** engine: every mutating request
    /// applies shard-locally in parallel and publishes one cross-shard
    /// cut; reads and the delta fan-out pin whole cuts.  [`Request::Feed`]
    /// is rejected with [`ErrorCode::NotDurable`] (the sharded engine has
    /// no write-ahead log yet), and [`Request::Snapshot`] merges the cut
    /// into **one** canonical `Database` JSON object, the same shape a
    /// single-engine server emits.
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        db: Arc<ShardedDb>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_inner(addr, Engine::Sharded(db), cfg)
    }

    /// Binds a **durable** server over a write-ahead-logged database:
    /// every mutating request appends to `durable`'s log before its
    /// epoch publishes, and [`Request::Feed`] serves the committed
    /// record sequence to replicas.  Reads share `durable`'s epoch
    /// engine, so they see exactly the logged states.
    pub fn bind_durable(
        addr: impl ToSocketAddrs,
        durable: Arc<DurableDb>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let db = SharedDatabase::from_epochs(durable.epochs().clone());
        Server::bind_inner(addr, Engine::Single { db, durable: Some(durable) }, cfg)
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        engine: Engine,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Attach the history recorder before serving starts: every epoch
        // published from here on is recorded, and the pre-bind state is
        // caught up from a pin.
        let hist = HistoryRecorder::new(cfg.history);
        match &engine {
            Engine::Single { durable: Some(d), .. } => hist.attach_durable(d),
            Engine::Single { db, .. } => hist.attach(db.epochs()),
            Engine::Sharded(s) => hist.attach_sharded(s),
        }
        let shared = Arc::new(Shared {
            engine,
            cfg: cfg.clone(),
            hist,
            sync: Mutex::new(()),
            sessions: Mutex::new(BTreeMap::new()),
            next_session: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            parsed: Mutex::new(BTreeMap::new()),
        });
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.pending.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || loop {
                let conn = lock_clean(&rx).recv();
                match conn {
                    Ok(stream) => {
                        // Backstop: a panicking session must cost the
                        // server that one session, never the worker thread
                        // serving all later ones.
                        if catch_unwind(AssertUnwindSafe(|| run_session(&shared, stream)))
                            .is_err()
                        {
                            most_obs::inc("server.session_panics");
                        }
                    }
                    Err(_) => break, // acceptor gone, queue drained
                }
            }));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    let Ok(stream) = conn else { continue };
                    if shared.shutdown.load(Ordering::SeqCst) {
                        let _ = reject(stream, ErrorCode::ShuttingDown, "server shutting down");
                        break;
                    }
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            shared.busy.fetch_add(1, Ordering::Relaxed);
                            most_obs::inc("server.busy_rejected");
                            let _ =
                                reject(stream, ErrorCode::Busy, "pending connection queue full");
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                // tx drops here: workers finish queued sessions, then exit.
            })
        };
        Ok(Server { shared, addr: local, acceptor: Some(acceptor), workers, stopped: false })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The trajectory history warehouse recording behind this server —
    /// the store answering [`Request::Alibi`] and [`Request::Aggregate`].
    /// Exposed for snapshot save/restore and the experiment harness.
    pub fn history(&self) -> Arc<HistoryRecorder> {
        Arc::clone(&self.shared.hist)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            deltas: self.shared.deltas.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            busy: self.shared.busy.load(Ordering::Relaxed),
            sessions: lock_clean(&self.shared.sessions).len() as u64,
            opened: self.shared.opened.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, let live sessions notice within
    /// one read-timeout poll, drain every outbox, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sends one error frame on a connection that never became a session.
fn reject(mut stream: TcpStream, code: ErrorCode, message: &str) -> io::Result<()> {
    let frame = encode_frame(&Response::Error { code, message: message.to_owned() });
    stream.write_all(frame.as_bytes())
}

/// Serves one connection to completion.
fn run_session(shared: &Arc<Shared>, stream: TcpStream) {
    if shared.shutdown.load(Ordering::SeqCst) {
        let _ = reject(stream, ErrorCode::ShuttingDown, "server shutting down");
        return;
    }
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.cfg.read_timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else { return };
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let session = Arc::new(Session::new());
    {
        let mut map = lock_clean(&shared.sessions);
        map.insert(id, Arc::clone(&session));
        most_obs::gauge_set("server.sessions", map.len() as u64);
        most_obs::gauge_max("server.sessions.peak", map.len() as u64);
    }
    shared.opened.fetch_add(1, Ordering::Relaxed);
    most_obs::inc("server.sessions.opened");
    let writer = {
        let session = Arc::clone(&session);
        std::thread::spawn(move || writer_loop(&session, write_half))
    };
    let cap = shared.cfg.outbox;
    let mut reader = crate::protocol::FrameReader::new(stream, shared.cfg.max_frame);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.next_frame() {
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                continue; // poll tick: re-check the shutdown flag
            }
            Err(_) | Ok(None) => break,
            Ok(Some(framed)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                most_obs::inc("server.requests");
                let start = Instant::now();
                let resp = match framed {
                    Err(fe) => fe.to_response(),
                    Ok(line) => match decode_request(&line) {
                        Err(fe) => fe.to_response(),
                        // A panicking handler must cost only this request:
                        // the session gets an `Internal` error frame and
                        // keeps serving (every shared lock the panic may
                        // have poisoned recovers via `lock_clean`).
                        Ok(req) => {
                            match catch_unwind(AssertUnwindSafe(|| {
                                handle_request(shared, &session, req)
                            })) {
                                Ok(resp) => resp,
                                Err(_) => {
                                    most_obs::inc("server.handler_panics");
                                    err(
                                        ErrorCode::Internal,
                                        "request handler panicked; request abandoned",
                                    )
                                }
                            }
                        }
                    },
                };
                most_obs::observe("server.request_nanos", start.elapsed().as_nanos() as u64);
                if matches!(resp, Response::Error { .. }) {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    most_obs::inc("server.errors");
                }
                session.push(encode_frame(&resp), false, cap);
            }
        }
    }
    {
        let mut map = lock_clean(&shared.sessions);
        map.remove(&id);
        most_obs::gauge_set("server.sessions", map.len() as u64);
    }
    most_obs::inc("server.sessions.closed");
    session.close();
    let _ = writer.join();
}

/// Drains a session's outbox to the socket.  Frames already queued at
/// close are written before the thread exits — graceful shutdown loses
/// nothing.
fn writer_loop(session: &Session, mut stream: TcpStream) {
    loop {
        let frame = {
            let mut ob = lock_clean(&session.outbox);
            loop {
                if ob.lag_pending {
                    ob.lag_pending = false;
                    let total = session.dropped.load(Ordering::Relaxed);
                    break Some(encode_frame(&Response::Lagged { dropped: total }));
                }
                if let Some(f) = ob.queue.pop_front() {
                    break Some(f);
                }
                if ob.closed {
                    break None;
                }
                ob = session
                    .cond
                    .wait(ob)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(frame) = frame else { return };
        if stream.write_all(frame.as_bytes()).is_err() {
            // Peer gone: drop what's left so producers stop queueing.
            let mut ob = lock_clean(&session.outbox);
            ob.closed = true;
            ob.queue.clear();
            return;
        }
    }
}

fn err(code: ErrorCode, message: impl std::fmt::Display) -> Response {
    Response::Error { code, message: message.to_string() }
}

/// A WAL failure means the mutation never reached the log and was not
/// applied — surfaced with its own code so clients can distinguish
/// storage trouble from a semantically rejected request.
fn wal_err(e: CoreError) -> Response {
    err(ErrorCode::Wal, e)
}

fn parse_query(shared: &Shared, text: &str) -> Result<Query, Response> {
    if let Some(q) = lock_clean(&shared.parsed).get(text) {
        most_obs::inc("server.parse.hits");
        return Ok(q.clone());
    }
    most_obs::inc("server.parse.misses");
    let q = Query::parse(text).map_err(|e| err(ErrorCode::Parse, e))?;
    let mut cache = lock_clean(&shared.parsed);
    if cache.len() < PARSE_CACHE_CAP {
        cache.insert(text.to_owned(), q.clone());
    }
    Ok(q)
}

fn handle_request(shared: &Arc<Shared>, session: &Arc<Session>, req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Now => Response::Tick { now: shared.engine.now() },
        Request::Snapshot => match shared.engine.snapshot_json() {
            Ok(json) => Response::Db { json },
            Err(e) => err(ErrorCode::Internal, format!("snapshot failed: {e}")),
        },
        Request::Stats => {
            let sessions =
                lock_clean(&shared.sessions).len() as u64;
            Response::Stats {
                requests: shared.requests.load(Ordering::Relaxed),
                errors: shared.errors.load(Ordering::Relaxed),
                deltas: shared.deltas.load(Ordering::Relaxed),
                dropped: shared.dropped.load(Ordering::Relaxed),
                busy: shared.busy.load(Ordering::Relaxed),
                sessions,
            }
        }
        Request::Instantaneous { query } => match parse_query(shared, &query) {
            Err(e) => e,
            Ok(q) => {
                // Lock-free: evaluate on a pinned view (epoch or cut).
                let view = shared.engine.pin();
                match view.instantaneous(&q) {
                    Ok(answer) => Response::Answer { now: view.now(), answer },
                    Err(e) => err(ErrorCode::Eval, e),
                }
            }
        },
        Request::Persistent { query, origin } => match parse_query(shared, &query) {
            Err(e) => e,
            Ok(q) => {
                let view = shared.engine.pin();
                let now = view.now();
                if origin > now {
                    return err(
                        ErrorCode::BadRequest,
                        format!("persistent origin {origin} is in the future (now {now})"),
                    );
                }
                match view.persistent_answer(&q, origin) {
                    Ok(answer) => Response::Answer { now, answer },
                    Err(e) => err(ErrorCode::Eval, e),
                }
            }
        },
        Request::AdvanceClock { ticks } => {
            let _order = lock_clean(&shared.sync);
            let now = shared.engine.now();
            if now.checked_add(ticks).is_none() {
                return err(
                    ErrorCode::ClockOverflow,
                    format!("advancing {ticks} from {now} overflows the tick domain"),
                );
            }
            if let Err(e) = shared.engine.advance_clock(ticks) {
                return wal_err(e);
            }
            notify_subscribers(shared);
            Response::Tick { now: shared.engine.now() }
        }
        Request::Update { ops } => {
            let _order = lock_clean(&shared.sync);
            let result = shared.engine.apply_updates(&ops);
            // Even a rejected batch applies its prefix — refresh deltas
            // must still go out.
            notify_subscribers(shared);
            match result {
                Ok(()) => Response::Applied { count: ops.len() as u64 },
                Err(e @ CoreError::Wal(_)) => wal_err(e),
                Err(e) => err(ErrorCode::Rejected, e),
            }
        }
        Request::Register { query } => match parse_query(shared, &query) {
            Err(e) => e,
            Ok(q) => {
                let _order = lock_clean(&shared.sync);
                if let Some(trigger) = &shared.cfg.panic_trigger {
                    if query.contains(trigger.as_str()) {
                        // Deliberately the worst-placed panic a request
                        // handler can produce: while holding the
                        // mutation-order lock.  See `ServerConfig`.
                        panic!("injected handler fault: query text contains `{trigger}`");
                    }
                }
                let result = shared.engine.register_continuous(&query, q);
                match result {
                    Ok(cq) => Response::Registered { cq },
                    Err(e @ CoreError::Wal(_)) => wal_err(e),
                    Err(e) => err(ErrorCode::Eval, e),
                }
            }
        },
        Request::Feed { from_seq } => match &shared.engine {
            Engine::Single { durable: Some(d), .. } => match d.read_from(from_seq) {
                // Pruned prefix: tell the replica to bootstrap from a
                // snapshot instead of serving a silently gapped stream
                // it would buffer behind forever.
                Err(e @ CoreError::WalFeedPruned { .. }) => err(ErrorCode::FeedPruned, e),
                Err(e) => wal_err(e),
                Ok(records) => {
                    let next_seq = records.last().map_or(from_seq, |(seq, _)| seq + 1);
                    let records = records
                        .into_iter()
                        .filter_map(|(seq, record)| {
                            most_testkit::ser::to_json_string(&record)
                                .ok()
                                .map(|record| FeedRecord { seq, record })
                        })
                        .collect();
                    Response::Feed { next_seq, records }
                }
            },
            _ => err(
                ErrorCode::NotDurable,
                "replica feed requires a durable (WAL-backed) server",
            ),
        },
        Request::Alibi { a, b, vmax, begin, end } => {
            if end < begin {
                return err(
                    ErrorCode::BadRequest,
                    format!("alibi range [{begin}, {end}] is empty"),
                );
            }
            if !vmax.is_finite() || vmax < 0.0 {
                return err(
                    ErrorCode::BadRequest,
                    format!("alibi speed bound {vmax} must be finite and non-negative"),
                );
            }
            // Lock-free like the other reads: the recorder serializes its
            // own store; the engine is never touched beyond a pin for
            // `now`.
            let now = shared.engine.now();
            let range = Interval::new(begin, end);
            shared.hist.with(|store| {
                for id in [a, b] {
                    if store.alibi_samples(id, range).len() < 2 {
                        return err(
                            ErrorCode::NoHistory,
                            format!(
                                "object #{id} has no usable recorded history in [{begin}, {end}]"
                            ),
                        );
                    }
                }
                let meets = store.alibi(a, b, vmax, range).into_intervals();
                Response::Alibi { now, meets }
            })
        }
        Request::Aggregate { begin, end, k } => {
            if end < begin {
                return err(
                    ErrorCode::BadRequest,
                    format!("aggregate range [{begin}, {end}] is empty"),
                );
            }
            let now = shared.engine.now();
            shared.hist.with(|store| {
                let agg = store.aggregates();
                let window = agg.window();
                let tops = agg
                    .window_starts()
                    .into_iter()
                    .filter(|&start| {
                        start <= end && start.saturating_add(window - 1) >= begin
                    })
                    .map(|start| WindowCounts { start, counts: agg.top_k(start, k as usize) })
                    .collect();
                Response::Aggregate { now, window, tops }
            })
        }
        Request::Cancel { cq } => {
            let _order = lock_clean(&shared.sync);
            match shared.engine.cancel_continuous(cq) {
                Ok(()) => {
                    // Scrub the dead id from every session's subscriptions;
                    // subscribers simply stop receiving deltas for it.
                    let sessions: Vec<Arc<Session>> =
                        lock_clean(&shared.sessions).values().cloned().collect();
                    for s in sessions {
                        lock_clean(&s.subs).remove(&cq);
                    }
                    Response::Cancelled { cq }
                }
                Err(e @ CoreError::Wal(_)) => wal_err(e),
                Err(e) => err(ErrorCode::UnknownCq, e),
            }
        }
        Request::Subscribe { cq } => {
            let _order = lock_clean(&shared.sync);
            let view = shared.engine.pin();
            let tick = view.now();
            match view.continuous_display(cq, tick).map(|r| (tick, r)) {
                Ok((tick, rows)) => {
                    lock_clean(&session.subs).insert(cq, rows.clone());
                    Response::Subscribed { cq, tick, rows }
                }
                Err(e) => err(ErrorCode::UnknownCq, e),
            }
        }
        Request::Unsubscribe { cq } => {
            let _order = lock_clean(&shared.sync);
            if lock_clean(&session.subs).remove(&cq).is_some() {
                Response::Unsubscribed { cq }
            } else {
                err(ErrorCode::UnknownCq, format!("not subscribed to continuous query #{cq}"))
            }
        }
    }
}

/// Recomputes every subscribed display and enqueues the non-empty deltas.
/// Called with the mutation-order lock held, so deltas across all sessions
/// form one global sequence; sessions are visited in id order and
/// subscriptions in ascending cq order, matching the single-threaded
/// oracle in `most_server::load`.
fn notify_subscribers(shared: &Arc<Shared>) {
    let sessions: Vec<Arc<Session>> = {
        let map = lock_clean(&shared.sessions);
        map.values().cloned().collect()
    };
    if sessions.is_empty() {
        return;
    }
    let cap = shared.cfg.outbox;
    // One pin for the whole fan-out: every delta in this round of the
    // global sequence is computed from the same just-published view
    // (one epoch, or one cross-shard cut).
    let view = shared.engine.pin();
    {
        let now = view.now();
        for s in &sessions {
            let mut subs = lock_clean(&s.subs);
            let mut dead = Vec::new();
            for (cq, last) in subs.iter_mut() {
                match view.continuous_display(*cq, now) {
                    Ok(rows) => {
                        let (added, removed) = display_delta(last, &rows);
                        if added.is_empty() && removed.is_empty() {
                            continue;
                        }
                        shared.deltas.fetch_add(1, Ordering::Relaxed);
                        most_obs::inc("server.deltas");
                        let frame = encode_frame(&Response::Delta(CqDelta {
                            cq: *cq,
                            tick: now,
                            added,
                            removed,
                        }));
                        if s.push(frame, true, cap) == PushOutcome::Dropped {
                            shared.dropped.fetch_add(1, Ordering::Relaxed);
                            most_obs::inc("server.dropped");
                        }
                        // The baseline advances even when the frame was
                        // dropped: the Lagged marker tells the client to
                        // re-subscribe for a fresh baseline.
                        *last = rows;
                    }
                    Err(_) => dead.push(*cq),
                }
            }
            for cq in dead {
                subs.remove(&cq);
            }
        }
    }
}
