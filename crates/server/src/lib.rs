//! # most-server
//!
//! A hermetic query-serving front-end for the MOST database (Sistla,
//! Wolfson, Chamberlain, Dao: "Modeling and Querying Moving Objects",
//! ICDE 1997).
//!
//! The server fronts a [`most_core::SharedDatabase`] over plain TCP with a
//! newline-delimited JSON wire protocol (see [`protocol`]).  Clients can:
//!
//! * evaluate FTL queries **instantaneously** (now), as **persistent**
//!   queries (anchored at an origin tick, evaluated over the recorded
//!   history), or register them as **continuous** queries;
//! * **subscribe** to a continuous query and receive incremental answer
//!   deltas pushed as the clock advances or updates arrive;
//! * apply batched [`most_core::UpdateOp`]s and advance the database
//!   clock;
//! * fetch a full database snapshot for session recovery.
//!
//! Architecturally: one acceptor thread feeds a bounded worker pool; each
//! accepted connection becomes a session with its own bounded outbox and a
//! dedicated writer thread.  Request replies are never dropped; pushed
//! delta frames are droppable under backpressure, with the loss reported
//! in-band as a `Lagged` frame so a subscriber knows to re-subscribe.
//! All mutations and their delta fan-out serialise through one lock, so
//! every subscriber observes the same globally-ordered delta sequence a
//! single-threaded replay produces — the invariant the [`load`] harness
//! (experiment E12) checks byte for byte.
//!
//! Everything is `std`-only: no async runtime, no external serde, no
//! crates beyond this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod load;
pub mod protocol;
pub mod server;

pub use client::{
    backoff_delays, connect_with_retry, connect_with_retry_seeded, Client, ClientError,
    ClientResult,
};
pub use protocol::{
    CqDelta, ErrorCode, FeedRecord, FrameError, FrameReader, Request, Response,
};
pub use server::{Server, ServerConfig, ServerStats};
