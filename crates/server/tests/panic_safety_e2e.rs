//! End-to-end panic safety (PR 9 satellite bugfix) and the sharded server
//! path (PR 9 tentpole).
//!
//! Before the fix, a panic inside a request handler unwound through the
//! worker thread while holding the mutation-order lock; every later
//! mutation then died on `.expect("mutation order lock")` — one bad
//! session took the whole server down.  Now the panic is caught at the
//! request boundary (the offending request gets an `Internal` error
//! frame), every server lock recovers from poisoning, and unrelated
//! sessions keep mutating, querying, and receiving deltas.
//!
//! The deliberate panic comes from `ServerConfig::panic_trigger`: a
//! `Register` whose query text contains the marker panics in the handler
//! at the worst possible point — with the mutation-order lock held.

use most_core::sharded::{ShardRouting, ShardedDbBuilder};
use most_core::{Database, SharedDatabase, UpdateOp};
use most_dbms::value::Value;
use most_server::client::{Client, ClientError};
use most_server::protocol::{ErrorCode, Request, Response};
use most_server::server::{Server, ServerConfig};
use most_spatial::{Point, Polygon, Velocity};
use std::sync::Arc;

const TRIGGER: &str = "KABOOM";

/// Two cars, one heading into region P, plus the region itself.
fn demo_db() -> Database {
    let mut db = Database::new(10_000);
    let a = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
    db.set_static(a, "PRICE", Value::from(80.0)).unwrap();
    db.insert_moving_object("cars", Point::new(500.0, 500.0), Velocity::new(0.0, 0.0));
    db.add_region("P", Polygon::rectangle(90.0, -10.0, 110.0, 10.0));
    db
}

#[test]
fn panicking_session_leaves_server_serving() {
    let cfg = ServerConfig { panic_trigger: Some(TRIGGER.into()), ..ServerConfig::default() };
    let server =
        Server::bind("127.0.0.1:0", SharedDatabase::new(demo_db()), cfg).expect("bind");
    let addr = server.local_addr();

    let mut driver = Client::connect(addr).unwrap();
    let mut sub = Client::connect(addr).unwrap();
    let mut victim = Client::connect(addr).unwrap();

    let cq = driver.register("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    let (_, baseline) = sub.subscribe(cq).unwrap();
    assert!(baseline.is_empty(), "no car in P at tick 0");

    // The armed request: parses fine, then panics in the handler while
    // the mutation-order lock is held.
    let boom = format!("RETRIEVE o WHERE o.{TRIGGER} <= 1");
    match victim.register(&boom) {
        Err(ClientError::Server { code: ErrorCode::Internal, .. }) => {}
        other => panic!("expected Internal error frame, got {other:?}"),
    }

    // The offending *session* survives: the panic cost one request.
    victim.ping().unwrap();
    assert_eq!(victim.now().unwrap(), 0);

    // The mutation path survives the poisoned locks: another session
    // advances the clock and the subscriber still receives its delta.
    assert_eq!(driver.advance(100).unwrap(), 100);
    sub.ping().unwrap(); // FIFO fence: the delta is in
    let deltas = sub.take_deltas();
    assert_eq!(deltas.len(), 1, "subscriber must still get deltas");
    assert_eq!(deltas[0].cq, cq);
    assert_eq!(deltas[0].added, vec![vec![Value::Id(1)]]);

    // Registrations (the very request kind that panicked) still work.
    let cq2 = victim.register("RETRIEVE o WHERE o.PRICE <= 100").unwrap();
    assert_ne!(cq, cq2);

    // Stats still serves, and it counted the error frame.
    let stats = server.stats();
    assert!(stats.errors >= 1);
    assert_eq!(stats.sessions, 3);

    // Panic again — the server shrugs twice, too.
    match victim.register(&boom) {
        Err(ClientError::Server { code: ErrorCode::Internal, .. }) => {}
        other => panic!("expected Internal on second fault, got {other:?}"),
    }
    driver.update(&[UpdateOp::Motion { id: 1, velocity: Velocity::new(0.0, 0.0) }]).unwrap();
    server.shutdown();
}

#[test]
fn sharded_server_round_trip() {
    let mut builder = ShardedDbBuilder::new(3, 10_000).with_routing(ShardRouting::HashId);
    builder.add_region("P", Polygon::rectangle(90.0, -10.0, 110.0, 10.0));
    let mut ids = Vec::new();
    for i in 0..12u64 {
        let id = builder.insert_moving_object(
            "cars",
            Point::new(i as f64 * 1000.0, 0.0),
            Velocity::new(0.0, 0.0),
        );
        builder.set_static(id, "PRICE", Value::from(50.0 + i as f64 * 10.0)).unwrap();
        ids.push(id);
    }
    let db = Arc::new(builder.finish());

    let server = Server::bind_sharded("127.0.0.1:0", db, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut driver = Client::connect(addr).unwrap();
    let mut sub = Client::connect(addr).unwrap();

    // Reads scatter-gather across every shard.
    let (_, answer) = driver.instantaneous("RETRIEVE o WHERE o.PRICE <= 100").unwrap();
    assert_eq!(answer.len(), 6, "prices 50..=100");

    // Continuous queries register on every shard under one global id,
    // and deltas fan out from pinned cuts like the single-shard path.
    let cq = driver.register("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    let (tick, baseline) = sub.subscribe(cq).unwrap();
    assert_eq!(tick, 0);
    assert!(baseline.is_empty());

    // Send object 1 toward P; it arrives at x=100 at tick 100.
    driver.update(&[UpdateOp::Motion { id: ids[0], velocity: Velocity::new(1.0, 0.0) }]).unwrap();
    assert_eq!(driver.advance(100).unwrap(), 100);
    sub.ping().unwrap();
    let deltas = sub.take_deltas();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].added, vec![vec![Value::Id(ids[0])]]);

    // Persistent queries scatter too.
    let (_, p) = driver.persistent("RETRIEVE o WHERE INSIDE(o, P)", 0).unwrap();
    assert_eq!(p.len(), 1);

    // The sharded engine has no WAL: Feed is rejected, not mis-served.
    match driver.request(&Request::Feed { from_seq: 0 }) {
        Ok(Response::Error { code: ErrorCode::NotDurable, .. }) => {}
        other => panic!("expected NotDurable, got {other:?}"),
    }

    // Snapshot merges the cut into ONE canonical Database object: the
    // typed client decode sees every object regardless of its shard.
    let merged = driver.snapshot().unwrap();
    assert_eq!(merged.object_ids().len(), ids.len(), "merged snapshot holds all shards' objects");
    assert_eq!(merged.now(), 100);

    // Unshardable queries are rejected with an Eval error, and the
    // server keeps serving afterwards.
    match driver.register("RETRIEVE o, p WHERE DIST(o, p) <= 5") {
        Err(ClientError::Server { code: ErrorCode::Eval, .. }) => {}
        other => panic!("expected Eval rejection for unshardable query, got {other:?}"),
    }
    driver.cancel(cq).unwrap();
    driver.ping().unwrap();
    server.shutdown();
}
