//! End-to-end server tests.  Every server binds port 0 and the tests read
//! the ephemeral port back — no fixed ports, no sleeps; synchronisation is
//! the protocol itself (replies fence previously-enqueued pushes because a
//! session's outbox is FIFO).

use most_core::{Database, SharedDatabase, UpdateOp};
use most_dbms::value::Value;
use most_ftl::Query;
use most_server::client::{connect_with_retry, Client, ClientError};
use most_server::load::{self, LoadSpec, ThroughputSpec};
use most_server::protocol::{decode_response, ErrorCode, FrameReader, Response, DEFAULT_MAX_FRAME};
use most_server::server::{Server, ServerConfig};
use most_spatial::{Point, Polygon, Velocity};
use std::io::Write;
use std::time::Duration;

/// Two cars, one heading into region P, plus the region itself.
fn demo_db() -> Database {
    let mut db = Database::new(10_000);
    let a = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
    db.set_static(a, "PRICE", Value::from(80.0)).unwrap();
    let b = db.insert_moving_object("cars", Point::new(500.0, 500.0), Velocity::new(0.0, 0.0));
    db.set_static(b, "PRICE", Value::from(150.0)).unwrap();
    db.add_region("P", Polygon::rectangle(90.0, -10.0, 110.0, 10.0));
    db
}

fn serve(db: Database, cfg: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0", SharedDatabase::new(db), cfg).expect("bind ephemeral port")
}

#[test]
fn basic_requests_round_trip() {
    let server = serve(demo_db(), ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    assert_eq!(c.now().unwrap(), 0);
    assert_eq!(c.advance(5).unwrap(), 5);
    let (now, answer) = c.instantaneous("RETRIEVE o WHERE o.PRICE <= 100").unwrap();
    assert_eq!(now, 5);
    assert_eq!(answer.len(), 1);
    // Persistent anchored at 0 sees the same single cheap car.
    let (_, p) = c.persistent("RETRIEVE o WHERE o.PRICE <= 100", 0).unwrap();
    assert_eq!(p.len(), 1);
    server.shutdown();
}

#[test]
fn subscription_receives_exact_deltas() {
    let server = serve(demo_db(), ServerConfig::default());
    let addr = server.local_addr();
    let mut driver = Client::connect(addr).unwrap();
    let mut sub = Client::connect(addr).unwrap();

    let cq = driver.register("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    let (tick, baseline) = sub.subscribe(cq).unwrap();
    assert_eq!(tick, 0);
    assert!(baseline.is_empty(), "no car in P at tick 0");

    // Car 1 reaches x=100 (inside P) at tick 100 without any update — the
    // MOST hallmark: the display changes with time alone.
    driver.advance(100).unwrap();
    sub.ping().unwrap(); // FIFO fence: deltas from the advance are in
    let deltas = sub.take_deltas();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].cq, cq);
    assert_eq!(deltas[0].tick, 100);
    assert_eq!(deltas[0].added, vec![vec![Value::Id(1)]]);
    assert!(deltas[0].removed.is_empty());

    // An explicit update turns the car around; it leaves P as time passes.
    driver
        .update(&[UpdateOp::Motion { id: 1, velocity: Velocity::new(-1.0, 0.0) }])
        .unwrap();
    driver.advance(50).unwrap();
    sub.ping().unwrap();
    let deltas = sub.take_deltas();
    assert!(!deltas.is_empty());
    let last = deltas.last().unwrap();
    assert_eq!(last.removed, vec![vec![Value::Id(1)]]);
    assert_eq!(sub.lagged(), 0);

    // Unsubscribe stops the stream; further mutations push nothing.
    sub.unsubscribe(cq).unwrap();
    driver.advance(100).unwrap();
    sub.ping().unwrap();
    assert!(sub.take_deltas().is_empty());
    server.shutdown();
}

#[test]
fn error_frames_are_structured_and_session_survives() {
    let server = serve(demo_db(), ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();

    fn fail<T: std::fmt::Debug>(r: Result<T, ClientError>, want: ErrorCode) {
        match r {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, want),
            other => panic!("expected {want:?} error, got {other:?}"),
        }
    }
    fail(c.instantaneous("RETRIEVE o WHERE"), ErrorCode::Parse);
    fail(c.subscribe(99), ErrorCode::UnknownCq);
    fail(c.unsubscribe(99), ErrorCode::UnknownCq);
    fail(c.cancel(99), ErrorCode::UnknownCq);
    c.advance(1).unwrap();
    fail(c.persistent("RETRIEVE o WHERE true", 5), ErrorCode::BadRequest);
    fail(c.advance(u64::MAX), ErrorCode::ClockOverflow);
    // The session is still alive and serving after every error.
    c.ping().unwrap();
    let stats = server.stats();
    assert_eq!(stats.errors, 6);
    assert_eq!(stats.sessions, 1);
    server.shutdown();
}

#[test]
fn backpressure_drops_deltas_and_reports_lag() {
    // Outbox capacity 0: every pushed delta is dropped, deterministically.
    let cfg = ServerConfig { outbox: 0, ..ServerConfig::default() };
    let server = serve(demo_db(), cfg);
    let addr = server.local_addr();
    let mut driver = Client::connect(addr).unwrap();
    let mut sub = Client::connect(addr).unwrap();

    let cq = driver.register("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    sub.subscribe(cq).unwrap();
    driver.advance(100).unwrap(); // produces one delta -> dropped
    sub.ping().unwrap(); // reply is never droppable; Lagged precedes it
    assert!(sub.take_deltas().is_empty(), "the delta was dropped, not delivered");
    assert_eq!(sub.lagged(), 1);
    assert_eq!(server.stats().dropped, 1);

    // Recovery: re-subscribe for a fresh baseline; it reflects the current
    // display even though the delta frame itself was lost.
    let (tick, rows) = sub.subscribe(cq).unwrap();
    assert_eq!(tick, 100);
    assert_eq!(rows, vec![vec![Value::Id(1)]]);
    server.shutdown();
}

#[test]
fn graceful_shutdown_delivers_queued_frames() {
    let server = serve(demo_db(), ServerConfig::default());
    let addr = server.local_addr();
    let mut driver = Client::connect(addr).unwrap();
    let mut sub = Client::connect(addr).unwrap();
    let cq = driver.register("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    sub.subscribe(cq).unwrap();
    driver.advance(100).unwrap(); // enqueues a delta on sub's outbox
    // Shut down without sub ever reading: the writer must drain the queued
    // delta before the connection closes.
    server.shutdown();
    let got = sub.poll_pushed(Duration::from_secs(5)).unwrap();
    assert_eq!(got, 1);
    let deltas = sub.take_deltas();
    assert_eq!(deltas.len(), 1);
    assert_eq!(deltas[0].added, vec![vec![Value::Id(1)]]);
    // The stream then ends: the next request fails cleanly.
    assert!(c_closed(&mut sub));
}

fn c_closed(c: &mut Client) -> bool {
    matches!(c.ping(), Err(ClientError::Closed) | Err(ClientError::Io(_)))
}

#[test]
fn full_pending_queue_rejects_with_busy() {
    // One worker, one pending slot.  c1 occupies the worker (proven by a
    // completed round-trip), c2 fills the queue slot, c3 must be rejected
    // with a Busy error frame.
    let cfg = ServerConfig { workers: 1, pending: 1, ..ServerConfig::default() };
    let server = serve(demo_db(), cfg);
    let addr = server.local_addr();
    let mut c1 = Client::connect(addr).unwrap();
    c1.ping().unwrap(); // the worker is now inside c1's session loop
    let _c2 = connect_with_retry(addr, 20).unwrap(); // parks in the queue
    let c3 = connect_with_retry(addr, 20).unwrap();
    let mut reader = FrameReader::new(c3, DEFAULT_MAX_FRAME);
    let line = reader.next_frame().unwrap().expect("a frame before close").unwrap();
    match decode_response(&line).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(server.stats().busy, 1);
    drop(c1); // frees the worker so shutdown can drain c2
    server.shutdown();
}

#[test]
fn snapshot_restores_equivalent_database() {
    let server = serve(demo_db(), ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.advance(25).unwrap();
    c.update(&[UpdateOp::Static { id: 1, attr: "PRICE".into(), value: Value::from(60.0) }])
        .unwrap();
    let restored = c.snapshot().unwrap();
    assert_eq!(restored.now(), 25);
    let q = Query::parse("RETRIEVE o WHERE o.PRICE <= 100").unwrap();
    let (_, live) = c.instantaneous("RETRIEVE o WHERE o.PRICE <= 100").unwrap();
    assert_eq!(restored.instantaneous_readonly(&q).unwrap(), live);
    server.shutdown();
}

#[test]
fn cancellation_scrubs_subscriptions() {
    let server = serve(demo_db(), ServerConfig::default());
    let addr = server.local_addr();
    let mut driver = Client::connect(addr).unwrap();
    let mut sub = Client::connect(addr).unwrap();
    let cq = driver.register("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    sub.subscribe(cq).unwrap();
    driver.cancel(cq).unwrap();
    driver.advance(100).unwrap();
    sub.ping().unwrap();
    assert!(sub.take_deltas().is_empty(), "cancelled cq pushes nothing");
    // The subscription is gone server-side, not merely silent.
    match sub.unsubscribe(cq) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownCq),
        other => panic!("expected UnknownCq, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn raw_writes_get_one_reply_per_line() {
    // Pipelined requests on a raw socket: replies come back in order.
    let server = serve(demo_db(), ServerConfig::default());
    let mut stream = connect_with_retry(server.local_addr(), 20).unwrap();
    stream.write_all(b"\"Ping\"\n\"Now\"\n\"Ping\"\n").unwrap();
    let mut reader = FrameReader::new(stream, DEFAULT_MAX_FRAME);
    let mut kinds = Vec::new();
    for _ in 0..3 {
        let line = reader.next_frame().unwrap().unwrap().unwrap();
        kinds.push(decode_response(&line).unwrap());
    }
    assert!(matches!(kinds[0], Response::Pong));
    assert!(matches!(kinds[1], Response::Tick { now: 0 }));
    assert!(matches!(kinds[2], Response::Pong));
    server.shutdown();
}

#[test]
fn load_harness_matches_oracle() {
    let outcome = load::run_correctness(&LoadSpec::small(7));
    assert_eq!(outcome.mismatches, 0, "{outcome:?}");
    assert_eq!(outcome.dropped, 0);
    assert_eq!(outcome.lagged, 0);
    assert!(outcome.oracle_deltas > 0, "workload must actually produce deltas");
    for &n in &outcome.received_deltas {
        assert_eq!(n, outcome.oracle_deltas);
    }
}

#[test]
fn load_harness_throughput_verifies_state() {
    let spec = ThroughputSpec {
        readers: 3,
        requests_per_reader: 20,
        update_batches: 5,
        load: LoadSpec::small(11),
    };
    let outcome = load::run_throughput(&spec);
    assert!(outcome.verified, "concurrent reads must not corrupt state");
    assert!(outcome.requests >= 3 * 20);
}

// ---------------------------------------------------------------------
// Durability: WAL-backed servers, crash/recover, the replica feed.
// ---------------------------------------------------------------------

use most_core::wal::{apply_record, DurableDb, WalConfig};
use most_server::protocol::Request;
use std::path::PathBuf;
use std::sync::Arc;

fn wal_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn durable_server_survives_crash_and_recovers_state() {
    let dir = wal_dir("e2e_durable_crash");

    // Incarnation 1: mutate through the wire, then crash (shutdown with
    // no checkpoint — the WAL is the only durable copy).
    let durable =
        Arc::new(DurableDb::create(&dir, demo_db(), WalConfig::default()).unwrap());
    let server =
        Server::bind_durable("127.0.0.1:0", Arc::clone(&durable), ServerConfig::default())
            .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let cq = c.register("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    assert_eq!(c.advance(95).unwrap(), 95);
    c.update(&[UpdateOp::Static { id: 2, attr: "PRICE".into(), value: Value::from(99.0) }])
        .unwrap();
    let (_, answer_before) = c.instantaneous("RETRIEVE o WHERE o.PRICE <= 100").unwrap();
    assert_eq!(answer_before.len(), 2, "both cars now cheap");
    let fingerprint_before = durable.pin().db().fingerprint();
    drop(c);
    server.shutdown();
    drop(durable);

    // Incarnation 2: recover from WAL + checkpoint, serve again.
    let (recovered, recovery) = DurableDb::open(&dir, WalConfig::default()).unwrap();
    assert!(!recovery.truncated_tail);
    assert_eq!(recovery.records_replayed, 3, "register + advance + update");
    let recovered = Arc::new(recovered);
    assert_eq!(recovered.pin().db().fingerprint(), fingerprint_before);
    let server2 =
        Server::bind_durable("127.0.0.1:0", Arc::clone(&recovered), ServerConfig::default())
            .unwrap();
    let mut c2 = Client::connect(server2.local_addr()).unwrap();
    assert_eq!(c2.now().unwrap(), 95, "the clock survived the crash");
    let (_, answer_after) = c2.instantaneous("RETRIEVE o WHERE o.PRICE <= 100").unwrap();
    assert_eq!(answer_after, answer_before, "answers identical after recovery");
    // The recovered CQ is still registered and serves subscriptions.
    let (_, rows) = c2.subscribe(cq).unwrap();
    assert_eq!(rows.len(), 1, "car 1 is at x=95, inside P, at tick 95");
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn feed_endpoint_streams_committed_records_to_a_replica() {
    let dir = wal_dir("e2e_durable_feed");
    let initial = demo_db();
    let durable =
        Arc::new(DurableDb::create(&dir, initial.clone(), WalConfig::default()).unwrap());
    let server =
        Server::bind_durable("127.0.0.1:0", Arc::clone(&durable), ServerConfig::default())
            .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.advance(3).unwrap();
    c.update(&[UpdateOp::Motion { id: 1, velocity: Velocity::new(2.0, 0.0) }]).unwrap();
    c.register("RETRIEVE o WHERE o.PRICE <= 100").unwrap();

    // A replica polls the feed and replays onto the shared base state.
    let mut replica = initial;
    let (next_seq, records) = c.feed(0).unwrap();
    assert_eq!(next_seq, 3);
    assert_eq!(records.len(), 3);
    for fr in &records {
        let rec = most_testkit::ser::from_json_str(&fr.record).unwrap();
        apply_record(&mut replica, &rec).unwrap();
    }
    assert_eq!(replica.fingerprint(), durable.pin().db().fingerprint());

    // Tailing from next_seq returns nothing new.
    let (tail_seq, tail) = c.feed(next_seq).unwrap();
    assert_eq!(tail_seq, next_seq);
    assert!(tail.is_empty());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn feed_below_checkpoint_horizon_is_rejected_as_pruned() {
    let dir = wal_dir("e2e_feed_pruned");
    let durable =
        Arc::new(DurableDb::create(&dir, demo_db(), WalConfig::default()).unwrap());
    let server =
        Server::bind_durable("127.0.0.1:0", Arc::clone(&durable), ServerConfig::default())
            .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.advance(1).unwrap();
    c.advance(2).unwrap();
    durable.checkpoint().unwrap();
    let horizon = durable.next_seq();

    // Below the horizon: an explicit FeedPruned error naming it — never
    // a silently gapped stream.
    match c.request(&Request::Feed { from_seq: 0 }).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::FeedPruned);
            assert!(
                message.contains(&format!("checkpoint horizon {horizon}")),
                "message must carry the horizon to resume from: {message}"
            );
        }
        other => panic!("expected FeedPruned error, got {other:?}"),
    }

    // From the horizon on, the feed serves normally again.
    c.advance(3).unwrap();
    let (next_seq, records) = c.feed(horizon).unwrap();
    assert_eq!(next_seq, horizon + 1);
    assert_eq!(records.len(), 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn feed_on_in_memory_server_is_rejected_as_not_durable() {
    let server = serve(demo_db(), ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    match c.request(&Request::Feed { from_seq: 0 }).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NotDurable),
        other => panic!("expected NotDurable error, got {other:?}"),
    }
    server.shutdown();
}
