//! Fuzz-style wire-protocol robustness: a session fed random mixtures of
//! valid, garbage, oversized, truncated and non-UTF-8 frames must answer
//! every line with exactly one structured frame and stay alive throughout.
//!
//! Randomness comes from the in-repo `most-testkit` RNG, so failures
//! reproduce from the printed seed.

use most_core::{Database, SharedDatabase};
use most_dbms::value::Value;
use most_server::client::connect_with_retry;
use most_server::protocol::{decode_response, ErrorCode, FrameReader, Response};
use most_server::server::{Server, ServerConfig};
use most_spatial::{Point, Polygon, Velocity};
use most_testkit::rng::Rng;
use std::io::Write;

const MAX_FRAME: usize = 256;

fn tiny_db() -> Database {
    let mut db = Database::new(1_000);
    let id = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
    db.set_static(id, "PRICE", Value::from(80.0)).unwrap();
    db.add_region("P", Polygon::rectangle(-10.0, -10.0, 10.0, 10.0));
    db
}

/// One line of input plus the reply check it implies.
enum Frame {
    /// Well-formed request; the reply must NOT be an error frame.
    Valid(&'static [u8]),
    /// Malformed line; the reply must be an error frame with this code.
    Bad(Vec<u8>, ErrorCode),
}

fn random_frame(rng: &mut Rng) -> Frame {
    match rng.below(8) {
        0 => Frame::Valid(b"\"Ping\""),
        1 => Frame::Valid(b"\"Now\""),
        2 => Frame::Valid(b"{\"Instantaneous\":{\"query\":\"RETRIEVE o WHERE INSIDE(o, P)\"}}"),
        3 => Frame::Valid(b"\"Stats\""),
        // Truncated JSON: syntactically incomplete.
        4 => Frame::Bad(b"{\"AdvanceClock\":{\"ticks\":".to_vec(), ErrorCode::BadJson),
        // Valid JSON, wrong schema.
        5 => Frame::Bad(b"{\"NoSuchRequest\":1}".to_vec(), ErrorCode::BadRequest),
        // Oversized line (cap is 256 bytes).
        6 => {
            let len = MAX_FRAME + 1 + rng.below(512) as usize;
            Frame::Bad(vec![b'x'; len], ErrorCode::FrameTooLong)
        }
        // Random bytes; force both invalid UTF-8 and a leading byte no
        // JSON value starts with, so the expected code is unambiguous.
        _ => {
            let mut junk = vec![0xFFu8];
            for _ in 0..rng.below(40) {
                // Avoid newline (frame separator) and carriage return.
                let b = rng.random_range(1u64..=255) as u8;
                if b != b'\n' && b != b'\r' {
                    junk.push(b);
                }
            }
            Frame::Bad(junk, ErrorCode::InvalidUtf8)
        }
    }
}

#[test]
fn malformed_frames_never_kill_the_session() {
    let cfg = ServerConfig { max_frame: MAX_FRAME, ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", SharedDatabase::new(tiny_db()), cfg)
        .expect("bind ephemeral port");
    let addr = server.local_addr();

    for seed in 0..8u64 {
        let mut rng = Rng::seed_from_u64(0xF00D + seed);
        let stream = connect_with_retry(addr, 20).unwrap();
        let mut write_half = stream.try_clone().unwrap();
        // The client-side reader needs a cap bigger than reply frames
        // (answers can exceed the server's request cap).
        let mut reader = FrameReader::new(stream, 1 << 20);

        let frames: Vec<Frame> = (0..rng.random_range(20u64..60) as usize)
            .map(|_| random_frame(&mut rng))
            .collect();
        for (i, frame) in frames.iter().enumerate() {
            let bytes = match frame {
                Frame::Valid(b) => b.to_vec(),
                Frame::Bad(b, _) => b.clone(),
            };
            write_half.write_all(&bytes).unwrap();
            write_half.write_all(b"\n").unwrap();
            // Exactly one reply per line, in order.
            let line = reader
                .next_frame()
                .unwrap()
                .unwrap_or_else(|| panic!("seed {seed}: stream closed at frame {i}"))
                .unwrap_or_else(|e| panic!("seed {seed}: unreadable reply {e:?}"));
            let resp = decode_response(&line)
                .unwrap_or_else(|e| panic!("seed {seed}: undecodable reply {e:?}"));
            match frame {
                Frame::Valid(_) => assert!(
                    !matches!(resp, Response::Error { .. }),
                    "seed {seed}: valid frame {i} got {resp:?}"
                ),
                Frame::Bad(_, want) => match resp {
                    Response::Error { code, .. } => {
                        assert_eq!(code, *want, "seed {seed}: frame {i}")
                    }
                    other => panic!("seed {seed}: bad frame {i} got {other:?}"),
                },
            }
        }
        // The session is still fully functional after the abuse.
        write_half.write_all(b"\"Ping\"\n").unwrap();
        let line = reader.next_frame().unwrap().unwrap().unwrap();
        assert!(matches!(decode_response(&line).unwrap(), Response::Pong));
    }
    // Nothing above leaked a wedged session.  Session teardown is
    // asynchronous after a client disconnect, so poll briefly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = server.stats();
        if stats.sessions == 0 {
            assert_eq!(stats.opened, 8, "{stats:?}");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "sessions never drained: {stats:?}");
        std::thread::yield_now();
    }
    server.shutdown();
}

#[test]
fn oversized_line_recovery_is_exact() {
    // An oversized request split across many small writes still yields
    // exactly one FrameTooLong error, and the next frame parses cleanly.
    let cfg = ServerConfig { max_frame: MAX_FRAME, ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", SharedDatabase::new(tiny_db()), cfg)
        .expect("bind ephemeral port");
    let stream = connect_with_retry(server.local_addr(), 20).unwrap();
    let mut write_half = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(stream, 1 << 20);

    for chunk in vec![b'y'; 4 * MAX_FRAME].chunks(37) {
        write_half.write_all(chunk).unwrap();
    }
    write_half.write_all(b"\n\"Ping\"\n").unwrap();
    let line = reader.next_frame().unwrap().unwrap().unwrap();
    match decode_response(&line).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLong),
        other => panic!("expected FrameTooLong, got {other:?}"),
    }
    let line = reader.next_frame().unwrap().unwrap().unwrap();
    assert!(matches!(decode_response(&line).unwrap(), Response::Pong));
    server.shutdown();
}
