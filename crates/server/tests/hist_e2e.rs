//! End-to-end: the trajectory history warehouse behind every server
//! engine.
//!
//! Recording hooks the epoch-publish boundary, so the same client-driven
//! workload must produce oracle-exact alibi and aggregate answers
//! whether the server runs a single epoch engine, a WAL-backed durable
//! engine, or a sharded engine — and the sharded engine's merged
//! snapshot must be byte-identical to a single engine holding the same
//! logical state.

use most_core::sharded::ShardedDbBuilder;
use most_core::wal::{DurableDb, WalConfig};
use most_core::{Database, SharedDatabase};
use most_hist::HistoryConfig;
use most_server::client::{Client, ClientError};
use most_server::protocol::{ErrorCode, Request, Response};
use most_server::server::{Server, ServerConfig};
use most_spatial::Polygon;
use most_temporal::Interval;
use most_workload::taxi::{due_motion_ops, TaxiScenario};
use std::path::PathBuf;
use std::sync::Arc;

fn wal_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario() -> TaxiScenario {
    let mut s = TaxiScenario::small(0xa11b1);
    s.count = 8;
    s.shift = 40;
    s.swap_break = 10;
    s.horizon = 200;
    s
}

fn add_regions(db: &mut Database) {
    db.add_region("downtown", Polygon::rectangle(-150.0, -150.0, 150.0, 150.0));
    db.add_region("north", Polygon::rectangle(-400.0, 0.0, 400.0, 400.0));
}

/// Drives the seeded taxi workload through a connected client in
/// 20-tick batches and returns the driven horizon.
fn drive(client: &mut Client, ids: &[u64], plans: &[most_workload::TaxiPlan]) -> u64 {
    let horizon = 200;
    let mut last = 0;
    while last < horizon {
        let now = last + 20;
        client.advance(20).unwrap();
        let ops = due_motion_ops(ids, plans, last, now);
        if !ops.is_empty() {
            client.update(&ops).unwrap();
        }
        last = now;
    }
    horizon
}

/// Alibi + aggregate answers over the wire must equal the store-side
/// brute-force oracles, and error paths must use their own codes.
fn check_queries(client: &mut Client, server: &Server, ids: &[u64], horizon: u64) {
    let hist = server.history();
    let (a, b) = (ids[0], ids[1]);
    let vmax = 2.5;
    let (_, meets) = client.alibi(a, b, vmax, 0, horizon).unwrap();
    let oracle = hist.with(|s| s.alibi_by_oracle(a, b, vmax, Interval::new(0, horizon)));
    assert_eq!(meets, oracle.intervals().to_vec(), "wire alibi must be oracle-exact");

    let (_, window, tops) = client.aggregate(0, horizon, 2).unwrap();
    hist.with(|s| {
        let agg = s.aggregates();
        assert_eq!(window, agg.window());
        let starts: Vec<u64> =
            agg.window_starts().into_iter().filter(|&w| w <= horizon).collect();
        assert_eq!(tops.len(), starts.len(), "every overlapping window is reported");
        for (wc, start) in tops.iter().zip(starts) {
            assert_eq!(wc.start, start);
            assert_eq!(wc.counts, agg.top_k(start, 2), "top-k must match the store");
        }
    });

    // Unknown object: NoHistory, not an empty answer.
    match client.alibi(9999, b, vmax, 0, horizon) {
        Err(ClientError::Server { code: ErrorCode::NoHistory, .. }) => {}
        other => panic!("expected NoHistory for unknown object, got {other:?}"),
    }
    // Inverted range: BadRequest.
    match client.alibi(a, b, vmax, 10, 5) {
        Err(ClientError::Server { code: ErrorCode::BadRequest, .. }) => {}
        other => panic!("expected BadRequest for inverted range, got {other:?}"),
    }
    match client.request(&Request::Aggregate { begin: 10, end: 5, k: 1 }) {
        Ok(Response::Error { code: ErrorCode::BadRequest, .. }) => {}
        other => panic!("expected BadRequest for inverted aggregate range, got {other:?}"),
    }
}

#[test]
fn history_composes_with_single_server() {
    let s = scenario();
    let plans = s.generate();
    let mut db = Database::new(10_000);
    add_regions(&mut db);
    let ids = s.populate(&mut db, &plans);
    let cfg = ServerConfig {
        history: HistoryConfig { window: 25, ..HistoryConfig::unpruned(25) },
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", SharedDatabase::new(db), cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let horizon = drive(&mut client, &ids, &plans);
    check_queries(&mut client, &server, &ids, horizon);
    server.shutdown();
}

#[test]
fn history_composes_with_sharded_server() {
    let s = scenario();
    let plans = s.generate();
    let mut builder = ShardedDbBuilder::new(4, 10_000);
    builder.add_region("downtown", Polygon::rectangle(-150.0, -150.0, 150.0, 150.0));
    builder.add_region("north", Polygon::rectangle(-400.0, 0.0, 400.0, 400.0));
    let ids = s.populate_sharded(&mut builder, &plans);
    let cfg = ServerConfig {
        history: HistoryConfig { window: 25, ..HistoryConfig::unpruned(25) },
        ..ServerConfig::default()
    };
    let server = Server::bind_sharded("127.0.0.1:0", Arc::new(builder.finish()), cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let horizon = drive(&mut client, &ids, &plans);
    // Every shard's publishes reached the one store.
    server.history().with(|store| {
        for id in &ids {
            assert!(store.object(*id).is_some(), "object {id} recorded across shards");
        }
    });
    check_queries(&mut client, &server, &ids, horizon);
    server.shutdown();
}

#[test]
fn history_composes_with_durable_server() {
    let dir = wal_dir("hist_durable");
    let s = scenario();
    let plans = s.generate();
    let mut db = Database::new(10_000);
    add_regions(&mut db);
    let ids = s.populate(&mut db, &plans);
    let durable = Arc::new(DurableDb::create(&dir, db, WalConfig::default()).unwrap());
    let cfg = ServerConfig {
        history: HistoryConfig { window: 25, ..HistoryConfig::unpruned(25) },
        ..ServerConfig::default()
    };
    let server = Server::bind_durable("127.0.0.1:0", durable, cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let horizon = drive(&mut client, &ids, &plans);
    check_queries(&mut client, &server, &ids, horizon);
    server.shutdown();
}

/// The merged sharded snapshot is byte-identical to a single engine
/// holding the same logical state (no continuous queries registered —
/// per-shard CQ registries hold shard-local materialized answers, see
/// E16).
#[test]
fn sharded_snapshot_matches_single_engine_bytes() {
    let s = scenario();
    let plans = s.generate();

    let mut single_db = Database::new(10_000);
    add_regions(&mut single_db);
    let single_ids = s.populate(&mut single_db, &plans);
    let single = Server::bind(
        "127.0.0.1:0",
        SharedDatabase::new(single_db),
        ServerConfig::default(),
    )
    .unwrap();

    let mut builder = ShardedDbBuilder::new(3, 10_000);
    builder.add_region("downtown", Polygon::rectangle(-150.0, -150.0, 150.0, 150.0));
    builder.add_region("north", Polygon::rectangle(-400.0, 0.0, 400.0, 400.0));
    let sharded_ids = s.populate_sharded(&mut builder, &plans);
    assert_eq!(single_ids, sharded_ids, "identical global ids in plan order");
    let sharded =
        Server::bind_sharded("127.0.0.1:0", Arc::new(builder.finish()), ServerConfig::default())
            .unwrap();

    let mut c_single = Client::connect(single.local_addr()).unwrap();
    let mut c_sharded = Client::connect(sharded.local_addr()).unwrap();
    drive(&mut c_single, &single_ids, &plans);
    drive(&mut c_sharded, &sharded_ids, &plans);

    let json_single = match c_single.request(&Request::Snapshot).unwrap() {
        Response::Db { json } => json,
        other => panic!("expected Db, got {other:?}"),
    };
    let json_sharded = match c_sharded.request(&Request::Snapshot).unwrap() {
        Response::Db { json } => json,
        other => panic!("expected Db, got {other:?}"),
    };
    assert_eq!(json_single, json_sharded, "merged sharded snapshot must be canonical");

    single.shutdown();
    sharded.shutdown();
}

/// With continuous queries live the byte-identity no longer holds
/// (shard-local CQ bookkeeping), but the merged snapshot must still
/// decode through the typed client path into a usable database.
#[test]
fn sharded_snapshot_decodes_with_live_cqs() {
    let s = scenario();
    let plans = s.generate();
    let mut builder = ShardedDbBuilder::new(4, 10_000);
    builder.add_region("downtown", Polygon::rectangle(-150.0, -150.0, 150.0, 150.0));
    builder.add_region("north", Polygon::rectangle(-400.0, 0.0, 400.0, 400.0));
    let ids = s.populate_sharded(&mut builder, &plans);
    let server =
        Server::bind_sharded("127.0.0.1:0", Arc::new(builder.finish()), ServerConfig::default())
            .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.register("RETRIEVE o WHERE INSIDE(o, downtown)").unwrap();
    let horizon = drive(&mut client, &ids, &plans);
    let restored = client.snapshot().unwrap();
    assert_eq!(restored.object_ids(), ids, "all shards' objects decode");
    assert_eq!(restored.now(), horizon);
    server.shutdown();
}
