//! Taxi fleets working in shifts: drive, park at a stand, swap drivers,
//! resume.
//!
//! Unlike [`crate::cars`] — whose vehicles never stop — a taxi's motion
//! history alternates *driving* phases (Poisson-like heading changes)
//! with *parked* phases (a zero motion vector at a stand).  The parked
//! phase models the end of a driver's shift: the cab sits still for the
//! hand-over, then the next driver pulls out with a fresh heading.  The
//! resulting trajectories exercise exactly the degenerate geometry the
//! history warehouse must get right — zero-velocity legs, coincident
//! consecutive samples, objects that re-enter regions they already
//! visited — so the E17 experiment seeds its fleets from here.

use crate::update_process::{sample_velocity, update_schedule};
use most_core::sharded::ShardedDbBuilder;
use most_core::{Database, UpdateOp};
use most_spatial::{Point, Trajectory, Velocity};
use most_temporal::Tick;
use most_testkit::rng::Rng;

/// One generated taxi.
#[derive(Debug, Clone)]
pub struct TaxiPlan {
    /// Position at tick 0 (the cab's home stand).
    pub start: Point,
    /// Initial motion vector (the first shift is already underway).
    pub velocity: Velocity,
    /// Scheduled motion-vector changes, ascending; parked phases appear
    /// as zero-velocity entries.
    pub updates: Vec<(Tick, Velocity)>,
    /// `(park, resume)` tick pairs — each is one driver swap: the cab
    /// goes stationary at `park` and pulls out again at `resume`.
    pub swaps: Vec<(Tick, Tick)>,
}

impl TaxiPlan {
    /// The full trajectory implied by the plan.
    pub fn trajectory(&self) -> Trajectory {
        let mut t = Trajectory::starting_at(self.start, self.velocity);
        for &(at, v) in &self.updates {
            t.update_velocity(at, v);
        }
        t
    }

    /// Whether the cab is parked (mid driver swap) at `tick`.
    pub fn parked_at(&self, tick: Tick) -> bool {
        self.swaps.iter().any(|&(park, resume)| tick >= park && tick < resume)
    }
}

/// Scenario parameters for a taxi fleet.
#[derive(Debug, Clone)]
pub struct TaxiScenario {
    /// Number of taxis.
    pub count: usize,
    /// Half-extent of the square service area centred on the origin.
    pub area: f64,
    /// Speed band while driving.
    pub speed: (f64, f64),
    /// Mean ticks between heading changes while driving.
    pub mean_update_gap: f64,
    /// Ticks a driver works before handing the cab over.
    pub shift: Tick,
    /// Ticks the cab sits parked during the hand-over.
    pub swap_break: Tick,
    /// Schedule horizon (updates generated in `[1, horizon]`).
    pub horizon: Tick,
    /// RNG seed.
    pub seed: u64,
}

impl TaxiScenario {
    /// A small default scenario: three full shift cycles fit the horizon.
    pub fn small(seed: u64) -> Self {
        TaxiScenario {
            count: 16,
            area: 400.0,
            speed: (0.5, 2.0),
            mean_update_gap: 40.0,
            shift: 250,
            swap_break: 50,
            horizon: 1000,
            seed,
        }
    }

    /// A scaled scenario at (roughly) the density of
    /// [`TaxiScenario::small`]; the area grows with √count like
    /// [`crate::cars::CarScenario::fleet`].
    pub fn fleet(seed: u64, count: usize) -> Self {
        let small = TaxiScenario::small(seed);
        TaxiScenario {
            count,
            area: small.area * (count as f64 / small.count as f64).sqrt().max(1.0),
            ..small
        }
    }

    /// Generates the taxi plans.  Each cab's first shift starts at a
    /// seeded offset in `[0, shift)` so the fleet's swaps don't all land
    /// on the same ticks.
    pub fn generate(&self) -> Vec<TaxiPlan> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let cycle = self.shift + self.swap_break.max(1);
        (0..self.count)
            .map(|_| {
                let start = Point::new(
                    rng.random_range(-self.area..self.area),
                    rng.random_range(-self.area..self.area),
                );
                let velocity = sample_velocity(&mut rng, self.speed.0, self.speed.1);
                let offset = rng.random_range(0..self.shift.max(1));
                let mut updates = Vec::new();
                let mut swaps = Vec::new();
                let mut park = offset.max(1);
                while park <= self.horizon {
                    let resume = park + self.swap_break.max(1);
                    // Driver swap: stop dead at the stand...
                    updates.push((park, Velocity::zero()));
                    swaps.push((park, resume.min(self.horizon + 1)));
                    if resume > self.horizon {
                        break;
                    }
                    // ...then the relief driver pulls out on a new heading
                    // and works a shift of ordinary heading changes.
                    updates.push((resume, sample_velocity(&mut rng, self.speed.0, self.speed.1)));
                    let shift_end = (resume + self.shift).min(self.horizon);
                    for (t, v) in update_schedule(
                        &mut rng,
                        shift_end.saturating_sub(resume).saturating_sub(1),
                        self.mean_update_gap,
                        self.speed.0,
                        self.speed.1,
                    ) {
                        updates.push((resume + t, v));
                    }
                    park += cycle;
                }
                TaxiPlan { start, velocity, updates, swaps }
            })
            .collect()
    }

    /// Populates a MOST database with the taxis at tick 0 (updates are
    /// *not* applied — drive them in with [`due_motion_ops`] as the
    /// clock advances).  Returns the object ids in plan order.
    pub fn populate(&self, db: &mut Database, plans: &[TaxiPlan]) -> Vec<u64> {
        plans
            .iter()
            .map(|p| db.insert_moving_object("taxis", p.start, p.velocity))
            .collect()
    }

    /// Populates a **sharded** database builder, mirroring
    /// [`TaxiScenario::populate`] with identical global ids in plan
    /// order.  Returns the object ids in plan order.
    pub fn populate_sharded(
        &self,
        builder: &mut ShardedDbBuilder,
        plans: &[TaxiPlan],
    ) -> Vec<u64> {
        plans
            .iter()
            .map(|p| builder.insert_moving_object("taxis", p.start, p.velocity))
            .collect()
    }
}

/// The motion ops every plan schedules in `(last, now]`, in plan order
/// then tick order — the batch shape `Request::Update` and the engines'
/// `apply_updates` take.
pub fn due_motion_ops(
    ids: &[u64],
    plans: &[TaxiPlan],
    last: Tick,
    now: Tick,
) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for (id, plan) in ids.iter().zip(plans) {
        for &(at, v) in &plan.updates {
            if at > last && at <= now {
                ops.push(UpdateOp::Motion { id: *id, velocity: v });
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let s = TaxiScenario::small(11);
        let a = s.generate();
        let b = s.generate();
        assert_eq!(a.len(), 16);
        assert_eq!(a[5].start, b[5].start);
        assert_eq!(a[5].updates, b[5].updates);
        assert_eq!(a[5].swaps, b[5].swaps);
    }

    #[test]
    fn every_taxi_parks_and_resumes() {
        let s = TaxiScenario::small(3);
        for p in s.generate() {
            assert!(!p.swaps.is_empty(), "horizon fits at least one swap");
            // Each swap contributes a zero-velocity update at the park
            // tick, and motion resumes afterwards (unless the horizon
            // truncated the break).
            for &(park, resume) in &p.swaps {
                assert!(p.updates.iter().any(|&(t, v)| t == park && v == Velocity::zero()));
                assert!(p.parked_at(park));
                if resume <= s.horizon {
                    assert!(!p.parked_at(resume));
                    let resumed = p
                        .updates
                        .iter()
                        .find(|&&(t, _)| t == resume)
                        .expect("resume update scheduled");
                    assert!(resumed.1.speed() >= s.speed.0);
                }
            }
            // The trajectory is genuinely stationary mid-swap.
            let &(park, resume) = &p.swaps[0];
            if resume <= s.horizon {
                let traj = p.trajectory();
                assert_eq!(traj.position_at_tick(park), traj.position_at_tick(resume - 1));
            }
        }
    }

    #[test]
    fn updates_sorted_and_bounded() {
        let s = TaxiScenario::small(9);
        for p in s.generate() {
            assert!(p.updates.windows(2).all(|w| w[0].0 < w[1].0), "ascending ticks");
            assert!(p.updates.iter().all(|&(t, _)| t >= 1 && t <= s.horizon));
        }
    }

    #[test]
    fn due_ops_cover_exactly_the_window() {
        let s = TaxiScenario::small(5);
        let plans = s.generate();
        let mut db = Database::new(2000);
        let ids = s.populate(&mut db, &plans);
        let total: usize = plans.iter().map(|p| p.updates.len()).sum();
        let a = due_motion_ops(&ids, &plans, 0, 500).len();
        let b = due_motion_ops(&ids, &plans, 500, s.horizon).len();
        assert_eq!(a + b, total, "the two windows partition the schedule");
        assert!(due_motion_ops(&ids, &plans, s.horizon, s.horizon + 100).is_empty());
    }
}
