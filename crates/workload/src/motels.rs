//! The MOTELS relation: stationary spatial objects with price and
//! availability, spread along a highway (the Section 1 scenario of a car
//! querying "motels within a radius of 5 miles").

use most_core::Database;
use most_spatial::{Point, Velocity};
use most_testkit::rng::Rng;

/// One motel.
#[derive(Debug, Clone)]
pub struct Motel {
    /// Geographic coordinates.
    pub location: Point,
    /// Room price.
    pub price: f64,
    /// Rooms available right now.
    pub availability: i64,
}

/// Generates `count` motels scattered within `offset` of a straight
/// west–east highway of the given `length`.
pub fn highway_motels(count: usize, length: f64, offset: f64, seed: u64) -> Vec<Motel> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| Motel {
            location: Point::new(
                rng.random_range(0.0..length),
                rng.random_range(-offset..offset),
            ),
            price: rng.random_range(40.0..180.0),
            availability: rng.random_range(0i64..40),
        })
        .collect()
}

/// Inserts motels as stationary spatial objects of class `motels`.
pub fn populate(db: &mut Database, motels: &[Motel]) -> Vec<u64> {
    motels
        .iter()
        .map(|m| {
            let id = db.insert_moving_object("motels", m.location, Velocity::zero());
            db.set_static(id, "PRICE", m.price.into()).expect("open class");
            db.set_static(id, "AVAILABILITY", m.availability.into())
                .expect("open class");
            id
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motels_within_bounds() {
        for m in highway_motels(100, 5000.0, 50.0, 1) {
            assert!((0.0..5000.0).contains(&m.location.x));
            assert!(m.location.y.abs() <= 50.0);
            assert!((40.0..180.0).contains(&m.price));
            assert!((0..40).contains(&m.availability));
        }
    }

    #[test]
    fn populate_creates_stationary_objects() {
        let motels = highway_motels(10, 1000.0, 20.0, 2);
        let mut db = Database::new(100);
        let ids = populate(&mut db, &motels);
        assert_eq!(ids.len(), 10);
        for (id, m) in ids.iter().zip(&motels) {
            let o = db.object(*id).unwrap();
            assert_eq!(o.position_at(50), Some(m.location));
            assert_eq!(o.velocity_at(0), Some(Velocity::zero()));
        }
    }

    #[test]
    fn reproducible() {
        let a = highway_motels(5, 100.0, 5.0, 9);
        let b = highway_motels(5, 100.0, 5.0, 9);
        assert_eq!(a[2].location, b[2].location);
    }
}
