//! Synthetic workload generators for the MOST reproduction.
//!
//! The 1997 paper has no datasets; its motivating scenarios are cars on
//! highways querying motels, aircraft around airports, and convoys of
//! vehicles.  This crate generates seeded, reproducible instances of those
//! scenarios (DESIGN.md, substitutions) for the examples, integration tests
//! and the benchmark harness:
//!
//! * [`update_process`] — Poisson-like motion-vector change processes ("the
//!   motion vector of an object can change, but in most cases it does so
//!   less frequently than the position");
//! * [`cars`] — vehicles on a plane with random headings and speed changes;
//! * [`motels`] — stationary motels with prices along a highway;
//! * [`aircraft`] — aircraft converging on / departing an airport (the
//!   Section 1 air-traffic-control query);
//! * [`convoy`] — groups of vehicles travelling together (relationship
//!   queries);
//! * [`taxi`] — taxi fleets working in shifts: drive, park at a stand,
//!   swap drivers, resume (zero-velocity legs for the history
//!   warehouse);
//! * [`delivery`] — vans shuttling between shared depots with scheduled
//!   revisits (region re-entry for the windowed aggregates);
//! * [`gps`] — position-tracking policies for experiment E1: per-tick
//!   position updates vs dead-reckoning with a motion vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aircraft;
pub mod cars;
pub mod convoy;
pub mod delivery;
pub mod gps;
pub mod motels;
pub mod taxi;
pub mod update_process;

pub use cars::{CarPlan, CarScenario};
pub use delivery::{DeliveryPlan, DeliveryScenario};
pub use gps::{simulate_tracking, TrackingPolicy, TrackingReport};
pub use taxi::{TaxiPlan, TaxiScenario};
