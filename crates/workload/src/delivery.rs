//! Delivery vans shuttling between a shared set of depots, revisiting
//! them.
//!
//! A van's route is a depot sequence: drive straight to the next depot,
//! dwell there (zero motion vector) while loading, pull out toward the
//! following one.  Every route periodically returns to the van's home
//! depot, so depots are *revisited* — the history warehouse's
//! objects-per-region aggregates must count a revisiting van **once**
//! per window, and the alibi solver sees vans whose prisms repeatedly
//! collapse onto the same points.  Legs are integer-tick aligned: the
//! travel velocity is chosen so the van arrives *exactly* on a depot at
//! an integer tick, which keeps the generated trajectories reproducible
//! across engines.

use most_core::sharded::ShardedDbBuilder;
use most_core::{Database, UpdateOp};
use most_spatial::{Point, Trajectory, Velocity};
use most_temporal::Tick;
use most_testkit::rng::Rng;

/// One generated van.
#[derive(Debug, Clone)]
pub struct DeliveryPlan {
    /// Position at tick 0 — the van's home depot.
    pub start: Point,
    /// Initial motion vector (already en route to the first stop).
    pub velocity: Velocity,
    /// Scheduled motion-vector changes, ascending; dwell phases appear
    /// as zero-velocity entries at depot-arrival ticks.
    pub updates: Vec<(Tick, Velocity)>,
    /// The depot indices visited, in order, starting with the home
    /// depot.  Contains revisits by construction.
    pub route: Vec<usize>,
}

impl DeliveryPlan {
    /// The full trajectory implied by the plan.
    pub fn trajectory(&self) -> Trajectory {
        let mut t = Trajectory::starting_at(self.start, self.velocity);
        for &(at, v) in &self.updates {
            t.update_velocity(at, v);
        }
        t
    }
}

/// Scenario parameters for a delivery fleet.
#[derive(Debug, Clone)]
pub struct DeliveryScenario {
    /// Number of vans.
    pub vans: usize,
    /// Number of shared depots.
    pub depots: usize,
    /// Half-extent of the square area the depots are scattered over.
    pub area: f64,
    /// Nominal travel speed (the integer-tick alignment may slow a leg
    /// slightly, never speed it up).
    pub speed: f64,
    /// Ticks a van dwells at each depot.
    pub dwell: Tick,
    /// Stops per route (legs driven); every `home_every`-th stop is the
    /// home depot.
    pub stops: usize,
    /// Every this-many stops the van returns to its home depot (≥ 2).
    pub home_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DeliveryScenario {
    /// A small default scenario.
    pub fn small(seed: u64) -> Self {
        DeliveryScenario {
            vans: 12,
            depots: 5,
            area: 300.0,
            speed: 2.0,
            dwell: 10,
            stops: 8,
            home_every: 3,
            seed,
        }
    }

    /// The shared depot sites (a pure function of the seed).
    pub fn depot_sites(&self) -> Vec<Point> {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        (0..self.depots.max(2))
            .map(|_| {
                Point::new(
                    rng.random_range(-self.area..self.area),
                    rng.random_range(-self.area..self.area),
                )
            })
            .collect()
    }

    /// Generates the van plans over the depots of
    /// [`DeliveryScenario::depot_sites`].
    pub fn generate(&self) -> Vec<DeliveryPlan> {
        let sites = self.depot_sites();
        let mut rng = Rng::seed_from_u64(self.seed);
        let home_every = self.home_every.max(2);
        (0..self.vans)
            .map(|_| {
                let home = rng.random_range(0..sites.len() as u64) as usize;
                let mut route = vec![home];
                let mut updates = Vec::new();
                let mut at = sites[home];
                let mut clock: Tick = 0;
                let mut velocity = None;
                for stop in 1..=self.stops.max(1) {
                    let mut next = if stop % home_every == 0 {
                        home // scheduled return: the depot gets revisited
                    } else {
                        rng.random_range(0..sites.len() as u64) as usize
                    };
                    // No self-loop legs: a displaced scheduled return
                    // still counts — the van was just there.
                    if next == *route.last().expect("route starts at home") {
                        next = (next + 1) % sites.len();
                    }
                    let target = sites[next];
                    let dist = at.dist(target);
                    // Integer-tick alignment: stretch the leg to a whole
                    // number of ticks so the van lands exactly on the
                    // depot.
                    let ticks = ((dist / self.speed).ceil() as Tick).max(1);
                    let v = Velocity::new(
                        (target.x - at.x) / ticks as f64,
                        (target.y - at.y) / ticks as f64,
                    );
                    match velocity {
                        None => velocity = Some(v), // first leg: initial vector
                        Some(_) => updates.push((clock, v)),
                    }
                    clock += ticks;
                    updates.push((clock, Velocity::zero())); // arrive, dwell
                    clock += self.dwell.max(1);
                    at = target;
                    route.push(next);
                }
                DeliveryPlan {
                    start: sites[home],
                    velocity: velocity.expect("at least one stop"),
                    updates,
                    route,
                }
            })
            .collect()
    }

    /// Populates a MOST database with the vans at tick 0 (updates are
    /// *not* applied — drive them in with [`due_motion_ops`]).  Returns
    /// the object ids in plan order.
    pub fn populate(&self, db: &mut Database, plans: &[DeliveryPlan]) -> Vec<u64> {
        plans
            .iter()
            .map(|p| db.insert_moving_object("vans", p.start, p.velocity))
            .collect()
    }

    /// Populates a **sharded** database builder, mirroring
    /// [`DeliveryScenario::populate`] with identical global ids in plan
    /// order.  Returns the object ids in plan order.
    pub fn populate_sharded(
        &self,
        builder: &mut ShardedDbBuilder,
        plans: &[DeliveryPlan],
    ) -> Vec<u64> {
        plans
            .iter()
            .map(|p| builder.insert_moving_object("vans", p.start, p.velocity))
            .collect()
    }
}

/// The motion ops every plan schedules in `(last, now]`, in plan order
/// then tick order — the batch shape `Request::Update` and the engines'
/// `apply_updates` take.
pub fn due_motion_ops(
    ids: &[u64],
    plans: &[DeliveryPlan],
    last: Tick,
    now: Tick,
) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    for (id, plan) in ids.iter().zip(plans) {
        for &(at, v) in &plan.updates {
            if at > last && at <= now {
                ops.push(UpdateOp::Motion { id: *id, velocity: v });
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let s = DeliveryScenario::small(21);
        let a = s.generate();
        let b = s.generate();
        assert_eq!(a.len(), 12);
        assert_eq!(a[4].route, b[4].route);
        assert_eq!(a[4].updates, b[4].updates);
        assert_eq!(s.depot_sites(), s.depot_sites());
    }

    #[test]
    fn routes_revisit_depots() {
        let s = DeliveryScenario::small(2);
        for p in s.generate() {
            let home = p.route[0];
            let returns = p.route[1..].iter().filter(|&&d| d == home).count();
            assert!(returns >= 2, "8 stops with home_every=3 revisit home at least twice");
            assert!(p.route.windows(2).all(|w| w[0] != w[1]), "no self-loop legs");
        }
    }

    #[test]
    fn vans_land_exactly_on_depots_and_dwell() {
        let s = DeliveryScenario::small(17);
        let sites = s.depot_sites();
        for p in s.generate() {
            let traj = p.trajectory();
            // Walk the schedule: every zero-velocity update is an arrival
            // at the next depot on the route, held for the dwell.
            let mut stop = 1;
            for &(at, v) in &p.updates {
                if v == Velocity::zero() {
                    let depot = sites[p.route[stop]];
                    let pos = traj.position_at_tick(at);
                    assert!(pos.dist(depot) < 1e-6, "arrival lands on the depot");
                    assert_eq!(traj.position_at_tick(at + s.dwell - 1), pos, "dwell is stationary");
                    stop += 1;
                }
            }
            assert_eq!(stop, p.route.len(), "one arrival per routed stop");
        }
    }

    #[test]
    fn travel_speed_never_exceeds_nominal() {
        let s = DeliveryScenario::small(33);
        for p in s.generate() {
            assert!(p.velocity.speed() <= s.speed + 1e-9);
            for &(_, v) in &p.updates {
                assert!(v.speed() <= s.speed + 1e-9, "alignment only stretches legs");
            }
        }
    }

    #[test]
    fn populate_sharded_mirrors_single_db() {
        let s = DeliveryScenario::small(8);
        let plans = s.generate();
        let mut db = Database::new(5000);
        let single = s.populate(&mut db, &plans);
        let mut b = ShardedDbBuilder::new(3, 5000);
        let sharded = s.populate_sharded(&mut b, &plans);
        assert_eq!(single, sharded);
        assert_eq!(b.finish().pin().len(), plans.len());
    }
}
