//! Convoys: groups of vehicles travelling together, plus independent
//! traffic — the workload behind relationship queries ("objects that will
//! stay within 2 miles of each other for at least the next 3 minutes") and
//! the Until example ("the distance between o and n stays within 5 miles
//! until they both enter polygon P").

use most_core::Database;
use most_spatial::{Point, Velocity};
use most_testkit::rng::Rng;

/// A generated convoy scenario.
#[derive(Debug, Clone)]
pub struct ConvoyScenario {
    /// Vehicles: `(position, velocity, convoy id)`; convoy id `None` for
    /// independent traffic.
    pub vehicles: Vec<(Point, Velocity, Option<usize>)>,
}

/// Generates `convoys` groups of `per_convoy` vehicles each (members share
/// a heading and stay within `spread` of their leader), plus `independent`
/// free vehicles.
pub fn generate(
    convoys: usize,
    per_convoy: usize,
    independent: usize,
    area: f64,
    spread: f64,
    seed: u64,
) -> ConvoyScenario {
    let mut rng = Rng::seed_from_u64(seed);
    let mut vehicles = Vec::new();
    for c in 0..convoys {
        let leader = Point::new(
            rng.random_range(-area..area),
            rng.random_range(-area..area),
        );
        let angle = rng.random_range(0.0..std::f64::consts::TAU);
        let speed = rng.random_range(1.0..2.0);
        let v = Velocity::new(angle.cos() * speed, angle.sin() * speed);
        for _ in 0..per_convoy {
            let jitter = Point::new(
                leader.x + rng.random_range(-spread..spread),
                leader.y + rng.random_range(-spread..spread),
            );
            vehicles.push((jitter, v, Some(c)));
        }
    }
    for _ in 0..independent {
        let p = Point::new(
            rng.random_range(-area..area),
            rng.random_range(-area..area),
        );
        let angle = rng.random_range(0.0..std::f64::consts::TAU);
        let speed = rng.random_range(1.0..2.0);
        vehicles.push((p, Velocity::new(angle.cos() * speed, angle.sin() * speed), None));
    }
    ConvoyScenario { vehicles }
}

impl ConvoyScenario {
    /// Inserts every vehicle as a `vehicles` object; returns
    /// `(id, convoy id)` pairs.
    pub fn populate(&self, db: &mut Database) -> Vec<(u64, Option<usize>)> {
        self.vehicles
            .iter()
            .map(|(p, v, c)| (db.insert_moving_object("vehicles", *p, *v), *c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convoy_members_share_velocity_and_stay_close() {
        let s = generate(3, 4, 5, 1000.0, 3.0, 7);
        assert_eq!(s.vehicles.len(), 3 * 4 + 5);
        for c in 0..3 {
            let members: Vec<_> = s
                .vehicles
                .iter()
                .filter(|(_, _, cid)| *cid == Some(c))
                .collect();
            assert_eq!(members.len(), 4);
            let v0 = members[0].1;
            for (p, v, _) in &members {
                assert_eq!(*v, v0, "same motion vector within convoy");
                // All within 2*spread of each other.
                assert!(members.iter().all(|(q, _, _)| p.dist(*q) <= 4.0 * 3.0));
            }
        }
    }

    #[test]
    fn populate_assigns_ids() {
        let s = generate(1, 3, 2, 100.0, 2.0, 1);
        let mut db = Database::new(100);
        let ids = s.populate(&mut db);
        assert_eq!(ids.len(), 5);
        assert_eq!(ids.iter().filter(|(_, c)| c.is_some()).count(), 3);
        assert_eq!(db.len(), 5);
    }

    #[test]
    fn reproducible() {
        let a = generate(2, 2, 2, 100.0, 2.0, 5);
        let b = generate(2, 2, 2, 100.0, 2.0, 5);
        assert_eq!(a.vehicles.len(), b.vehicles.len());
        assert_eq!(a.vehicles[0].0, b.vehicles[0].0);
    }
}
