//! Motion-vector change processes.
//!
//! Inter-update gaps are sampled from a geometric approximation of an
//! exponential distribution with the given mean, producing Poisson-like
//! update streams; velocities are sampled uniformly in direction with
//! speeds in a band.

use most_spatial::Velocity;
use most_temporal::{Duration, Tick};
use most_testkit::rng::Rng;

/// Samples an inter-update gap with the given mean (≥ 1 tick).
pub fn sample_gap(rng: &mut Rng, mean: f64) -> Duration {
    let u: f64 = rng.random_range(1e-12..1.0);
    let gap = -u.ln() * mean;
    gap.max(1.0).round() as Duration
}

/// Samples a velocity with uniform direction and speed in `[lo, hi]`.
pub fn sample_velocity(rng: &mut Rng, lo: f64, hi: f64) -> Velocity {
    let angle = rng.random_range(0.0..std::f64::consts::TAU);
    let speed = rng.random_range(lo..=hi);
    Velocity::new(angle.cos() * speed, angle.sin() * speed)
}

/// Generates an update schedule over `[1, until]` with mean gap
/// `mean_gap`: `(tick, new velocity)` pairs in ascending order.
pub fn update_schedule(
    rng: &mut Rng,
    until: Tick,
    mean_gap: f64,
    speed_lo: f64,
    speed_hi: f64,
) -> Vec<(Tick, Velocity)> {
    let mut out = Vec::new();
    let mut t: Tick = 0;
    loop {
        t += sample_gap(rng, mean_gap);
        if t > until {
            return out;
        }
        out.push((t, sample_velocity(rng, speed_lo, speed_hi)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    #[test]
    fn gaps_positive_and_mean_roughly_right() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 5000;
        let mean = 40.0;
        let total: u64 = (0..n).map(|_| sample_gap(&mut rng, mean)).sum();
        let avg = total as f64 / n as f64;
        assert!(avg > mean * 0.9 && avg < mean * 1.1, "avg = {avg}");
    }

    #[test]
    fn velocities_in_speed_band() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..200 {
            let v = sample_velocity(&mut rng, 1.0, 3.0);
            let s = v.speed();
            assert!((1.0..=3.0 + 1e-9).contains(&s), "speed {s}");
        }
    }

    #[test]
    fn schedules_sorted_and_bounded() {
        let mut rng = Rng::seed_from_u64(42);
        let sched = update_schedule(&mut rng, 1000, 50.0, 0.5, 2.0);
        assert!(!sched.is_empty());
        assert!(sched.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(sched.iter().all(|(t, _)| *t >= 1 && *t <= 1000));
    }

    #[test]
    fn seeded_reproducibility() {
        let a = update_schedule(&mut Rng::seed_from_u64(9), 500, 30.0, 1.0, 2.0);
        let b = update_schedule(&mut Rng::seed_from_u64(9), 500, 30.0, 1.0, 2.0);
        assert_eq!(a, b);
    }
}
