//! Vehicles with random headings and Poisson-like motion-vector changes.

use crate::update_process::{sample_velocity, update_schedule};
use most_core::sharded::ShardedDbBuilder;
use most_core::Database;
use most_spatial::{Point, Trajectory, Velocity};
use most_temporal::Tick;
use most_testkit::rng::Rng;

/// One generated vehicle.
#[derive(Debug, Clone)]
pub struct CarPlan {
    /// Start position at tick 0.
    pub start: Point,
    /// Initial motion vector.
    pub velocity: Velocity,
    /// Scheduled motion-vector changes, ascending.
    pub updates: Vec<(Tick, Velocity)>,
    /// A price-like static attribute (uniform in `[40, 200)`).
    pub price: f64,
}

impl CarPlan {
    /// The full trajectory implied by the plan.
    pub fn trajectory(&self) -> Trajectory {
        let mut t = Trajectory::starting_at(self.start, self.velocity);
        for &(at, v) in &self.updates {
            t.update_velocity(at, v);
        }
        t
    }
}

/// Scenario parameters for a car fleet.
#[derive(Debug, Clone)]
pub struct CarScenario {
    /// Number of cars.
    pub count: usize,
    /// Half-extent of the square start area centred on the origin.
    pub area: f64,
    /// Speed band.
    pub speed: (f64, f64),
    /// Mean ticks between motion-vector changes.
    pub mean_update_gap: f64,
    /// Schedule horizon (updates generated in `[1, horizon]`).
    pub horizon: Tick,
    /// RNG seed.
    pub seed: u64,
}

impl CarScenario {
    /// A small default scenario.
    pub fn small(seed: u64) -> Self {
        CarScenario {
            count: 20,
            area: 500.0,
            speed: (0.5, 2.0),
            mean_update_gap: 100.0,
            horizon: 1000,
            seed,
        }
    }

    /// A scaled scenario: `count` cars at (roughly) the density of
    /// [`CarScenario::small`] — the start area grows with √count, so a
    /// 10⁶-car fleet doesn't pile onto one spot and spatial routing
    /// spreads it evenly.  The shards × objects sweeps (E16) and any
    /// load test aiming at the ROADMAP's millions-of-objects target
    /// build worlds through this.
    pub fn fleet(seed: u64, count: usize) -> Self {
        let small = CarScenario::small(seed);
        CarScenario {
            count,
            area: small.area * (count as f64 / small.count as f64).sqrt().max(1.0),
            ..small
        }
    }

    /// Generates the car plans.
    pub fn generate(&self) -> Vec<CarPlan> {
        let mut rng = Rng::seed_from_u64(self.seed);
        (0..self.count)
            .map(|_| {
                let start = Point::new(
                    rng.random_range(-self.area..self.area),
                    rng.random_range(-self.area..self.area),
                );
                let velocity = sample_velocity(&mut rng, self.speed.0, self.speed.1);
                let updates = update_schedule(
                    &mut rng,
                    self.horizon,
                    self.mean_update_gap,
                    self.speed.0,
                    self.speed.1,
                );
                let price = rng.random_range(40.0..200.0);
                CarPlan { start, velocity, updates, price }
            })
            .collect()
    }

    /// Populates a MOST database with the cars at tick 0 (updates are *not*
    /// applied — drive them in with [`apply_due_updates`] as the clock
    /// advances).  Returns the object ids in plan order.
    pub fn populate(&self, db: &mut Database, plans: &[CarPlan]) -> Vec<u64> {
        plans
            .iter()
            .map(|p| {
                let id = db.insert_moving_object("cars", p.start, p.velocity);
                db.set_static(id, "PRICE", p.price.into())
                    .expect("open class admits PRICE");
                id
            })
            .collect()
    }

    /// Populates a **sharded** database builder with the cars at tick 0,
    /// mirroring [`CarScenario::populate`]: identical global ids in plan
    /// order (the builder allocates them), routed to shards by the
    /// builder's policy.  Returns the object ids in plan order.
    pub fn populate_sharded(
        &self,
        builder: &mut ShardedDbBuilder,
        plans: &[CarPlan],
    ) -> Vec<u64> {
        plans
            .iter()
            .map(|p| {
                let id = builder.insert_moving_object("cars", p.start, p.velocity);
                builder
                    .set_static(id, "PRICE", p.price.into())
                    .expect("open class admits PRICE");
                id
            })
            .collect()
    }
}

/// Applies every planned update with `last < tick <= now` to the database
/// (the database clock must already be at the update tick or later; the
/// update is recorded at the database's current clock).  Returns how many
/// updates were applied.
///
/// This helper deliberately replays updates *at the current clock*, which
/// matches the paper's instantaneous-update assumption when called once per
/// tick; tests and benches that need exact update ticks advance the clock
/// tick by tick.
pub fn apply_due_updates(
    db: &mut Database,
    ids: &[u64],
    plans: &[CarPlan],
    last: Tick,
    now: Tick,
) -> usize {
    let mut applied = 0;
    for (id, plan) in ids.iter().zip(plans) {
        for &(at, v) in &plan.updates {
            if at > last && at <= now {
                db.update_motion(*id, v).expect("car exists");
                applied += 1;
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let s = CarScenario::small(11);
        let a = s.generate();
        let b = s.generate();
        assert_eq!(a.len(), 20);
        assert_eq!(a[3].start, b[3].start);
        assert_eq!(a[3].updates, b[3].updates);
    }

    #[test]
    fn plans_respect_parameters() {
        let s = CarScenario {
            count: 50,
            area: 100.0,
            speed: (1.0, 1.5),
            mean_update_gap: 50.0,
            horizon: 500,
            seed: 3,
        };
        for p in s.generate() {
            assert!(p.start.x.abs() <= 100.0 && p.start.y.abs() <= 100.0);
            let sp = p.velocity.speed();
            assert!((1.0..=1.5 + 1e-9).contains(&sp));
            assert!(p.updates.iter().all(|(t, _)| *t <= 500));
            assert!((40.0..200.0).contains(&p.price));
        }
    }

    #[test]
    fn populate_and_apply_updates() {
        let s = CarScenario::small(5);
        let plans = s.generate();
        let mut db = Database::new(2000);
        let ids = s.populate(&mut db, &plans);
        assert_eq!(ids.len(), plans.len());
        assert_eq!(db.len(), plans.len());
        // Walk the clock forward in one jump and replay due updates.
        db.advance_clock(200);
        let n = apply_due_updates(&mut db, &ids, &plans, 0, 200);
        let expected: usize = plans
            .iter()
            .map(|p| p.updates.iter().filter(|(t, _)| *t <= 200).count())
            .sum();
        assert_eq!(n, expected);
    }

    #[test]
    fn fleet_scales_area_with_count() {
        let small = CarScenario::small(7);
        let f = CarScenario::fleet(7, 2000);
        assert_eq!(f.count, 2000);
        // 2000 cars = 100x the small fleet, so the half-extent grows 10x.
        assert!((f.area - small.area * 10.0).abs() < 1e-9);
        // Never shrinks below the small scenario's area.
        assert_eq!(CarScenario::fleet(7, 5).area, small.area);
        // Reproducible like every other generator.
        let again = CarScenario::fleet(7, 2000);
        assert_eq!(f.generate()[42].start, again.generate()[42].start);
    }

    #[test]
    fn populate_sharded_mirrors_single_db() {
        let s = CarScenario::fleet(9, 64);
        let plans = s.generate();
        let mut db = Database::new(2000);
        let single_ids = s.populate(&mut db, &plans);

        let mut b = ShardedDbBuilder::new(4, 2000);
        let sharded_ids = s.populate_sharded(&mut b, &plans);
        assert_eq!(sharded_ids, single_ids, "global ids must match plan order");

        let sharded = b.finish();
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.pin().len(), plans.len());
    }

    #[test]
    fn trajectory_matches_plan() {
        let plan = CarPlan {
            start: Point::origin(),
            velocity: Velocity::new(1.0, 0.0),
            updates: vec![(10, Velocity::new(0.0, 1.0))],
            price: 50.0,
        };
        let t = plan.trajectory();
        assert_eq!(t.position_at_tick(10), Point::new(10.0, 0.0));
        assert_eq!(t.position_at_tick(20), Point::new(10.0, 10.0));
    }
}
