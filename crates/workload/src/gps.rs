//! Position-tracking policies: the experiment behind the paper's core
//! motivation (E1).
//!
//! "Either the position is updated very frequently (which would impose a
//! serious performance and wireless-bandwidth overhead), or, the answer to
//! queries is outdated" — versus representing the position "as a function
//! of its motion vector".  [`simulate_tracking`] replays a ground-truth
//! position sequence against a tracking policy and reports how many
//! database updates the policy sent and how far the database's belief
//! strayed from the truth.

use most_spatial::{Point, Velocity};

/// How the vehicle reports to the database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackingPolicy {
    /// Traditional DBMS: a position-only update every tick.
    EveryTick,
    /// Traditional DBMS under bandwidth pressure: a position-only update
    /// every `k` ticks (the database believes the last reported position).
    EveryK(u64),
    /// MOST: position + motion vector, re-sent only when the dead-reckoned
    /// prediction drifts more than `threshold` from the truth.
    DeadReckoning {
        /// Allowed prediction error before an update is sent.
        threshold: f64,
    },
}

/// Outcome of a tracking simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingReport {
    /// Updates sent to the database.
    pub updates: u64,
    /// Maximum deviation between the database's belief and the truth.
    pub max_error: f64,
    /// Mean deviation across all ticks.
    pub mean_error: f64,
}

/// Replays `truth` (one position per tick, starting at tick 0) under the
/// policy.  The first report at tick 0 is free for every policy (the object
/// must be inserted); subsequent reports count as updates.
pub fn simulate_tracking(truth: &[Point], policy: TrackingPolicy) -> TrackingReport {
    assert!(!truth.is_empty(), "need at least one position");
    let mut updates = 0u64;
    let mut max_error = 0.0f64;
    let mut sum_error = 0.0f64;

    // Database belief: last reported position (+ vector for dead
    // reckoning) and the tick it was reported at.
    let mut believed_pos = truth[0];
    let mut believed_vel = match policy {
        TrackingPolicy::DeadReckoning { .. } => estimate_velocity(truth, 0),
        _ => Velocity::zero(),
    };
    let mut reported_at = 0usize;

    for (t, &actual) in truth.iter().enumerate().skip(1) {
        let predicted = believed_pos + believed_vel * ((t - reported_at) as f64);
        let err = predicted.dist(actual);
        let must_report = match policy {
            TrackingPolicy::EveryTick => true,
            TrackingPolicy::EveryK(k) => (t - reported_at) as u64 >= k.max(1),
            TrackingPolicy::DeadReckoning { threshold } => err > threshold,
        };
        if must_report {
            updates += 1;
            believed_pos = actual;
            believed_vel = match policy {
                TrackingPolicy::DeadReckoning { .. } => estimate_velocity(truth, t),
                _ => Velocity::zero(),
            };
            reported_at = t;
            // After reporting, the database is exact at this tick.
            max_error = max_error.max(0.0);
        } else {
            max_error = max_error.max(err);
            sum_error += err;
        }
        if !must_report {
            continue;
        }
    }
    TrackingReport {
        updates,
        max_error,
        mean_error: sum_error / truth.len().max(1) as f64,
    }
}

/// Velocity estimate at tick `t`: the forward difference (what a GPS unit
/// would derive from consecutive fixes).
fn estimate_velocity(truth: &[Point], t: usize) -> Velocity {
    match (truth.get(t), truth.get(t + 1)) {
        (Some(a), Some(b)) => b.delta(*a),
        _ => Velocity::zero(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::Trajectory;

    fn straight_line(n: usize) -> Vec<Point> {
        (0..n).map(|t| Point::new(t as f64, 0.0)).collect()
    }

    fn zigzag(n: usize, turn_every: usize) -> Vec<Point> {
        let mut traj = Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0));
        for (i, t) in (turn_every..n).step_by(turn_every).enumerate() {
            let v = if i % 2 == 0 {
                Velocity::new(0.0, 1.0)
            } else {
                Velocity::new(1.0, 0.0)
            };
            traj.update_velocity(t as u64, v);
        }
        (0..n).map(|t| traj.position_at_tick(t as u64)).collect()
    }

    #[test]
    fn every_tick_updates_every_tick() {
        let r = simulate_tracking(&straight_line(100), TrackingPolicy::EveryTick);
        assert_eq!(r.updates, 99);
        assert_eq!(r.max_error, 0.0);
    }

    #[test]
    fn every_k_trades_updates_for_error() {
        let r = simulate_tracking(&straight_line(100), TrackingPolicy::EveryK(10));
        assert!(r.updates <= 10);
        // The static belief lags by up to 9 ticks at speed 1.
        assert!(r.max_error >= 9.0 - 1e-9, "max_error = {}", r.max_error);
    }

    #[test]
    fn dead_reckoning_on_straight_line_needs_no_updates() {
        // The paper's claim in its purest form: with a correct motion
        // vector, a straight drive never needs an update.
        let r = simulate_tracking(
            &straight_line(1000),
            TrackingPolicy::DeadReckoning { threshold: 0.5 },
        );
        assert_eq!(r.updates, 0);
        assert!(r.max_error < 0.5);
    }

    #[test]
    fn dead_reckoning_updates_once_per_turn() {
        let truth = zigzag(200, 50); // 3 turns
        let r = simulate_tracking(&truth, TrackingPolicy::DeadReckoning { threshold: 1.0 });
        assert!(r.updates >= 3 && r.updates <= 6, "updates = {}", r.updates);
        assert!(r.max_error <= 2.0, "max_error = {}", r.max_error);
        // Orders of magnitude below per-tick updating.
        let every = simulate_tracking(&truth, TrackingPolicy::EveryTick);
        assert!(every.updates > 20 * r.updates);
    }

    #[test]
    #[should_panic]
    fn empty_truth_panics() {
        let _ = simulate_tracking(&[], TrackingPolicy::EveryTick);
    }
}
