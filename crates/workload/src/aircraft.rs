//! Aircraft around an airport: the Section 1 air-traffic-control scenario
//! ("retrieve all the airplanes that will come within 30 miles of the
//! airport in the next 10 minutes").

use most_core::Database;
use most_spatial::{Point, Velocity};
use most_testkit::rng::Rng;

/// One aircraft.
#[derive(Debug, Clone)]
pub struct Aircraft {
    /// Position at tick 0.
    pub position: Point,
    /// Motion vector.
    pub velocity: Velocity,
    /// Whether the generator aimed it at the airport (ground truth for
    /// sanity checks; closeness still depends on speed and distance).
    pub inbound: bool,
}

/// Generates aircraft on a ring `[ring_lo, ring_hi]` around the airport at
/// the origin; roughly `inbound_fraction` of them fly toward the airport
/// (with some aiming error), the rest in random directions.
pub fn around_airport(
    count: usize,
    ring_lo: f64,
    ring_hi: f64,
    speed: (f64, f64),
    inbound_fraction: f64,
    seed: u64,
) -> Vec<Aircraft> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let angle = rng.random_range(0.0..std::f64::consts::TAU);
            let dist = rng.random_range(ring_lo..ring_hi);
            let position = Point::new(angle.cos() * dist, angle.sin() * dist);
            let sp = rng.random_range(speed.0..=speed.1);
            let inbound = rng.random_range(0.0..1.0) < inbound_fraction;
            let heading = if inbound {
                // Toward the airport, with up to ±0.2 rad of aiming error.
                let base = (-position.y).atan2(-position.x);
                base + rng.random_range(-0.2..0.2)
            } else {
                rng.random_range(0.0..std::f64::consts::TAU)
            };
            Aircraft {
                position,
                velocity: Velocity::new(heading.cos() * sp, heading.sin() * sp),
                inbound,
            }
        })
        .collect()
}

/// Inserts aircraft as class `aircraft` objects.
pub fn populate(db: &mut Database, fleet: &[Aircraft]) -> Vec<u64> {
    fleet
        .iter()
        .map(|a| db.insert_moving_object("aircraft", a.position, a.velocity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aircraft_on_ring_with_speeds() {
        let fleet = around_airport(200, 100.0, 300.0, (2.0, 4.0), 0.5, 3);
        for a in &fleet {
            let d = a.position.dist(Point::origin());
            assert!((100.0..300.0).contains(&d));
            let s = a.velocity.speed();
            assert!((2.0..=4.0 + 1e-9).contains(&s));
        }
        let inbound = fleet.iter().filter(|a| a.inbound).count();
        assert!(inbound > 60 && inbound < 140, "inbound = {inbound}");
    }

    #[test]
    fn inbound_aircraft_approach() {
        let fleet = around_airport(100, 200.0, 250.0, (3.0, 3.0), 1.0, 4);
        for a in &fleet {
            let now = a.position.dist(Point::origin());
            let later = (a.position + a.velocity * 10.0).dist(Point::origin());
            assert!(later < now, "inbound aircraft should close distance");
        }
    }

    #[test]
    fn populate_database() {
        let fleet = around_airport(10, 100.0, 200.0, (2.0, 3.0), 0.5, 5);
        let mut db = Database::new(1000);
        let ids = populate(&mut db, &fleet);
        assert_eq!(ids.len(), 10);
        assert_eq!(db.object(ids[0]).unwrap().class, "aircraft");
    }
}
