//! Criterion bench for E5: the 2^k subquery expansion of the
//! MOST-on-DBMS rewrite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use most_core::rewrite::{MostDbmsLayer, MovingTableDef};
use most_dbms::expr::{CmpOp, Expr};
use most_dbms::query::SelectQuery;
use most_dbms::schema::ColumnType;
use most_dbms::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn build_layer(n: usize, attrs: usize) -> MostDbmsLayer {
    let mut layer = MostDbmsLayer::new();
    layer
        .create_table(MovingTableDef {
            name: "cars".into(),
            static_columns: vec![
                ("id".into(), ColumnType::Id),
                ("price".into(), ColumnType::Float),
            ],
            dynamic_attrs: (0..attrs).map(|i| format!("A{i}")).collect(),
        })
        .expect("create");
    let mut rng = StdRng::seed_from_u64(3);
    for i in 0..n as u64 {
        let dynamics = (0..attrs)
            .map(|_| (rng.random_range(0.0..1000.0), 0, rng.random_range(-2.0..2.0)))
            .collect();
        layer
            .insert("cars", vec![Value::Id(i), rng.random_range(40.0..200.0).into()], dynamics)
            .expect("insert");
    }
    layer
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_rewrite_blowup");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let layer = build_layer(500, 8);
    for k in [1usize, 2, 4, 8] {
        let mut clause = Expr::cmp(CmpOp::Le, Expr::col("price"), Expr::val(1e9));
        for i in 0..k {
            clause = clause.and(Expr::cmp(
                CmpOp::Ge,
                Expr::col(format!("A{i}")),
                Expr::val(200.0),
            ));
        }
        let q = SelectQuery::from_table("cars").column("id").filter(clause);
        g.bench_with_input(BenchmarkId::new("k_atoms", k), &q, |b, q| {
            b.iter(|| black_box(layer.query(q, 50).expect("query")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
