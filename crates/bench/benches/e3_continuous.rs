//! Criterion bench for E3: one materialized continuous-query evaluation vs
//! a per-tick instantaneous re-evaluation of the same query.

use criterion::{criterion_group, criterion_main, Criterion};
use most_core::{Database, RefreshMode};
use most_ftl::Query;
use most_spatial::Polygon;
use most_workload::cars::CarScenario;
use std::hint::black_box;
use std::time::Duration;

fn build_db(n: usize) -> Database {
    let scenario = CarScenario {
        count: n,
        area: 400.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18,
        horizon: 500,
        seed: 42,
    };
    let plans = scenario.generate();
    let mut db = Database::new(1_000);
    db.add_region("P", Polygon::rectangle(-100.0, -100.0, 100.0, 100.0));
    scenario.populate(&mut db, &plans);
    db
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_continuous_service");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let query = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").expect("parses");
    let window = 100u64;
    for n in [30usize, 100] {
        g.bench_function(format!("materialized_once/n{n}"), |b| {
            b.iter(|| {
                let mut db = build_db(n);
                let cq = db.register_continuous(query.clone()).expect("register");
                let mut total = 0usize;
                for t in 0..window {
                    db.advance_clock(1);
                    total += db.continuous_display(cq, t + 1).expect("display").len();
                }
                black_box(total)
            })
        });
        g.bench_function(format!("materialized_incremental/n{n}"), |b| {
            b.iter(|| {
                let mut db = build_db(n);
                db.set_refresh_mode(RefreshMode::Incremental);
                let cq = db.register_continuous(query.clone()).expect("register");
                let ids = db.object_ids();
                let mut total = 0usize;
                for t in 0..window {
                    db.advance_clock(1);
                    // One motion update per tick: the regime where refresh
                    // strategy dominates.
                    let id = ids[(t as usize) % ids.len()];
                    let v = db.object(id).expect("exists").velocity_at(t + 1).expect("spatial");
                    db.update_motion(id, v).expect("update");
                    total += db.continuous_display(cq, t + 1).expect("display").len();
                }
                black_box(total)
            })
        });
        g.bench_function(format!("reissue_per_tick/n{n}"), |b| {
            b.iter(|| {
                let mut db = build_db(n);
                let mut total = 0usize;
                for _ in 0..window {
                    db.advance_clock(1);
                    total += db.instantaneous_now(&query).expect("instantaneous").len();
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
