//! Criterion bench for E2: instantaneous range query latency, index vs
//! scan, across database sizes — the paper's "logarithmic access time"
//! claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use most_index::{DynamicAttributeIndex, IndexKind, ScanIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn build(n: usize) -> (DynamicAttributeIndex, ScanIndex) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut idx =
        DynamicAttributeIndex::new(IndexKind::QuadTree, 1_000, (-(n as f64), 2.0 * n as f64));
    let mut scan = ScanIndex::new();
    for i in 0..n as u64 {
        let v0 = rng.random_range(0.0..n as f64);
        let slope = rng.random_range(-0.5..0.5);
        idx.insert(i, 0, v0, slope);
        scan.upsert(i, 0, v0, slope);
    }
    (idx, scan)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_range_query");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [1_000usize, 10_000, 100_000] {
        let (idx, scan) = build(n);
        let window = n as f64 / 100.0;
        let lo = n as f64 / 3.0;
        g.bench_with_input(BenchmarkId::new("index", n), &idx, |b, idx| {
            b.iter(|| idx.instantaneous(black_box(500), lo, lo + window))
        });
        g.bench_with_input(BenchmarkId::new("scan", n), &scan, |b, scan| {
            b.iter(|| scan.instantaneous(black_box(500), lo, lo + window))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
