//! Criterion bench for E4: the appendix interval algorithm vs the per-tick
//! oracle on the paper's example queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use most_bench::experiments::e4_ftl::paper_queries;
use most_ftl::context::MemoryContext;
use most_ftl::semantics::naive_answer;
use most_ftl::{evaluate_query, Query};
use most_spatial::Polygon;
use most_workload::cars::CarScenario;
use std::hint::black_box;
use std::time::Duration;

fn context(n: usize, horizon: u64) -> MemoryContext {
    let scenario = CarScenario {
        count: n,
        area: 300.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18,
        horizon,
        seed: 9,
    };
    let mut ctx = MemoryContext::new(horizon);
    for (i, plan) in scenario.generate().iter().enumerate() {
        ctx.add_object(i as u64 + 1, plan.trajectory());
        ctx.set_attr(i as u64 + 1, "PRICE", plan.price);
    }
    ctx.add_region("P", Polygon::rectangle(-120.0, -120.0, 120.0, 120.0));
    ctx.add_region("Q", Polygon::rectangle(150.0, -80.0, 280.0, 80.0));
    ctx
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_ftl_eval");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let ctx = context(20, 300);
    for (name, src) in paper_queries() {
        let q = Query::parse(src).expect("parses");
        g.bench_with_input(BenchmarkId::new("interval_algo", name), &q, |b, q| {
            b.iter(|| black_box(evaluate_query(&ctx, q).expect("eval")))
        });
        g.bench_with_input(BenchmarkId::new("per_tick_oracle", name), &q, |b, q| {
            b.iter(|| black_box(naive_answer(&ctx, q).expect("eval")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
