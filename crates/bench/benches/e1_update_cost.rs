//! Criterion bench for E1: cost of the tracking policies themselves
//! (the table-level comparison lives in the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use most_spatial::{Point, Trajectory, Velocity};
use most_workload::update_process::update_schedule;
use most_workload::{simulate_tracking, TrackingPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn truth(horizon: u64, mean_gap: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut traj = Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0));
    for (t, v) in update_schedule(&mut rng, horizon, mean_gap, 0.5, 2.0) {
        traj.update_velocity(t, v);
    }
    (0..=horizon).map(|t| traj.position_at_tick(t)).collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_tracking_policies");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let path = truth(5_000, 100.0, 1);
    for (name, policy) in [
        ("every_tick", TrackingPolicy::EveryTick),
        ("every_20", TrackingPolicy::EveryK(20)),
        ("dead_reckoning", TrackingPolicy::DeadReckoning { threshold: 1.0 }),
    ] {
        g.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &p| {
            b.iter(|| simulate_tracking(black_box(&path), p))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
