//! Criterion bench for E6: strategy execution cost (messages are counted in
//! the `experiments` binary; here we measure the simulation work itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use most_bench::experiments::e6_distributed::continuous_message_ratio;
use most_mobile::strategy::{
    object_query_data_shipping, object_query_query_shipping, ObjectPredicate,
};
use most_mobile::{FleetSim, Network};
use most_spatial::{Point, Velocity};
use most_workload::cars::CarScenario;
use std::hint::black_box;
use std::time::Duration;

fn fleet(n: usize) -> FleetSim {
    let scenario = CarScenario {
        count: n,
        area: 400.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18,
        horizon: 300,
        seed: 1,
    };
    let mut sim = FleetSim::new();
    sim.add_node(0, Point::origin(), Velocity::zero(), 0.0, vec![]);
    for (i, p) in scenario.generate().into_iter().enumerate() {
        sim.add_node(i as u64 + 1, p.start, p.velocity, p.price, p.updates);
    }
    sim
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_strategies");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let pred = ObjectPredicate::ReachesPointWithin {
        target: Point::origin(),
        radius: 50.0,
        within: 300,
    };
    for n in [50usize, 200] {
        let sim = fleet(n);
        g.bench_with_input(BenchmarkId::new("data_shipping", n), &sim, |b, sim| {
            b.iter(|| {
                let mut net = Network::new(0);
                black_box(object_query_data_shipping(sim, &mut net, 0, &pred))
            })
        });
        g.bench_with_input(BenchmarkId::new("query_shipping", n), &sim, |b, sim| {
            b.iter(|| {
                let mut net = Network::new(0);
                black_box(object_query_query_shipping(sim, &mut net, 0, &pred, "Q"))
            })
        });
    }
    g.bench_function("continuous_ratio/n50", |b| {
        b.iter(|| black_box(continuous_message_ratio(50, 300)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
