//! Criterion bench for E7: quadtree vs R-tree vs scan — build, point
//! query and update costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use most_index::{DynamicAttributeIndex, IndexKind, ScanIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn objects(n: usize) -> Vec<(u64, f64, f64)> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n as u64)
        .map(|i| (i, rng.random_range(0.0..n as f64), rng.random_range(-0.5..0.5)))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_structures");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let n = 10_000usize;
    let objs = objects(n);
    let value_range = (-(n as f64), 2.0 * n as f64);
    let window = n as f64 / 100.0;

    for kind in [IndexKind::QuadTree, IndexKind::RTree] {
        let name = format!("{kind:?}");
        g.bench_with_input(BenchmarkId::new("build", &name), &kind, |b, &k| {
            b.iter(|| {
                let mut idx = DynamicAttributeIndex::new(k, 1_000, value_range);
                for &(id, v, s) in &objs {
                    idx.insert(id, 0, v, s);
                }
                black_box(idx.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("bulk_build", &name), &kind, |b, &k| {
            b.iter(|| {
                let idx = DynamicAttributeIndex::bulk(
                    k,
                    1_000,
                    value_range,
                    objs.iter().copied(),
                );
                black_box(idx.len())
            })
        });
        let mut idx = DynamicAttributeIndex::new(kind, 1_000, value_range);
        for &(id, v, s) in &objs {
            idx.insert(id, 0, v, s);
        }
        g.bench_with_input(BenchmarkId::new("query", &name), &idx, |b, idx| {
            b.iter(|| black_box(idx.instantaneous(500, 1000.0, 1000.0 + window)))
        });
    }
    let mut scan = ScanIndex::new();
    for &(id, v, s) in &objs {
        scan.upsert(id, 0, v, s);
    }
    g.bench_function("query/scan", |b| {
        b.iter(|| black_box(scan.instantaneous(500, 1000.0, 1000.0 + window)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
