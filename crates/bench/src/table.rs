//! Result tables: the harness's output format.

use most_testkit::ser::{Json, ToJson};
use std::fmt;

/// A result table (rendered as GitHub-flavoured markdown).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment id (e.g. "E2").
    pub id: String,
    /// Title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (the claim being tested, caveats).
    pub notes: Vec<String>,
    /// Headers of wall-clock-derived columns (see [`Table::stabilize`]).
    pub measured: Vec<String>,
    /// Deterministic observability snapshot (`most_obs::metrics_kv`)
    /// taken after the experiment ran: sorted `(counter, value)` pairs,
    /// byte-identical across same-seed runs (never wall-clock values).
    pub metrics: Vec<(String, u64)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: &[&str],
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            measured: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Marks columns (by header name) as wall-clock measurements.
    ///
    /// Measured cells vary run to run; [`Table::stabilize`] blanks them so
    /// the rendered output is reproducible (the `--quick` CI mode).
    pub fn mark_measured(&mut self, headers: &[&str]) -> &mut Self {
        for h in headers {
            debug_assert!(
                self.headers.iter().any(|x| x == h),
                "unknown measured column {h:?}"
            );
            self.measured.push((*h).to_string());
        }
        self
    }

    /// Replaces every cell of a measured column with `—`, making the
    /// rendered table deterministic across runs.
    pub fn stabilize(&mut self) {
        if self.measured.is_empty() {
            return;
        }
        let cols: Vec<usize> = self
            .measured
            .iter()
            .filter_map(|h| self.headers.iter().position(|x| x == h))
            .collect();
        for row in &mut self.rows {
            for &c in &cols {
                if let Some(cell) = row.get_mut(c) {
                    *cell = "—".to_owned();
                }
            }
        }
        self.notes.push(
            "wall-clock columns elided for deterministic output (rerun without \
             --quick for measured values)"
                .to_owned(),
        );
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// A cell by header name and row index (tests).
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// A numeric cell by header name and row index (tests).
    pub fn cell_f64(&self, row: usize, header: &str) -> Option<f64> {
        self.cell(row, header)?.parse().ok()
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_owned(), self.id.to_json()),
            ("title".to_owned(), self.title.to_json()),
            ("headers".to_owned(), self.headers.to_json()),
            ("rows".to_owned(), self.rows.to_json()),
            ("notes".to_owned(), self.notes.to_json()),
            ("measured".to_owned(), self.measured.to_json()),
            (
                "metrics".to_owned(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}\n", self.id, self.title)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        for n in &self.notes {
            writeln!(f, "\n> {n}")?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "\nmetrics:")?;
            for (k, v) in &self.metrics {
                writeln!(f, "  {k} = {v}")?;
            }
        }
        Ok(())
    }
}

/// Formats a float with 3 significant-ish decimals.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a `std::time::Duration` in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_and_lookup() {
        let mut t = Table::new("E0", "demo", &["n", "time"]);
        t.row(vec!["10".into(), "1.5".into()]);
        t.row(vec!["20".into(), "3.0".into()]);
        t.note("a note");
        assert_eq!(t.cell(1, "n"), Some("20"));
        assert_eq!(t.cell_f64(0, "time"), Some(1.5));
        assert_eq!(t.cell(0, "nope"), None);
        let s = t.to_string();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("| 10 | 1.5 |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    fn stabilize_blanks_only_measured_columns() {
        let mut t = Table::new("E0", "demo", &["n", "time"]);
        t.row(vec!["10".into(), "1.5ms".into()]);
        t.mark_measured(&["time"]);
        t.stabilize();
        assert_eq!(t.cell(0, "n"), Some("10"));
        assert_eq!(t.cell(0, "time"), Some("—"));
        assert!(t.notes.iter().any(|n| n.contains("deterministic")));

        // A table with no measured columns is untouched (no note).
        let mut plain = Table::new("E0", "demo", &["n"]);
        plain.row(vec!["10".into()]);
        plain.stabilize();
        assert!(plain.notes.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(0.01234), "0.0123");
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
