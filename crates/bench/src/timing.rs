//! Minimal wall-clock sampling harness — the in-repo replacement for the
//! external `criterion` crate.
//!
//! Each benchmark runs `warmup` untimed iterations and then `samples`
//! timed ones; we report the minimum and the median — the two robust
//! statistics for "how fast can this go" and "how fast does it usually
//! go".  No statistical machinery beyond that: the experiment tables
//! assert on *shapes* (ratios, counts), never on absolute times.

use std::time::{Duration, Instant};

/// Summary of one benchmark's timed samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Runs `f` for `warmup` untimed and `samples` timed iterations.
///
/// The closure's result is passed through [`std::hint::black_box`] so the
/// optimizer cannot delete the measured work.
pub fn bench<T>(warmup: usize, samples: usize, mut f: impl FnMut() -> T) -> Sample {
    assert!(samples > 0, "need at least one timed sample");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort();
    Sample {
        min: times[0],
        median: times[samples / 2],
        iters: samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_warmup_plus_samples_iterations() {
        let mut calls = 0u32;
        let s = bench(2, 5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 7);
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.median);
    }

    #[test]
    #[should_panic(expected = "at least one timed sample")]
    fn zero_samples_is_an_error() {
        bench(0, 0, || ());
    }
}
