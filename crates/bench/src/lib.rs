//! Experiment harness regenerating every quantitative claim of the paper.
//!
//! The ICDE 1997 paper is analytical — it has **no result tables and a
//! single figure** (Figure 1, an illustration of the three query types'
//! semantics).  Per DESIGN.md §3, the harness therefore reproduces
//! (i) Figure 1 / the Section 2.3 walk-through as an executable artifact
//! and (ii) each quantitative claim as a measured table.  The
//! `experiments` binary prints the tables; `EXPERIMENTS.md` records
//! paper-claim vs measured shape.
//!
//! Every experiment is a pure function returning a [`table::Table`], so the
//! integration tests can assert the claimed *shapes* (who wins, by roughly
//! what factor) rather than scraping stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;
pub mod timing;

pub use table::Table;

/// Scale knob: `quick` keeps every experiment under a few seconds for CI;
/// `full` uses the sizes reported in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes (tests, smoke runs).
    Quick,
    /// Full sizes (EXPERIMENTS.md numbers).
    Full,
}

impl Scale {
    /// Picks `q` under `Quick` and `f` under `Full`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}
