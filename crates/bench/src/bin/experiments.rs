//! The experiment runner: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! experiments [all|fig1|e1|e2|e3|e4|e4b|e5|e6|e6b|e7|e8|e9|micro] [--quick]
//! ```
//!
//! Under `--quick` the wall-clock columns are replaced by a placeholder so
//! the full report is byte-identical across runs (every other cell is
//! derived from seeded deterministic workloads); CI diffs the output.

use most_bench::experiments::{run_all, run_one};
use most_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let which: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    println!("# MOST / FTL reproduction — experiment run ({:?})\n", scale);
    let mut tables = if which.is_empty() || which.iter().any(|w| w.as_str() == "all") {
        run_all(scale)
    } else {
        let mut out = Vec::new();
        for w in which {
            match run_one(w, scale) {
                Some(t) => out.push(t),
                None => {
                    eprintln!(
                        "unknown experiment `{w}` (expected fig1, e1..e9, e4b, e6b, micro, all)"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    };
    if scale == Scale::Quick {
        for t in &mut tables {
            t.stabilize();
        }
    }
    for t in tables {
        println!("{t}");
    }
}
