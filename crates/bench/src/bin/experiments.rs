//! The experiment runner: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! experiments [all|fig1|e1|e2|e3|e4|e4b|e5|e6|e6b|e7|e8|e9|e10|e11|e12|e13|e14|e15|e16|e17|micro] [--quick]
//! ```
//!
//! Under `--quick` the wall-clock columns are replaced by a placeholder so
//! the full report is byte-identical across runs (every other cell is
//! derived from seeded deterministic workloads); CI diffs the output.
//!
//! The perf-tracked tables (E3, E4, E9, E10–E17, MICRO) are additionally written as
//! machine-readable `BENCH_<id>.json` files in the working directory, so
//! the performance trajectory can be compared across PRs without scraping
//! markdown.

use most_bench::experiments::{run_all, run_one};
use most_bench::{Scale, Table};
use most_testkit::ser::to_json_string;

/// Experiment ids whose tables are persisted as `BENCH_<id>.json`.
const TRACKED: &[&str] =
    &["E3", "E4", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "MICRO"];

fn write_tracked_json(t: &Table) {
    if !TRACKED.contains(&t.id.as_str()) {
        return;
    }
    let path = format!("BENCH_{}.json", t.id.to_ascii_lowercase());
    let body = to_json_string(t).expect("table serializes");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let which: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    println!("# MOST / FTL reproduction — experiment run ({:?})\n", scale);
    let mut tables = if which.is_empty() || which.iter().any(|w| w.as_str() == "all") {
        run_all(scale)
    } else {
        let mut out = Vec::new();
        for w in which {
            match run_one(w, scale) {
                Some(t) => out.push(t),
                None => {
                    eprintln!(
                        "unknown experiment `{w}` (expected fig1, e1..e17, e4b, e6b, micro, all)"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    };
    if scale == Scale::Quick {
        for t in &mut tables {
            t.stabilize();
        }
    }
    for t in tables {
        write_tracked_json(&t);
        println!("{t}");
    }
}
