//! E6 — distributed query processing strategies (Section 5.3).
//!
//! Claims: query shipping "is more efficient since it processes the query
//! in parallel" and, for continuous queries, avoids transmitting on every
//! object change; relationship queries centralize all states at the
//! issuer.

use crate::{Scale, Table};
use most_mobile::strategy::{
    continuous_object_data_shipping, continuous_object_query_shipping,
    object_query_data_shipping, object_query_query_shipping,
    relationship_query_centralized, ObjectPredicate, RelPredicate,
};
use most_mobile::{FleetSim, Network};
use most_spatial::Point;
use most_workload::cars::CarScenario;

fn fleet(n: usize, mean_gap: f64, horizon: u64, seed: u64) -> FleetSim {
    let scenario = CarScenario {
        count: n,
        area: 400.0,
        speed: (0.5, 2.0),
        mean_update_gap: mean_gap,
        horizon,
        seed,
    };
    let mut sim = FleetSim::new();
    // Node 0 is the issuer, parked at the origin.
    sim.add_node(0, Point::origin(), most_spatial::Velocity::zero(), 0.0, vec![]);
    for (i, p) in scenario.generate().into_iter().enumerate() {
        sim.add_node(i as u64 + 1, p.start, p.velocity, p.price, p.updates);
    }
    sim
}

/// Message/byte comparison across fleet sizes, for one-shot, continuous and
/// relationship queries.
pub fn run(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[20, 80][..], &[50, 200, 800][..]);
    let window = scale.pick(300u64, 1_000u64);
    let pred = ObjectPredicate::ReachesPointWithin {
        target: Point::origin(),
        radius: 50.0,
        within: window,
    };
    let mut table = Table::new(
        "E6",
        "distributed strategies: messages / bytes (issuer = node 0)",
        &["nodes", "query", "strategy", "messages", "bytes", "matches"],
    );
    for &n in sizes {
        // One-shot object query.
        let sim = fleet(n, 1e18, window, 1);
        let mut net = Network::new(0);
        let a = object_query_data_shipping(&sim, &mut net, 0, &pred);
        table.row(vec![
            n.to_string(),
            "object (one-shot)".into(),
            "data shipping".into(),
            net.stats.messages.to_string(),
            net.stats.bytes.to_string(),
            a.len().to_string(),
        ]);
        let mut net = Network::new(0);
        let b = object_query_query_shipping(&sim, &mut net, 0, &pred, "RETRIEVE o ...");
        assert_eq!(a, b, "strategies must agree");
        table.row(vec![
            n.to_string(),
            "object (one-shot)".into(),
            "query shipping".into(),
            net.stats.messages.to_string(),
            net.stats.bytes.to_string(),
            b.len().to_string(),
        ]);

        // Continuous object query with a busy update process.
        let mut sim_a = fleet(n, 60.0, window, 2);
        let mut net_a = Network::new(0);
        let truth_a =
            continuous_object_data_shipping(&mut sim_a, &mut net_a, 0, &pred, window);
        table.row(vec![
            n.to_string(),
            "object (continuous)".into(),
            "data shipping".into(),
            net_a.stats.messages.to_string(),
            net_a.stats.bytes.to_string(),
            truth_a.len().to_string(),
        ]);
        let mut sim_b = fleet(n, 60.0, window, 2);
        let mut net_b = Network::new(0);
        let truth_b = continuous_object_query_shipping(
            &mut sim_b, &mut net_b, 0, &pred, window, "RETRIEVE o ...",
        );
        assert_eq!(truth_a, truth_b, "continuous strategies must agree");
        table.row(vec![
            n.to_string(),
            "object (continuous)".into(),
            "query shipping".into(),
            net_b.stats.messages.to_string(),
            net_b.stats.bytes.to_string(),
            truth_b.len().to_string(),
        ]);

        // Relationship query: centralized.
        let sim = fleet(n, 1e18, window, 3);
        let mut net = Network::new(0);
        let pairs = relationship_query_centralized(
            &sim,
            &mut net,
            0,
            &RelPredicate::StayWithinFor { radius: 60.0, for_at_least: 100 },
        );
        table.row(vec![
            n.to_string(),
            "relationship".into(),
            "centralize states".into(),
            net.stats.messages.to_string(),
            net.stats.bytes.to_string(),
            pairs.len().to_string(),
        ]);
    }
    table.note(
        "Claimed shape: query shipping sends fewer bytes than data shipping for \
         one-shot object queries (replies only from matches) and fewer messages for \
         continuous ones (transitions instead of every update); relationship queries \
         pay one state message per node.",
    );
    table
}

/// Helper for the micro-benchmarks: ratio of continuous data-shipping to
/// query-shipping messages at a given size.
pub fn continuous_message_ratio(n: usize, window: u64) -> f64 {
    let pred = ObjectPredicate::ReachesPointWithin {
        target: Point::origin(),
        radius: 50.0,
        within: window,
    };
    let mut sim_a = fleet(n, 60.0, window, 2);
    let mut net_a = Network::new(0);
    continuous_object_data_shipping(&mut sim_a, &mut net_a, 0, &pred, window);
    let mut sim_b = fleet(n, 60.0, window, 2);
    let mut net_b = Network::new(0);
    continuous_object_query_shipping(&mut sim_b, &mut net_b, 0, &pred, window, "Q");
    net_a.stats.messages as f64 / net_b.stats.messages.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_shipping_wins_bytes_and_messages() {
        let t = run(Scale::Quick);
        // Rows per size: 5 (2 one-shot, 2 continuous, 1 relationship).
        for chunk in t.rows.chunks(5) {
            let os_data_bytes: f64 = chunk[0][4].parse().unwrap();
            let os_query_bytes: f64 = chunk[1][4].parse().unwrap();
            assert!(os_query_bytes < os_data_bytes, "one-shot bytes");
            let c_data_msgs: f64 = chunk[2][3].parse().unwrap();
            let c_query_msgs: f64 = chunk[3][3].parse().unwrap();
            assert!(c_query_msgs < c_data_msgs, "continuous messages");
        }

    }

    #[test]
    fn continuous_ratio_exceeds_one() {
        assert!(continuous_message_ratio(20, 300) > 1.0);
    }
}
