//! MICRO — latency micro-benchmarks, the in-repo replacement for the
//! seven former criterion benches (tracking policies, range queries,
//! continuous service, FTL evaluation, the 2^k rewrite, distributed
//! strategies, index structures).
//!
//! Each row times one operation with [`crate::timing::bench`] (warmup +
//! timed samples; min and median reported).  The timing columns are
//! marked *measured*, so `experiments --quick` replaces them with a
//! placeholder and the rendered output stays byte-identical run to run;
//! the numbers are for humans running `experiments micro` at full scale.

use crate::table::fmt_duration;
use crate::timing::bench;
use crate::{Scale, Table};
use most_core::rewrite::{MostDbmsLayer, MovingTableDef};
use most_core::{Database, RefreshMode};
use most_dbms::expr::{CmpOp, Expr};
use most_dbms::query::SelectQuery;
use most_dbms::schema::ColumnType;
use most_dbms::value::Value;
use most_ftl::semantics::naive_answer;
use most_ftl::{evaluate_query, Query};
use most_index::{DynamicAttributeIndex, IndexKind, ScanIndex};
use most_mobile::strategy::{
    object_query_data_shipping, object_query_query_shipping, ObjectPredicate,
};
use most_mobile::{FleetSim, Network};
use most_spatial::{Point, Polygon, Trajectory, Velocity};
use most_testkit::rng::Rng;
use most_workload::cars::CarScenario;
use most_workload::update_process::update_schedule;
use most_workload::{simulate_tracking, TrackingPolicy};

/// Runs every micro-benchmark group and reports min/median latencies.
pub fn run(scale: Scale) -> Table {
    let warmup = scale.pick(1usize, 3usize);
    let samples = scale.pick(3usize, 15usize);
    let mut table = Table::new(
        "MICRO",
        "operation micro-benchmarks (min / median over timed samples)",
        &["group", "benchmark", "samples", "min", "median"],
    );
    let add = |table: &mut Table, group: &str, name: String, s: crate::timing::Sample| {
        table.row(vec![
            group.to_owned(),
            name,
            s.iters.to_string(),
            fmt_duration(s.min),
            fmt_duration(s.median),
        ]);
    };

    // -- tracking policies (former e1_update_cost bench) -----------------
    let path = {
        let horizon = scale.pick(1_000u64, 5_000u64);
        let mut rng = Rng::seed_from_u64(1);
        let mut traj = Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0));
        for (t, v) in update_schedule(&mut rng, horizon, 100.0, 0.5, 2.0) {
            traj.update_velocity(t, v);
        }
        (0..=horizon).map(|t| traj.position_at_tick(t)).collect::<Vec<Point>>()
    };
    for (name, policy) in [
        ("every_tick", TrackingPolicy::EveryTick),
        ("every_20", TrackingPolicy::EveryK(20)),
        ("dead_reckoning", TrackingPolicy::DeadReckoning { threshold: 1.0 }),
    ] {
        let s = bench(warmup, samples, || simulate_tracking(&path, policy));
        add(&mut table, "tracking", format!("policy/{name}"), s);
    }

    // -- instantaneous range query, index vs scan (former e2 bench) ------
    for &n in scale.pick(&[1_000usize][..], &[1_000usize, 10_000, 100_000][..]) {
        let mut rng = Rng::seed_from_u64(7);
        let mut idx =
            DynamicAttributeIndex::new(IndexKind::QuadTree, 1_000, (-(n as f64), 2.0 * n as f64));
        let mut scan = ScanIndex::new();
        for i in 0..n as u64 {
            let v0 = rng.random_range(0.0..n as f64);
            let slope = rng.random_range(-0.5..0.5);
            idx.insert(i, 0, v0, slope);
            scan.upsert(i, 0, v0, slope);
        }
        let window = n as f64 / 100.0;
        let lo = n as f64 / 3.0;
        let s = bench(warmup, samples, || idx.instantaneous(500, lo, lo + window));
        add(&mut table, "range_query", format!("index/n{n}"), s);
        let s = bench(warmup, samples, || scan.instantaneous(500, lo, lo + window));
        add(&mut table, "range_query", format!("scan/n{n}"), s);
    }

    // -- continuous-query service regimes (former e3 bench) --------------
    let window = scale.pick(30u64, 100u64);
    let build_db = |n: usize| {
        let scenario = CarScenario {
            count: n,
            area: 400.0,
            speed: (0.5, 2.0),
            mean_update_gap: 1e18,
            horizon: 500,
            seed: 42,
        };
        let plans = scenario.generate();
        let mut db = Database::new(1_000);
        db.add_region("P", Polygon::rectangle(-100.0, -100.0, 100.0, 100.0));
        scenario.populate(&mut db, &plans);
        db
    };
    let query = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").expect("parses");
    for &n in scale.pick(&[30usize][..], &[30usize, 100][..]) {
        let s = bench(warmup, samples, || {
            let mut db = build_db(n);
            let cq = db.register_continuous(query.clone()).expect("register");
            let mut total = 0usize;
            for t in 0..window {
                db.advance_clock(1);
                total += db.continuous_display(cq, t + 1).expect("display").len();
            }
            total
        });
        add(&mut table, "continuous", format!("materialized_once/n{n}"), s);
        let s = bench(warmup, samples, || {
            let mut db = build_db(n);
            db.set_refresh_mode(RefreshMode::Incremental);
            let cq = db.register_continuous(query.clone()).expect("register");
            let ids = db.object_ids();
            let mut total = 0usize;
            for t in 0..window {
                db.advance_clock(1);
                // One motion update per tick: the regime where refresh
                // strategy dominates.
                let id = ids[(t as usize) % ids.len()];
                let v = db.object(id).expect("exists").velocity_at(t + 1).expect("spatial");
                db.update_motion(id, v).expect("update");
                total += db.continuous_display(cq, t + 1).expect("display").len();
            }
            total
        });
        add(&mut table, "continuous", format!("materialized_incremental/n{n}"), s);
        let s = bench(warmup, samples, || {
            let mut db = build_db(n);
            let mut total = 0usize;
            for _ in 0..window {
                db.advance_clock(1);
                total += db.instantaneous_now(&query).expect("instantaneous").len();
            }
            total
        });
        add(&mut table, "continuous", format!("reissue_per_tick/n{n}"), s);
    }

    // -- FTL interval algorithm vs per-tick oracle (former e4 bench) -----
    let ctx = super::e4_ftl::context(scale.pick(10, 20), scale.pick(100, 300), 9);
    for (name, src) in super::e4_ftl::paper_queries() {
        let q = Query::parse(src).expect("parses");
        let s = bench(warmup, samples, || evaluate_query(&ctx, &q).expect("eval"));
        add(&mut table, "ftl_eval", format!("interval_algo/{name}"), s);
        let s = bench(warmup, samples, || naive_answer(&ctx, &q).expect("eval"));
        add(&mut table, "ftl_eval", format!("per_tick_oracle/{name}"), s);
    }

    // -- 2^k rewrite blow-up (former e5 bench) ---------------------------
    let layer = {
        let (n, attrs) = (scale.pick(200usize, 500usize), 8usize);
        let mut layer = MostDbmsLayer::new();
        layer
            .create_table(MovingTableDef {
                name: "cars".into(),
                static_columns: vec![
                    ("id".into(), ColumnType::Id),
                    ("price".into(), ColumnType::Float),
                ],
                dynamic_attrs: (0..attrs).map(|i| format!("A{i}")).collect(),
            })
            .expect("create");
        let mut rng = Rng::seed_from_u64(3);
        for i in 0..n as u64 {
            let dynamics = (0..attrs)
                .map(|_| (rng.random_range(0.0..1000.0), 0, rng.random_range(-2.0..2.0)))
                .collect();
            layer
                .insert("cars", vec![Value::Id(i), rng.random_range(40.0..200.0).into()], dynamics)
                .expect("insert");
        }
        layer
    };
    for k in [1usize, 2, 4, 8] {
        let mut clause = Expr::cmp(CmpOp::Le, Expr::col("price"), Expr::val(1e9));
        for i in 0..k {
            clause = clause.and(Expr::cmp(
                CmpOp::Ge,
                Expr::col(format!("A{i}")),
                Expr::val(200.0),
            ));
        }
        let q = SelectQuery::from_table("cars").column("id").filter(clause);
        let s = bench(warmup, samples, || layer.query(&q, 50).expect("query"));
        add(&mut table, "rewrite", format!("k_atoms/{k}"), s);
    }

    // -- distributed strategies (former e6 bench) ------------------------
    let fleet = |n: usize| {
        let scenario = CarScenario {
            count: n,
            area: 400.0,
            speed: (0.5, 2.0),
            mean_update_gap: 1e18,
            horizon: 300,
            seed: 1,
        };
        let mut sim = FleetSim::new();
        sim.add_node(0, Point::origin(), Velocity::zero(), 0.0, vec![]);
        for (i, p) in scenario.generate().into_iter().enumerate() {
            sim.add_node(i as u64 + 1, p.start, p.velocity, p.price, p.updates);
        }
        sim
    };
    let pred = ObjectPredicate::ReachesPointWithin {
        target: Point::origin(),
        radius: 50.0,
        within: 300,
    };
    for &n in scale.pick(&[50usize][..], &[50usize, 200][..]) {
        let sim = fleet(n);
        let s = bench(warmup, samples, || {
            let mut net = Network::new(0);
            object_query_data_shipping(&sim, &mut net, 0, &pred)
        });
        add(&mut table, "distributed", format!("data_shipping/n{n}"), s);
        let s = bench(warmup, samples, || {
            let mut net = Network::new(0);
            object_query_query_shipping(&sim, &mut net, 0, &pred, "Q")
        });
        add(&mut table, "distributed", format!("query_shipping/n{n}"), s);
    }
    let s = bench(warmup, samples, || {
        super::e6_distributed::continuous_message_ratio(50, 300)
    });
    add(&mut table, "distributed", "continuous_ratio/n50".to_owned(), s);

    // -- index structures: build / bulk build / query (former e7 bench) --
    let n = scale.pick(2_000usize, 10_000usize);
    let objs: Vec<(u64, f64, f64)> = {
        let mut rng = Rng::seed_from_u64(5);
        (0..n as u64)
            .map(|i| (i, rng.random_range(0.0..n as f64), rng.random_range(-0.5..0.5)))
            .collect()
    };
    let value_range = (-(n as f64), 2.0 * n as f64);
    let qwindow = n as f64 / 100.0;
    for kind in [IndexKind::QuadTree, IndexKind::RTree] {
        let name = format!("{kind:?}");
        let s = bench(warmup, samples, || {
            let mut idx = DynamicAttributeIndex::new(kind, 1_000, value_range);
            for &(id, v, sl) in &objs {
                idx.insert(id, 0, v, sl);
            }
            idx.len()
        });
        add(&mut table, "structures", format!("build/{name}"), s);
        let s = bench(warmup, samples, || {
            DynamicAttributeIndex::bulk(kind, 1_000, value_range, objs.iter().copied()).len()
        });
        add(&mut table, "structures", format!("bulk_build/{name}"), s);
        let mut idx = DynamicAttributeIndex::new(kind, 1_000, value_range);
        for &(id, v, sl) in &objs {
            idx.insert(id, 0, v, sl);
        }
        let s = bench(warmup, samples, || idx.instantaneous(500, 1000.0, 1000.0 + qwindow));
        add(&mut table, "structures", format!("query/{name}"), s);
    }
    let mut scan = ScanIndex::new();
    for &(id, v, sl) in &objs {
        scan.upsert(id, 0, v, sl);
    }
    let s = bench(warmup, samples, || scan.instantaneous(500, 1000.0, 1000.0 + qwindow));
    add(&mut table, "structures", "query/scan".to_owned(), s);

    table.note(
        "Replaces the former external-criterion benches one for one; shapes \
         (index beats scan, interval algorithm beats the oracle, subqueries \
         double per atom) are asserted by the experiment tables, not here.",
    );
    table.mark_measured(&["min", "median"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_seven_groups_and_stabilizes() {
        let mut t = run(Scale::Quick);
        let groups: std::collections::BTreeSet<&str> =
            t.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(
            groups.into_iter().collect::<Vec<_>>(),
            vec![
                "continuous",
                "distributed",
                "ftl_eval",
                "range_query",
                "rewrite",
                "structures",
                "tracking"
            ]
        );
        t.stabilize();
        for row in &t.rows {
            assert_eq!(row[3], "—");
            assert_eq!(row[4], "—");
        }
    }
}
