//! E16 — the sharded engine: oracle-exact scatter-gather, then
//! shard-local update throughput (PR 9 tentpole).
//!
//! `most_core::sharded` partitions objects across N per-shard `EpochDb`
//! instances (hash of the object id, or spatial bands over x).  Update
//! batches apply shard-locally — each touched shard runs its own
//! continuous-query refresh and publishes its own epoch — and one
//! **cross-shard cut** (a vector of shard epochs swapped atomically)
//! publishes the batch so readers never see a torn multi-shard state.
//! Queries scatter across the cut's pinned shards and combine with
//! `combine_shard_answers` (an order-independent union keyed on answer
//! tuples).
//!
//! * **Phase A (oracle gate, the CI gate):** twin worlds — a
//!   single-database reference and a `ShardedDb` holding identical
//!   objects — replay the same seeded script at 1/2/4 shards under both
//!   routing policies.  After **every** step, instantaneous, persistent
//!   and continuous answers must be **byte-identical** (canonical JSON)
//!   to the reference, and cut accounting must match the script.  All
//!   asserted in-run; deterministic, so the `shard.*` counters land in
//!   the CI-diffed metrics block.
//! * **Phase B (throughput, measured):** a shards × objects sweep (to
//!   10⁶ objects at full scale).  Batches are *spatially localized*
//!   (each touches one band of the world), so under band routing only
//!   the owning shard re-runs its refresh: per-batch refresh cost drops
//!   from O(n) to O(n/s).  That is the architectural win this phase
//!   measures — it does not depend on core count — and at full scale
//!   the run asserts update throughput increases monotonically from 1
//!   to 4 shards.  Observability is disabled around this phase.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_core::sharded::{ShardRouting, ShardedDb, ShardedDbBuilder};
use most_core::{Database, UpdateOp};
use most_dbms::value::Value;
use most_ftl::Query;
use most_spatial::{Point, Polygon, Velocity};
use most_testkit::rng::Rng;
use most_testkit::ser::to_json_string;
use std::time::Instant;

const SEED: u64 = 0xE16;

// ---------------------------------------------------------------- Phase A

/// Builds the same world twice: a single-database reference and a
/// `ShardedDb` with identical object ids, positions, velocities and
/// attributes.
fn twin_worlds(objects: u64, shards: usize, routing: ShardRouting) -> (Database, ShardedDb) {
    let region = Polygon::rectangle(40.0, -25.0, 120.0, 25.0);
    let mut reference = Database::new(400);
    reference.add_region("P", region.clone());
    let mut builder = ShardedDbBuilder::new(shards, 400).with_routing(routing);
    builder.add_region("P", region);
    let mut rng = Rng::seed_from_u64(SEED);
    for _ in 0..objects {
        let pos = Point::new(rng.random_range(0.0..200.0), rng.random_range(-20.0..20.0));
        let vel = Velocity::new(rng.random_range(-3.0..3.0), rng.random_range(-1.0..1.0));
        let price = rng.random_range(10.0..200.0);
        let id = reference.insert_moving_object("cars", pos, vel);
        let sid = builder.insert_moving_object("cars", pos, vel);
        assert_eq!(sid, id, "sharded ids must mirror the reference");
        reference.set_static(id, "PRICE", Value::from(price)).unwrap();
        builder.set_static(sid, "PRICE", Value::from(price)).unwrap();
    }
    (reference, builder.finish())
}

/// One observation: all three query types, byte-compared to the
/// reference.  Returns the number of comparisons made.
fn observe_pair(reference: &Database, sharded: &ShardedDb, cq: u64) -> usize {
    let pin = sharded.pin();
    assert_eq!(pin.now(), reference.now(), "cut clock diverged");
    let inst = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    assert_eq!(
        to_json_string(&pin.instantaneous(&inst).unwrap()).unwrap(),
        to_json_string(&reference.instantaneous_readonly(&inst).unwrap()).unwrap(),
        "instantaneous scatter-gather diverged from the reference"
    );
    let pers = Query::parse("RETRIEVE o WHERE o.PRICE <= 120").unwrap();
    assert_eq!(
        to_json_string(&pin.persistent_answer(&pers, 0).unwrap()).unwrap(),
        to_json_string(&reference.persistent_answer(&pers, 0).unwrap()).unwrap(),
        "persistent scatter-gather diverged from the reference"
    );
    // Continuous answers are compared through their *display* at probe
    // times, not as raw materialized bytes: a shard untouched by a batch
    // skips its refresh (the shard-local win Phase B measures), so its
    // materialized intervals are truncated at an earlier
    // refresh-time+expiration horizon than the reference's — the served
    // semantics inside the valid window are identical, the horizon
    // bookkeeping is not.
    let mut checks = 2;
    for probe in [0, 60, 150] {
        let at = reference.now() + probe;
        assert_eq!(
            pin.continuous_display(cq, at).unwrap(),
            reference.continuous_display(cq, at).unwrap(),
            "continuous display at now+{probe} diverged from the reference"
        );
        checks += 1;
    }
    checks
}

fn gen_batch(rng: &mut Rng, objects: u64, batch: usize) -> Vec<UpdateOp> {
    (0..batch)
        .map(|_| {
            let id = rng.below(objects) + 1;
            if rng.random_bool(0.75) {
                UpdateOp::Motion {
                    id,
                    velocity: Velocity::new(
                        rng.random_range(-4.0..4.0),
                        rng.random_range(-1.0..1.0),
                    ),
                }
            } else {
                UpdateOp::Static {
                    id,
                    attr: "PRICE".into(),
                    value: Value::from(rng.random_range(10.0..200.0)),
                }
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Phase B

/// The number of spatial bands batches localize to — the finest sweep
/// granularity, so a one-band batch is owned by exactly one shard at
/// every swept shard count (1, 2 and 4 all divide 4 bands evenly).
const BANDS: usize = 4;
const WORLD_X: f64 = 400.0;

/// Builds the throughput world: `objects` cars spread over `[0, WORLD_X)`
/// with one spatial continuous query registered, plus the per-band id
/// lists localized batches draw from.
fn throughput_world(objects: u64, shards: usize) -> (ShardedDb, Vec<Vec<u64>>, u64) {
    let routing = ShardRouting::SpatialBands { min_x: 0.0, max_x: WORLD_X };
    let mut builder = ShardedDbBuilder::new(shards, 400).with_routing(routing);
    builder.add_region("P", Polygon::rectangle(150.0, -40.0, 250.0, 40.0));
    let mut rng = Rng::seed_from_u64(SEED ^ 0xB);
    let mut bands: Vec<Vec<u64>> = vec![Vec::new(); BANDS];
    for _ in 0..objects {
        let x = rng.random_range(0.0..WORLD_X);
        let pos = Point::new(x, rng.random_range(-50.0..50.0));
        let vel = Velocity::new(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0));
        let id = builder.insert_moving_object("cars", pos, vel);
        bands[((x / WORLD_X * BANDS as f64) as usize).min(BANDS - 1)].push(id);
    }
    let db = builder.finish();
    let cq = db
        .register_continuous(&Query::parse("RETRIEVE o WHERE Eventually within 100 INSIDE(o, P)").unwrap())
        .expect("spatial CQ is shardable");
    (db, bands, cq)
}

struct Throughput {
    ops: u64,
    elapsed_secs: f64,
}

/// Applies `steps` spatially localized batches and returns the measured
/// update throughput.  Each batch stays inside one band, so only that
/// band's shard re-runs its continuous-query refresh.
fn run_throughput(objects: u64, shards: usize, steps: usize, batch: usize) -> Throughput {
    let (db, bands, _cq) = throughput_world(objects, shards);
    let mut rng = Rng::seed_from_u64(SEED ^ 0x7B ^ shards as u64);
    let scripts: Vec<Vec<UpdateOp>> = (0..steps)
        .map(|k| {
            let band = &bands[k % BANDS];
            (0..batch)
                .map(|_| UpdateOp::Motion {
                    id: band[rng.below(band.len() as u64) as usize],
                    velocity: Velocity::new(
                        rng.random_range(-1.0..1.0),
                        rng.random_range(-1.0..1.0),
                    ),
                })
                .collect()
        })
        .collect();
    let t0 = Instant::now();
    for ops in &scripts {
        db.apply_updates(ops).expect("localized batches are valid");
    }
    let elapsed_secs = t0.elapsed().as_secs_f64().max(1e-9);
    Throughput { ops: (steps * batch) as u64, elapsed_secs }
}

/// Runs the sharded-engine experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E16",
        "sharded engine: oracle-exact scatter-gather at 1/2/4 shards, then shard-local \
         update throughput (shards × objects sweep)",
        &[
            "phase",
            "routing",
            "shards",
            "objects",
            "steps",
            "batch",
            "checks",
            "mismatches",
            "cuts",
            "time",
            "ops/s",
            "speedup",
        ],
    );

    // ---- Phase A: deterministic oracle gate (obs stays enabled). ----
    let objects_a = scale.pick(20u64, 40);
    let steps_a = scale.pick(5usize, 8);
    let batch_a = scale.pick(4usize, 8);
    let cq_src = "RETRIEVE o WHERE Eventually within 300 INSIDE(o, P)";
    for shards in [1usize, 2, 4] {
        for (rname, routing) in [
            ("hash", ShardRouting::HashId),
            ("bands", ShardRouting::SpatialBands { min_x: 0.0, max_x: 200.0 }),
        ] {
            let (mut reference, sharded) = twin_worlds(objects_a, shards, routing);
            let cq_r = reference.register_continuous(Query::parse(cq_src).unwrap()).unwrap();
            let cq_s = sharded.register_continuous(&Query::parse(cq_src).unwrap()).unwrap();
            assert_eq!(cq_r, cq_s, "global CQ ids must mirror the reference");
            let mut checks = observe_pair(&reference, &sharded, cq_s);
            let mut rng = Rng::seed_from_u64(SEED ^ 0xD1CE ^ shards as u64);
            for _ in 0..steps_a {
                let ops = gen_batch(&mut rng, objects_a, batch_a);
                reference.apply_updates(&ops).unwrap();
                sharded.apply_updates(&ops).unwrap();
                checks += observe_pair(&reference, &sharded, cq_s);
                reference.advance_clock(3);
                sharded.advance_clock(3);
                checks += observe_pair(&reference, &sharded, cq_s);
            }
            // Cut accounting: registration + one cut per batch/advance.
            let cuts = sharded.pin().cut().seq();
            assert_eq!(cuts, 1 + 2 * steps_a as u64, "one cut per mutation");
            table.row(vec![
                "A oracle".into(),
                rname.into(),
                shards.to_string(),
                objects_a.to_string(),
                steps_a.to_string(),
                batch_a.to_string(),
                checks.to_string(),
                "0".into(),
                cuts.to_string(),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
        }
    }

    // ---- Phase B: measured shard-local throughput (obs disabled). ----
    let object_sweep: &[u64] = match scale {
        Scale::Quick => &[6_000],
        Scale::Full => &[100_000, 1_000_000],
    };
    let steps_b = scale.pick(4usize, 8);
    let batch_b = scale.pick(200usize, 2_000);
    most_obs::set_enabled(false);
    for &objects in object_sweep {
        let mut base_tp = None;
        let mut prev_tp = None;
        for shards in [1usize, 2, 4] {
            let out = run_throughput(objects, shards, steps_b, batch_b);
            let tp = out.ops as f64 / out.elapsed_secs;
            let base = *base_tp.get_or_insert(tp);
            if scale == Scale::Full {
                if let Some(prev) = prev_tp {
                    assert!(
                        tp > prev,
                        "update throughput must increase monotonically with shard \
                         count: {objects} objects, {shards} shards: {tp:.0} ops/s \
                         after {prev:.0} ops/s"
                    );
                }
            }
            prev_tp = Some(tp);
            table.row(vec![
                "B throughput".into(),
                "bands".into(),
                shards.to_string(),
                objects.to_string(),
                steps_b.to_string(),
                batch_b.to_string(),
                "—".into(),
                "—".into(),
                (1 + steps_b).to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(out.elapsed_secs)),
                fmt_f64(tp),
                fmt_f64(tp / base),
            ]);
        }
    }
    most_obs::set_enabled(true);

    table.note(
        "Phase A replays one seeded script through a single-database reference and \
         through the sharded engine at 1/2/4 shards under both routing policies; after \
         every batch and clock advance, instantaneous, persistent and continuous answers \
         must be byte-identical (canonical JSON) and the cut sequence must account for \
         every mutation — all asserted in-run, so this is the CI smoke gate.  Phase B \
         sweeps shards × objects with *spatially localized* batches under band routing: \
         only the owning shard re-runs its continuous-query refresh and clones its epoch, \
         so per-batch mutation cost drops from O(n) to O(n/s) — an architectural win \
         independent of core count.  At full scale the run asserts throughput rises \
         monotonically from 1 to 4 shards.  Timings are wall-clock and vary; counts are \
         seeded and exact.",
    );
    table.mark_measured(&["time", "ops/s", "speedup"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_its_own_gates() {
        // `run` asserts oracle byte-equality and cut accounting
        // internally; reaching the table at all means the gates held.
        let t = run(Scale::Quick);
        // 6 Phase A rows (3 shard counts × 2 routings) + 3 Phase B rows.
        assert_eq!(t.rows.len(), 9);
        for row in t.rows.iter().take(6) {
            assert_eq!(row[7], "0", "mismatches column: {row:?}");
        }
    }
}
