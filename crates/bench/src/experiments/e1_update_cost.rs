//! E1 — update cost: motion-vector representation vs position sampling.
//!
//! Claim (§1): representing positions by motion vectors avoids updating
//! "very frequently (which would impose a serious performance and
//! wireless-bandwidth overhead)" without the answers becoming outdated,
//! because "the motion vector of an object can change, but in most cases
//! it does so less frequently than the position".

use crate::table::fmt_f64;
use crate::{Scale, Table};
use most_spatial::{Point, Trajectory, Velocity};
use most_workload::update_process::update_schedule;
use most_workload::{simulate_tracking, TrackingPolicy};
use most_testkit::rng::Rng;

/// Runs the tracking-policy comparison across motion-vector change rates.
pub fn run(scale: Scale) -> Table {
    let horizon = scale.pick(2_000u64, 10_000u64);
    let fleet = scale.pick(20usize, 100usize);
    let mut table = Table::new(
        "E1",
        "update cost per object: position sampling vs motion vector (dead reckoning)",
        &[
            "mean ticks between turns",
            "policy",
            "updates/object",
            "updates/1000 ticks",
            "max error",
            "mean error",
        ],
    );
    for mean_gap in [50.0, 100.0, 200.0, 400.0] {
        let policies = [
            ("position @ every tick", TrackingPolicy::EveryTick),
            ("position @ every 20", TrackingPolicy::EveryK(20)),
            ("motion vector (ε = 1.0)", TrackingPolicy::DeadReckoning { threshold: 1.0 }),
        ];
        for (name, policy) in policies {
            let mut updates = 0.0;
            let mut max_err = 0.0f64;
            let mut mean_err = 0.0;
            for i in 0..fleet {
                let mut rng = Rng::seed_from_u64(1_000 + i as u64);
                let mut traj =
                    Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0));
                for (t, v) in update_schedule(&mut rng, horizon, mean_gap, 0.5, 2.0) {
                    traj.update_velocity(t, v);
                }
                let truth: Vec<Point> =
                    (0..=horizon).map(|t| traj.position_at_tick(t)).collect();
                let r = simulate_tracking(&truth, policy);
                updates += r.updates as f64 / fleet as f64;
                max_err = max_err.max(r.max_error);
                mean_err += r.mean_error / fleet as f64;
            }
            table.row(vec![
                format!("{mean_gap:.0}"),
                name.to_owned(),
                fmt_f64(updates),
                fmt_f64(updates * 1000.0 / horizon as f64),
                fmt_f64(max_err),
                fmt_f64(mean_err),
            ]);
        }
    }
    table.note(
        "Claimed shape: the motion-vector policy needs orders of magnitude fewer \
         updates than per-tick position sampling at bounded error (ε), and its update \
         rate tracks the motion-vector change rate, not the clock rate.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_representation_wins_by_an_order_of_magnitude() {
        let t = run(Scale::Quick);
        // Rows come in triples per gap setting.
        for chunk in t.rows.chunks(3) {
            let every_tick: f64 = chunk[0][2].parse().unwrap();
            let dead_reckoning: f64 = chunk[2][2].parse().unwrap();
            assert!(
                every_tick > 10.0 * dead_reckoning,
                "vector updates {dead_reckoning} vs per-tick {every_tick}"
            );
            // Dead-reckoning error stays near the threshold.
            let max_err: f64 = chunk[2][4].parse().unwrap();
            assert!(max_err <= 4.0, "max error {max_err}");
        }
    }

    #[test]
    fn slower_turning_means_fewer_vector_updates() {
        let t = run(Scale::Quick);
        let dr_updates: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[1].starts_with("motion vector"))
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert_eq!(dr_updates.len(), 4);
        // Mean gap doubles each row: updates must decline overall.
        assert!(dr_updates.first().unwrap() > dr_updates.last().unwrap());
    }
}
