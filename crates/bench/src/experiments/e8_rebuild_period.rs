//! E8 — sweeping the index reconstruction period T.
//!
//! "Choosing an appropriate value for T is an important future-research
//! question" (§4).  The trade-off: a small T reconstructs often (rebuild
//! work) but keeps the function-lines short (tight cells, cheap queries);
//! a large T amortizes rebuilds but accumulates stale line prefixes from
//! updates, inflating query work — and continuous queries can only see to
//! the end of the current epoch.

use crate::table::fmt_duration;
use crate::{Scale, Table};
use most_index::{IndexKind, RebuildingIndex};
use most_testkit::rng::Rng;
use std::time::Instant;

/// Replays one update/query workload over `[0, horizon]` for several T.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(400usize, 10_000usize);
    let horizon = scale.pick(4_000u64, 20_000u64);
    let ops = scale.pick(1_000usize, 20_000usize);
    let mut table = Table::new(
        "E8",
        "reconstruction period T: rebuild work vs query work (fixed workload)",
        &[
            "T",
            "rebuilds",
            "objects reinserted",
            "avg query time",
            "avg update time",
            "total time",
        ],
    );
    // A fixed interleaved workload: 80% updates, 20% queries, spread over
    // the horizon.
    let mut rng = Rng::seed_from_u64(23);
    #[derive(Clone, Copy)]
    enum Op {
        Update(u64, f64, f64),
        Query(f64),
    }
    let schedule: Vec<(u64, Op)> = (0..ops)
        .map(|i| {
            let t = (i as u64 * horizon) / ops as u64;
            if rng.random_range(0.0..1.0) < 0.8 {
                (
                    t,
                    Op::Update(
                        rng.random_range(0..n as u64),
                        rng.random_range(0.0..n as f64),
                        rng.random_range(-0.5..0.5),
                    ),
                )
            } else {
                (t, Op::Query(rng.random_range(0.0..n as f64 * 0.99)))
            }
        })
        .collect();
    let window = n as f64 / 100.0;

    for period in [horizon / 16, horizon / 4, horizon, horizon * 2] {
        let mut idx =
            RebuildingIndex::new(IndexKind::QuadTree, period, (-(n as f64), 2.0 * n as f64));
        let t_total = Instant::now();
        for i in 0..n as u64 {
            idx.insert(i, 0, (i as f64) % (n as f64), 0.1);
        }
        let mut query_time = std::time::Duration::ZERO;
        let mut update_time = std::time::Duration::ZERO;
        let mut queries = 0u32;
        let mut updates = 0u32;
        let mut results = 0usize;
        for &(t, op) in &schedule {
            match op {
                Op::Update(id, v, s) => {
                    let t0 = Instant::now();
                    idx.update(id, t, v, s);
                    update_time += t0.elapsed();
                    updates += 1;
                }
                Op::Query(lo) => {
                    let t0 = Instant::now();
                    let (ids, _) = idx.instantaneous(t, lo, lo + window);
                    query_time += t0.elapsed();
                    queries += 1;
                    results += ids.len();
                }
            }
        }
        let total = t_total.elapsed();
        let _ = results;
        table.row(vec![
            period.to_string(),
            idx.rebuilds.to_string(),
            idx.reinserted.to_string(),
            fmt_duration(query_time / queries.max(1)),
            fmt_duration(update_time / updates.max(1)),
            fmt_duration(total),
        ]);
    }
    table.note(format!(
        "n = {n}, horizon = {horizon}, {ops} interleaved operations (80% updates).  \
         Claimed trade-off: rebuild count scales as horizon/T while per-query cost \
         grows with T (longer lines cross more cells and dead prefixes accumulate)."
    ));
    table.mark_measured(&["avg query time", "avg update time", "total time"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_count_scales_inversely_with_period() {
        let t = run(Scale::Quick);
        let rebuilds: Vec<f64> = (0..t.rows.len())
            .map(|r| t.cell_f64(r, "rebuilds").unwrap())
            .collect();
        // T = horizon/16 → ~15 rebuilds; T = 2·horizon → 0.
        assert!(rebuilds[0] >= 8.0, "small T rebuilds: {rebuilds:?}");
        assert_eq!(*rebuilds.last().unwrap(), 0.0);
        assert!(rebuilds.windows(2).all(|w| w[0] >= w[1]));
    }
}
