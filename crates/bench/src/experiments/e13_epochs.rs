//! E13 — epoch snapshots: refresh-vs-read overlap before/after the MVCC
//! engine.
//!
//! PR 6 replaced the global-lock read path with epoch snapshots
//! (`most_core::epoch`): update batches accumulate into epoch E+1 and the
//! continuous-query refresh they trigger runs on the writer's private
//! copy, while readers answer from a pinned immutable epoch E with no
//! lock held.  This experiment quantifies what that buys and gates what
//! it must not break:
//!
//! * **Phase A (lifecycle, the CI gate):** a seeded single-threaded
//!   script drives `EpochDb` step by step with a slow subscriber pinning
//!   epoch 0 throughout.  After every step the published snapshot must be
//!   **byte-identical** (canonical JSON across instantaneous, continuous
//!   and persistent answers) to a single-threaded oracle replaying the
//!   same script, and the accounting must conserve
//!   (`created == retired + live`, `live <= 2` with the one long pin).
//!   All asserted in-run; this phase is deterministic, so the `epoch.*`
//!   gauges land in the CI-diffed metrics block.
//! * **Phase B (overlap, measured):** the same workload runs under two
//!   engines — `locked`, the pre-PR shape (one `RwLock<Database>`, so
//!   refresh excludes readers), and `epoch` (readers pin, writer
//!   refreshes concurrently).  Closed-loop readers issue a fixed number
//!   of instantaneous queries while a writer applies update batches that
//!   trigger CQ refresh.  Every reader answer is verified against the
//!   oracle's per-epoch states in-run (for `locked`: membership in the
//!   oracle state set; for `epoch`: exact equality at the pinned epoch).
//!   Observability is disabled around this phase so the nondeterministic
//!   interleaving never leaks into the metrics snapshot.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_core::{Database, SharedDatabase, UpdateOp};
use most_dbms::value::Value;
use most_ftl::Query;
use most_spatial::{Point, Polygon, Rect, Velocity};
use most_testkit::rng::Rng;
use most_testkit::ser::to_json_string;
use std::collections::HashSet;
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

const SEED: u64 = 0xE13;

/// One writer action; under `EpochDb` each publishes exactly one epoch.
#[derive(Debug, Clone)]
enum Step {
    Advance(u64),
    Batch(Vec<UpdateOp>),
}

fn build_world(objects: usize, cqs: usize) -> (Database, Vec<u64>, u64) {
    let mut rng = Rng::seed_from_u64(SEED);
    let mut db = Database::new(400);
    db.add_region("P", Polygon::rectangle(-60.0, -60.0, 60.0, 60.0));
    let mut ids = Vec::new();
    for i in 0..objects {
        let p = Point::new(rng.random_range(-150.0..150.0), rng.random_range(-150.0..150.0));
        let v = Velocity::new(rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0));
        let id = db.insert_moving_object("cars", p, v);
        db.set_static(id, "PRICE", (50.0 + (i % 16) as f64 * 10.0).into()).unwrap();
        ids.push(id);
    }
    db.enable_spatial_index(Rect::new(-3_000.0, -3_000.0, 3_000.0, 3_000.0));
    let mut cq0 = 0;
    for k in 0..cqs {
        let h = 40 + 20 * k;
        let cq = db
            .register_continuous(
                Query::parse(&format!("RETRIEVE o WHERE Eventually within {h} INSIDE(o, P)"))
                    .unwrap(),
            )
            .unwrap();
        if k == 0 {
            cq0 = cq;
        }
    }
    (db, ids, cq0)
}

fn gen_script(ids: &[u64], steps: usize, batch: usize) -> Vec<Step> {
    let mut rng = Rng::seed_from_u64(SEED ^ 0x9e37_79b9_7f4a_7c15);
    (0..steps)
        .map(|k| {
            if k % 3 == 0 {
                Step::Advance(rng.random_range(1..4u64))
            } else {
                let ops = (0..batch)
                    .map(|_| {
                        let id = ids[rng.below(ids.len() as u64) as usize];
                        if rng.random_bool(0.8) {
                            UpdateOp::Motion {
                                id,
                                velocity: Velocity::new(
                                    rng.random_range(-2.0..2.0),
                                    rng.random_range(-2.0..2.0),
                                ),
                            }
                        } else {
                            UpdateOp::Static {
                                id,
                                attr: "PRICE".into(),
                                value: Value::from(rng.random_range(40.0..200.0)),
                            }
                        }
                    })
                    .collect();
                Step::Batch(ops)
            }
        })
        .collect()
}

/// Canonical bytes for one state: clock + all three query types.
fn observe(db: &Database, cq: u64) -> String {
    let inst = Query::parse("RETRIEVE o WHERE Eventually within 60 INSIDE(o, P)").unwrap();
    let pers = Query::parse("RETRIEVE o WHERE Eventually within 30 (o.PRICE <= 90)").unwrap();
    [
        db.now().to_string(),
        to_json_string(&db.instantaneous_readonly(&inst).unwrap()).unwrap(),
        to_json_string(&db.continuous_display(cq, db.now()).unwrap()).unwrap(),
        to_json_string(&db.persistent_answer(&pers, 0).unwrap()).unwrap(),
    ]
    .join("\n")
}

fn apply_step(db: &mut Database, step: &Step) {
    match step {
        Step::Advance(n) => db.advance_clock(*n),
        Step::Batch(ops) => db.apply_updates(ops).expect("script ops are valid"),
    }
}

/// Single-threaded oracle: `expected[e]` is epoch `e`'s canonical bytes.
fn oracle(db0: &Database, script: &[Step], cq: u64) -> Vec<String> {
    let mut db = db0.clone();
    let mut expected = vec![observe(&db, cq)];
    for step in script {
        apply_step(&mut db, step);
        expected.push(observe(&db, cq));
    }
    expected
}

/// The reader workload: `queries` instantaneous evaluations, returning
/// per-query latencies and the number of oracle mismatches observed.
fn reader_pass(
    eval: impl Fn() -> (Option<usize>, String),
    expected: &[String],
    whole_set: &HashSet<&String>,
    queries: usize,
) -> (Vec<Duration>, usize) {
    let mut lats = Vec::with_capacity(queries);
    let mut mismatches = 0usize;
    for _ in 0..queries {
        let t0 = Instant::now();
        let (epoch, got) = eval();
        lats.push(t0.elapsed());
        let ok = match epoch {
            // Epoch engine: must be exactly the pinned epoch's state.
            Some(e) => e < expected.len() && got == expected[e],
            // Locked engine: no version to pin, but atomicity under the
            // lock means the state must be *some* oracle state.
            None => whole_set.contains(&got),
        };
        if !ok {
            mismatches += 1;
        }
    }
    (lats, mismatches)
}

struct PhaseBOutcome {
    elapsed: Duration,
    checks: usize,
    mismatches: usize,
    p50: Duration,
    p95: Duration,
}

fn percentiles(mut lats: Vec<Duration>) -> (Duration, Duration) {
    lats.sort_unstable();
    let pick = |q: f64| lats[((lats.len() - 1) as f64 * q) as usize];
    (pick(0.50), pick(0.95))
}

/// Phase B under the pre-PR engine: one `RwLock<Database>`, refresh and
/// readers mutually exclusive.
fn run_locked(
    db0: &Database,
    script: &[Step],
    expected: &[String],
    cq: u64,
    readers: usize,
    queries: usize,
) -> PhaseBOutcome {
    let whole_set: HashSet<&String> = expected.iter().collect();
    let lock = Arc::new(RwLock::new(db0.clone()));
    let start = Instant::now();
    let (all_lats, mismatches) = thread::scope(|s| {
        let writer = {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                for step in script {
                    apply_step(&mut lock.write().expect("db lock"), step);
                }
            })
        };
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let whole_set = &whole_set;
                s.spawn(move || {
                    reader_pass(
                        || (None, observe(&lock.read().expect("db lock"), cq)),
                        expected,
                        whole_set,
                        queries,
                    )
                })
            })
            .collect();
        writer.join().expect("writer");
        let mut lats = Vec::new();
        let mut bad = 0usize;
        for h in handles {
            let (l, m) = h.join().expect("reader");
            lats.extend(l);
            bad += m;
        }
        (lats, bad)
    });
    let elapsed = start.elapsed();
    let checks = all_lats.len();
    let (p50, p95) = percentiles(all_lats);
    PhaseBOutcome { elapsed, checks, mismatches, p50, p95 }
}

/// Phase B under the epoch engine: readers pin, writer refreshes and
/// publishes concurrently.
fn run_epoch(
    db0: &Database,
    script: &[Step],
    expected: &[String],
    cq: u64,
    readers: usize,
    queries: usize,
) -> PhaseBOutcome {
    let whole_set: HashSet<&String> = expected.iter().collect();
    let shared = SharedDatabase::new(db0.clone());
    let start = Instant::now();
    let (all_lats, mismatches) = thread::scope(|s| {
        let writer = {
            let shared = shared.clone();
            s.spawn(move || {
                for step in script {
                    match step {
                        Step::Advance(n) => shared.advance_clock(*n),
                        Step::Batch(ops) => {
                            shared.apply_updates(ops).expect("script ops are valid")
                        }
                    }
                }
            })
        };
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let shared = shared.clone();
                let whole_set = &whole_set;
                s.spawn(move || {
                    reader_pass(
                        || {
                            let pin = shared.pin();
                            (Some(pin.epoch() as usize), observe(pin.db(), cq))
                        },
                        expected,
                        whole_set,
                        queries,
                    )
                })
            })
            .collect();
        writer.join().expect("writer");
        let mut lats = Vec::new();
        let mut bad = 0usize;
        for h in handles {
            let (l, m) = h.join().expect("reader");
            lats.extend(l);
            bad += m;
        }
        (lats, bad)
    });
    let elapsed = start.elapsed();
    // Quiescent hygiene: one epoch per step, conservation, no leaks.
    let st = shared.epoch_stats();
    assert_eq!(st.current as usize, script.len(), "one epoch per step: {st:?}");
    assert_eq!(st.created, st.retired + st.live, "conservation: {st:?}");
    assert_eq!(st.live, 1, "old epochs leaked: {st:?}");
    let checks = all_lats.len();
    let (p50, p95) = percentiles(all_lats);
    PhaseBOutcome { elapsed, checks, mismatches, p50, p95 }
}

/// Runs the epoch-overlap experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E13",
        "epoch snapshots: oracle-exact lifecycle, then refresh-vs-read overlap (locked vs epoch)",
        &[
            "phase",
            "engine",
            "readers",
            "steps",
            "epochs",
            "checks",
            "mismatches",
            "live",
            "time",
            "q/s",
            "p50",
            "p95",
        ],
    );

    let objects = scale.pick(24, 60);
    let cqs = scale.pick(2, 4);
    let steps = scale.pick(9, 24);
    let batch = scale.pick(4, 8);
    let (db, ids, cq) = build_world(objects, cqs);
    let script = gen_script(&ids, steps, batch);
    let expected = oracle(&db, &script, cq);

    // ---- Phase A: deterministic lifecycle gate (obs stays enabled). ----
    {
        let shared = SharedDatabase::new(db.clone());
        let slow = shared.pin(); // the slow subscriber pins epoch 0
        let frozen = observe(slow.db(), cq);
        let mut checks = 0usize;
        for (i, step) in script.iter().enumerate() {
            match step {
                Step::Advance(n) => shared.advance_clock(*n),
                Step::Batch(ops) => shared.apply_updates(ops).expect("script ops are valid"),
            }
            let pin = shared.pin();
            assert_eq!(pin.epoch(), i as u64 + 1, "one epoch per step");
            assert_eq!(
                observe(pin.db(), cq),
                expected[i + 1],
                "published epoch {} diverges from the oracle",
                i + 1
            );
            checks += 1;
            let st = shared.epoch_stats();
            assert_eq!(st.created, st.retired + st.live, "conservation: {st:?}");
            assert!(st.live <= 3, "unbounded epoch retention: {st:?}");
        }
        assert_eq!(observe(slow.db(), cq), frozen, "pinned epoch 0 mutated");
        drop(slow);
        let st = shared.epoch_stats();
        assert_eq!(st.live, 1, "slow subscriber's epoch failed to retire: {st:?}");
        table.row(vec![
            "A lifecycle".into(),
            "epoch".into(),
            "1 slow".into(),
            steps.to_string(),
            st.current.to_string(),
            checks.to_string(),
            "0".into(),
            st.live.to_string(),
            "—".into(),
            "—".into(),
            "—".into(),
            "—".into(),
        ]);
    }

    // ---- Phase B: measured overlap, locked vs epoch (obs disabled). ----
    let reader_counts: &[usize] = match scale {
        Scale::Quick => &[2],
        Scale::Full => &[2, 4, 8],
    };
    let queries_per_reader = scale.pick(30, 200);
    most_obs::set_enabled(false);
    for &readers in reader_counts {
        for engine in ["locked", "epoch"] {
            let out = if engine == "locked" {
                run_locked(&db, &script, &expected, cq, readers, queries_per_reader)
            } else {
                run_epoch(&db, &script, &expected, cq, readers, queries_per_reader)
            };
            assert_eq!(
                out.mismatches, 0,
                "{engine}: reader answers diverge from the oracle states"
            );
            assert_eq!(out.checks, readers * queries_per_reader);
            let secs = out.elapsed.as_secs_f64().max(1e-9);
            table.row(vec![
                "B overlap".into(),
                engine.into(),
                readers.to_string(),
                steps.to_string(),
                if engine == "epoch" { (steps + 1).to_string() } else { "—".into() },
                out.checks.to_string(),
                out.mismatches.to_string(),
                "1".into(),
                fmt_duration(out.elapsed),
                fmt_f64(out.checks as f64 / secs),
                fmt_duration(out.p50),
                fmt_duration(out.p95),
            ]);
        }
    }
    most_obs::set_enabled(true);

    table.note(
        "Phase A drives the epoch engine single-threaded with a slow subscriber pinning \
         epoch 0: after every step the published snapshot is byte-identical (canonical \
         JSON over instantaneous/continuous/persistent answers) to the single-threaded \
         oracle, accounting conserves (created == retired + live), and dropping the pin \
         retires its epoch — all asserted in-run, so this is the CI smoke gate.  Phase B \
         runs identical reader/writer workloads under the pre-PR global RwLock and under \
         epoch pinning: with the lock, every CQ refresh pass excludes all readers; with \
         epochs, refresh runs on the writer's copy while readers answer from pinned \
         snapshots.  Reader answers are oracle-verified in both engines.  Timings are \
         wall-clock and vary; counts are seeded and exact.",
    );
    table.mark_measured(&["time", "q/s", "p50", "p95"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_its_own_gates() {
        // `run` asserts oracle equality, conservation and retirement
        // internally; reaching the table at all means the gates held.
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        // Phase A row: every check passed, one live epoch at the end.
        assert_eq!(t.rows[0][6], "0");
        assert_eq!(t.rows[0][7], "1");
        // Phase B rows: zero mismatches under both engines.
        for row in t.rows.iter().skip(1).take(2) {
            assert_eq!(row[6], "0", "mismatches column: {row:?}");
        }
    }
}
