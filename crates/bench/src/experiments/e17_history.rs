//! E17 — the trajectory history warehouse: oracle-exact alibi and
//! aggregate answers, then recording overhead (PR 10 tentpole).
//!
//! `most-hist` records each object's piecewise-linear motion history at
//! the **epoch-publish boundary** (a publish observer installed on the
//! engine — no new engine locks) and answers two query families from
//! the recorded past: the **alibi query** (exact space-time prism
//! intersection: could two objects have met inside a time range?) and
//! **windowed warehouse aggregates** (distinct objects per region per
//! window, top-k busiest regions), maintained incrementally per batch.
//!
//! * **Phase A (oracle gate, the CI gate):** seeded taxi-shift and
//!   delivery-route fleets replay through all three engines — a single
//!   `EpochDb`, a 4-shard `ShardedDb`, and a WAL-backed `DurableDb` —
//!   with a recorder attached.  Every alibi answer must be
//!   **byte-identical** to the brute-force time-stepping oracle over
//!   the same recorded samples, and the incrementally-maintained
//!   aggregates must equal a full recompute of the retained sample
//!   log.  All asserted in-run.
//! * **Phase B (overhead, measured):** the same car-fleet batch stream
//!   applies to twin epoch engines with and without a recorder
//!   attached — the wall-clock ratio is the recording overhead — and
//!   the recorder's sustained fold rate (legs consumed per second,
//!   aggregate maintenance included) is reported for an unpruned and a
//!   tightly-pruned retention config.  Observability is disabled
//!   around this phase.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_core::sharded::{ShardedDb, ShardedDbBuilder};
use most_core::wal::{DurableDb, WalConfig};
use most_core::{Database, EpochDb, UpdateOp};
use most_hist::{HistoryConfig, HistoryRecorder, WindowedAggregates};
use most_spatial::Polygon;
use most_temporal::Interval;
use most_workload::delivery::{self, DeliveryScenario};
use most_workload::taxi::{self, TaxiScenario};
use most_workload::CarScenario;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0xE17;
const HORIZON: u64 = 160;
const WINDOW: u64 = 20;

/// WAL directories live under the workspace `target/` so experiment
/// runs never touch anything outside the repository; the pid suffix
/// keeps CI's double-run diff from colliding mid-flight.
fn wal_dir(tag: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/e17_wal")
        .join(format!("{}-{tag}", std::process::id()))
}

fn add_regions(db: &mut Database) {
    db.add_region("downtown", Polygon::rectangle(-150.0, -150.0, 150.0, 150.0));
    db.add_region("north", Polygon::rectangle(-400.0, 0.0, 400.0, 400.0));
}

/// One engine flavour under test, driven through a uniform surface.
enum Engine {
    Single(EpochDb),
    Sharded(ShardedDb),
    Durable(DurableDb),
}

impl Engine {
    fn attach(&self, rec: &Arc<HistoryRecorder>) {
        match self {
            Engine::Single(e) => rec.attach(e),
            Engine::Sharded(s) => rec.attach_sharded(s),
            Engine::Durable(d) => rec.attach_durable(d),
        }
    }

    fn advance(&self, ticks: u64) {
        match self {
            Engine::Single(e) => e.commit(|d| d.advance_clock(ticks)),
            Engine::Sharded(s) => s.advance_clock(ticks),
            Engine::Durable(d) => d.advance_clock(ticks).expect("wal advance"),
        }
    }

    fn apply(&self, ops: &[UpdateOp]) {
        match self {
            Engine::Single(e) => e.apply_updates(ops).expect("valid batch"),
            Engine::Sharded(s) => s.apply_updates(ops).expect("valid batch"),
            Engine::Durable(d) => d.apply_updates(ops).expect("valid batch"),
        }
    }

    /// A published database view (for the aggregate recompute oracle's
    /// region set — identical on every shard).
    fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        match self {
            Engine::Single(e) => f(e.pin().db()),
            Engine::Sharded(s) => f(s.pin().shard(0)),
            Engine::Durable(d) => f(d.epochs().pin().db()),
        }
    }
}

/// A seeded fleet: object ids plus the due-update schedule already cut
/// into `(last, now]` windows.
struct Fleet {
    ids: Vec<u64>,
    ops: Box<dyn Fn(u64, u64) -> Vec<UpdateOp>>,
}

fn build_world(fleet: &str, seed: u64, engine: &str) -> (Engine, Fleet) {
    let make_engine = |db: Database, populate_sharded: &dyn Fn(&mut ShardedDbBuilder) -> Vec<u64>| {
        match engine {
            "single" => Engine::Single(EpochDb::new(db)),
            "durable" => {
                let dir = wal_dir(&format!("{fleet}-{seed}"));
                let _ = std::fs::remove_dir_all(&dir);
                Engine::Durable(DurableDb::create(&dir, db, WalConfig::default()).unwrap())
            }
            _ => {
                let mut b = ShardedDbBuilder::new(4, 10_000);
                b.add_region("downtown", Polygon::rectangle(-150.0, -150.0, 150.0, 150.0));
                b.add_region("north", Polygon::rectangle(-400.0, 0.0, 400.0, 400.0));
                populate_sharded(&mut b);
                Engine::Sharded(b.finish())
            }
        }
    };
    match fleet {
        "taxi" => {
            let mut s = TaxiScenario::small(seed);
            s.count = 8;
            s.shift = 40;
            s.swap_break = 10;
            s.horizon = HORIZON;
            let plans = s.generate();
            let mut db = Database::new(10_000);
            add_regions(&mut db);
            let ids = s.populate(&mut db, &plans);
            let eng = make_engine(db, &|b| s.populate_sharded(b, &plans));
            let ops_ids = ids.clone();
            let fleet = Fleet {
                ids,
                ops: Box::new(move |last, now| taxi::due_motion_ops(&ops_ids, &plans, last, now)),
            };
            (eng, fleet)
        }
        _ => {
            let mut s = DeliveryScenario::small(seed);
            s.vans = 8;
            let plans = s.generate();
            let mut db = Database::new(10_000);
            add_regions(&mut db);
            let ids = s.populate(&mut db, &plans);
            let eng = make_engine(db, &|b| s.populate_sharded(b, &plans));
            let ops_ids = ids.clone();
            let fleet = Fleet {
                ids,
                ops: Box::new(move |last, now| {
                    delivery::due_motion_ops(&ops_ids, &plans, last, now)
                }),
            };
            (eng, fleet)
        }
    }
}

/// Replays the fleet's batch stream to `HORIZON` in 10-tick batches.
fn drive(engine: &Engine, fleet: &Fleet) {
    let mut last = 0;
    while last < HORIZON {
        let now = last + 10;
        engine.advance(10);
        let ops = (fleet.ops)(last, now);
        if !ops.is_empty() {
            engine.apply(&ops);
        }
        last = now;
    }
}

/// Drives one fleet through one engine with a recorder attached, then
/// byte-compares every alibi answer to the brute-force oracle and the
/// aggregates to a full recompute.  Returns `(checks, records)`.
fn oracle_gate(fleet_name: &str, seed: u64, engine_name: &str) -> (usize, u64) {
    let (engine, fleet) = build_world(fleet_name, seed, engine_name);
    let rec = HistoryRecorder::new(HistoryConfig::unpruned(WINDOW));
    engine.attach(&rec);
    drive(&engine, &fleet);
    let mut checks = 0;
    rec.with(|store| {
        for (i, &a) in fleet.ids.iter().take(3).enumerate() {
            for &b in fleet.ids.iter().take(3).skip(i + 1) {
                for vmax in [0.0, 2.5] {
                    for range in
                        [Interval::new(0, HORIZON), Interval::new(HORIZON / 4, HORIZON / 2)]
                    {
                        let fast = store.alibi(a, b, vmax, range);
                        let slow = store.alibi_by_oracle(a, b, vmax, range);
                        assert_eq!(
                            fast, slow,
                            "{engine_name}/{fleet_name} seed {seed}: alibi({a}, {b}, \
                             {vmax}, [{}, {}]) diverged from the oracle",
                            range.begin(),
                            range.end()
                        );
                        checks += 1;
                    }
                }
            }
        }
        engine.with_db(|db| {
            let oracle =
                WindowedAggregates::recompute(WINDOW, store.retained_samples(), db);
            assert_eq!(
                store.aggregates(),
                &oracle,
                "{engine_name}/{fleet_name} seed {seed}: incremental aggregates diverged"
            );
        });
        checks += 1;
    });
    let records = rec.with(|s| {
        s.object_ids().iter().map(|id| s.object(*id).unwrap().retained()).sum()
    });
    (checks, records)
}

// ---------------------------------------------------------------- Phase B

struct Overhead {
    elapsed_secs: f64,
    records: u64,
}

/// Applies the seeded car-fleet batch stream to a fresh epoch engine,
/// optionally with a recorder attached, and measures wall-clock.
fn run_stream(
    scenario: &CarScenario,
    plans: &[most_workload::CarPlan],
    config: Option<HistoryConfig>,
) -> Overhead {
    let mut db = Database::new(10_000);
    add_regions(&mut db);
    let ids = scenario.populate(&mut db, plans);
    let edb = EpochDb::new(db);
    let rec = config.map(|c| {
        let r = HistoryRecorder::new(c);
        r.attach(&edb);
        r
    });
    let step = 5;
    let mut scripts = Vec::new();
    let mut last = 0;
    while last < scenario.horizon {
        let now = last + step;
        let mut ops = Vec::new();
        for (id, plan) in ids.iter().zip(plans) {
            for &(at, v) in &plan.updates {
                if at > last && at <= now {
                    ops.push(UpdateOp::Motion { id: *id, velocity: v });
                }
            }
        }
        scripts.push(ops);
        last = now;
    }
    let t0 = Instant::now();
    for ops in &scripts {
        edb.commit(|d| d.advance_clock(step));
        if !ops.is_empty() {
            edb.apply_updates(ops).expect("planned updates are valid");
        }
    }
    let elapsed_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let records = rec.map_or(0, |r| {
        r.with(|s| s.object_ids().iter().map(|id| s.object(*id).unwrap().retained() + s.object(*id).unwrap().pruned()).sum())
    });
    Overhead { elapsed_secs, records }
}

/// Runs the history-warehouse experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E17",
        "trajectory history warehouse: oracle-exact alibi + aggregates across all three \
         engines, then epoch-boundary recording overhead and fold throughput",
        &[
            "phase", "engine", "fleet", "config", "objects", "steps", "checks",
            "mismatches", "records", "time", "rec/s", "overhead",
        ],
    );

    // ---- Phase A: deterministic oracle gate (obs stays enabled). ----
    let seeds = scale.pick(2u64, 3);
    for engine in ["single", "sharded", "durable"] {
        for fleet in ["taxi", "delivery"] {
            for seed in 0..seeds {
                let (checks, records) = oracle_gate(fleet, SEED ^ seed, engine);
                table.row(vec![
                    "A oracle".into(),
                    engine.into(),
                    fleet.into(),
                    "unpruned".into(),
                    "8".into(),
                    (HORIZON / 10).to_string(),
                    checks.to_string(),
                    "0".into(),
                    records.to_string(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                ]);
            }
        }
    }

    // A tightly-pruned recorder must actually prune (`hist.pruned`
    // lands in the metrics block) yet still answer alibi queries
    // oracle-exactly over whatever it retained — both solver and oracle
    // read the same retained sample log, so pruning can narrow answers
    // but never split them apart.  The aggregate oracle is skipped
    // here by design: folded windows survive pruning precisely so they
    // can *not* be recomputed from the retained log.
    {
        let (engine, fleet) = build_world("taxi", SEED, "single");
        let rec = HistoryRecorder::new(HistoryConfig {
            segment_capacity: 4,
            max_segments: 2,
            window: WINDOW,
        });
        engine.attach(&rec);
        drive(&engine, &fleet);
        let (pruned, retained) = rec.with(|store| {
            let pruned: u64 =
                store.object_ids().iter().map(|id| store.object(*id).unwrap().pruned()).sum();
            assert!(pruned > 0, "tight retention must prune the seeded taxi stream");
            let (a, b) = (fleet.ids[0], fleet.ids[1]);
            let range = Interval::new(HORIZON / 2, HORIZON);
            assert_eq!(
                store.alibi(a, b, 2.5, range),
                store.alibi_by_oracle(a, b, 2.5, range),
                "pruned store: alibi diverged from the oracle"
            );
            let retained: u64 =
                store.object_ids().iter().map(|id| store.object(*id).unwrap().retained()).sum();
            (pruned, retained)
        });
        table.row(vec![
            "A retention".into(),
            "single".into(),
            "taxi".into(),
            format!("pruned:4x2 (-{pruned})"),
            "8".into(),
            (HORIZON / 10).to_string(),
            "1".into(),
            "0".into(),
            retained.to_string(),
            "—".into(),
            "—".into(),
            "—".into(),
        ]);
    }

    // ---- Phase B: measured recording overhead (obs disabled). ----
    let objects = scale.pick(2_000usize, 50_000);
    let mut scenario = CarScenario::fleet(SEED ^ 0xB, objects);
    scenario.horizon = scale.pick(100, 200);
    scenario.mean_update_gap = 25.0;
    let plans = scenario.generate();
    let steps = scenario.horizon / 5;
    most_obs::set_enabled(false);
    let base = run_stream(&scenario, &plans, None);
    let configs = [
        ("unpruned", HistoryConfig::unpruned(WINDOW)),
        ("pruned:32x4", HistoryConfig { segment_capacity: 32, max_segments: 4, window: WINDOW }),
    ];
    let mut recorded = Vec::new();
    for (name, config) in configs {
        let out = run_stream(&scenario, &plans, Some(config));
        recorded.push(out.records);
        table.row(vec![
            "B overhead".into(),
            "single".into(),
            "cars".into(),
            name.into(),
            objects.to_string(),
            steps.to_string(),
            "—".into(),
            "—".into(),
            out.records.to_string(),
            fmt_duration(std::time::Duration::from_secs_f64(out.elapsed_secs)),
            fmt_f64(out.records as f64 / out.elapsed_secs),
            format!("{:.2}x", out.elapsed_secs / base.elapsed_secs),
        ]);
    }
    most_obs::set_enabled(true);
    assert_eq!(
        recorded[0], recorded[1],
        "retention prunes storage, never the record stream"
    );

    table.note(
        "Phase A replays seeded taxi-shift and delivery-route fleets through a single \
         epoch engine, a 4-shard engine and a WAL-backed durable engine with a history \
         recorder attached at the epoch-publish boundary; every alibi answer is \
         byte-compared to the brute-force time-stepping oracle (including the zero \
         speed-bound and parked-object degeneracies the shift/dwell patterns produce), \
         and the incrementally-maintained windowed aggregates are byte-compared to a \
         full recompute of the retained sample log — all asserted in-run, so this is \
         the CI smoke gate.  Phase B applies one seeded car-fleet batch stream to twin \
         epoch engines with and without a recorder: the wall-clock ratio is the \
         recording overhead, and rec/s is the sustained fold rate (segment append + \
         aggregate maintenance).  The pruned config must consume exactly the record \
         stream the unpruned one does — retention bounds memory, not recording.  \
         Timings are wall-clock and vary; counts are seeded and exact.",
    );
    table.mark_measured(&["time", "rec/s", "overhead"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_its_own_gates() {
        // `run` asserts alibi/aggregate oracle equality across all three
        // engines internally; reaching the table at all means the gates
        // held.
        let t = run(Scale::Quick);
        // 12 Phase A rows (3 engines × 2 fleets × 2 seeds) + 1 retention
        // row + 2 Phase B rows.
        assert_eq!(t.rows.len(), 15);
        assert!(t.metrics.is_empty(), "metrics attach in the harness wrapper");
    }
}
