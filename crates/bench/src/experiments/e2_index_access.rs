//! E2 — dynamic-attribute index access time vs linear scan.
//!
//! Claim (§4): the function-line index "guarantees logarithmic (in the
//! number of objects) access time", where the straightforward alternative
//! examines every object.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_index::{DynamicAttributeIndex, IndexKind, ScanIndex};
use most_testkit::rng::Rng;
use std::time::Instant;

/// Builds an index + scan baseline with `n` objects and measures a batch of
/// 1%-selectivity instantaneous range queries.
pub fn run(scale: Scale) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[1_000, 4_000],
        Scale::Full => &[1_000, 8_000, 64_000, 256_000],
    };
    let queries = scale.pick(10, 50);
    let lifetime = 1_000u64;
    let mut table = Table::new(
        "E2",
        "instantaneous range query: Section 4 index vs full scan",
        &[
            "objects",
            "index nodes visited",
            "scan entries visited",
            "visit ratio",
            "index time/query",
            "scan time/query",
            "results equal",
        ],
    );
    for &n in sizes {
        let mut rng = Rng::seed_from_u64(7);
        let value_range = (-(n as f64), 2.0 * n as f64);
        let mut idx = DynamicAttributeIndex::new(IndexKind::QuadTree, lifetime, value_range);
        let mut scan = ScanIndex::new();
        for i in 0..n as u64 {
            let v0 = rng.random_range(0.0..n as f64);
            let slope = rng.random_range(-0.5..0.5);
            idx.insert(i, 0, v0, slope);
            scan.upsert(i, 0, v0, slope);
        }
        // 1% selectivity value windows at random times.
        let window = n as f64 / 100.0;
        let probes: Vec<(u64, f64)> = (0..queries)
            .map(|_| {
                (
                    rng.random_range(0..lifetime),
                    rng.random_range(0.0..(n as f64 - window)),
                )
            })
            .collect();
        let mut idx_nodes = 0.0;
        let mut scan_nodes = 0.0;
        let mut equal = true;
        let t0 = Instant::now();
        let mut idx_results = Vec::new();
        for &(at, lo) in &probes {
            let (ids, stats) = idx.instantaneous(at, lo, lo + window);
            idx_nodes += (stats.nodes_visited + stats.candidates) as f64 / queries as f64;
            idx_results.push(ids);
        }
        let idx_time = t0.elapsed() / queries as u32;
        let t0 = Instant::now();
        for (probe, want) in probes.iter().zip(&idx_results) {
            let (ids, stats) = scan.instantaneous(probe.0, probe.1, probe.1 + window);
            scan_nodes += stats.nodes_visited as f64 / queries as f64;
            equal &= &ids == want;
        }
        let scan_time = t0.elapsed() / queries as u32;
        table.row(vec![
            n.to_string(),
            fmt_f64(idx_nodes),
            fmt_f64(scan_nodes),
            fmt_f64(scan_nodes / idx_nodes.max(1.0)),
            fmt_duration(idx_time),
            fmt_duration(scan_time),
            equal.to_string(),
        ]);
    }
    table.note(
        "Claimed shape: scan visits n entries per query; the index visits \
         O(log n) nodes plus the candidates, so the visit ratio grows with n.",
    );
    table.mark_measured(&["index time/query", "scan time/query"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_beats_scan_and_gap_grows() {
        let t = run(Scale::Quick);
        let ratios: Vec<f64> = (0..t.rows.len())
            .map(|r| t.cell_f64(r, "visit ratio").unwrap())
            .collect();
        assert!(ratios[0] > 2.0, "ratio at smallest n: {}", ratios[0]);
        assert!(
            ratios.last().unwrap() > &ratios[0],
            "gap should grow with n: {ratios:?}"
        );
        for r in 0..t.rows.len() {
            assert_eq!(t.cell(r, "results equal"), Some("true"));
        }
    }
}
