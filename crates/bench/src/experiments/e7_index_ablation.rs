//! E7 — index-structure ablation: quadtree vs R-tree vs scan.
//!
//! Section 4 leaves the decomposition open ("usually into rectangles") and
//! Section 7 plans to "experimentally compare various mechanisms for
//! indexing dynamic attributes" — this is that comparison, over both a
//! read-only and an update-heavy regime.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_index::{DynamicAttributeIndex, IndexKind, ScanIndex};
use most_testkit::rng::Rng;
use std::time::Instant;

/// Runs the three structures over the same workload.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(2_000usize, 50_000usize);
    let queries = scale.pick(15usize, 100usize);
    let updates = scale.pick(300usize, 5_000usize);
    let lifetime = 1_000u64;
    let mut table = Table::new(
        "E7",
        "index ablation on one dynamic attribute (same query results asserted)",
        &[
            "structure",
            "build",
            "query (avg)",
            "nodes/query",
            "update (avg)",
            "continuous query (avg)",
        ],
    );
    let value_range = (-(n as f64), 2.0 * n as f64);
    let window = n as f64 / 100.0;

    let gen_objects = |seed: u64| {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n as u64)
            .map(|i| {
                (
                    i,
                    rng.random_range(0.0..n as f64),
                    rng.random_range(-0.5..0.5),
                )
            })
            .collect::<Vec<_>>()
    };
    let objects = gen_objects(5);
    let mut rng = Rng::seed_from_u64(6);
    let probes: Vec<(u64, f64)> = (0..queries)
        .map(|_| {
            (
                rng.random_range(0..lifetime),
                rng.random_range(0.0..(n as f64 - window)),
            )
        })
        .collect();
    let update_plan: Vec<(u64, u64, f64, f64)> = (0..updates)
        .map(|i| {
            (
                rng.random_range(0..n as u64),
                (i as u64 % lifetime).max(1),
                rng.random_range(0.0..n as f64),
                rng.random_range(-0.5..0.5),
            )
        })
        .collect();

    let mut reference: Option<Vec<Vec<u64>>> = None;
    for kind in [Some(IndexKind::QuadTree), Some(IndexKind::RTree), None] {
        let name = match kind {
            Some(IndexKind::QuadTree) => "quadtree",
            Some(IndexKind::RTree) => "R-tree",
            None => "scan (baseline)",
        };
        match kind {
            Some(k) => {
                let t0 = Instant::now();
                let mut idx = DynamicAttributeIndex::new(k, lifetime, value_range);
                for &(id, v, s) in &objects {
                    idx.insert(id, 0, v, s);
                }
                let build = t0.elapsed();
                let mut nodes = 0.0;
                let t0 = Instant::now();
                let results: Vec<Vec<u64>> = probes
                    .iter()
                    .map(|&(at, lo)| {
                        let (ids, stats) = idx.instantaneous(at, lo, lo + window);
                        nodes += (stats.nodes_visited + stats.candidates) as f64
                            / queries as f64;
                        ids
                    })
                    .collect();
                let query_time = t0.elapsed() / queries as u32;
                match &reference {
                    None => reference = Some(results),
                    Some(want) => assert_eq!(want, &results, "{name} results differ"),
                }
                // Update-heavy phase (sorted by tick so updates move forward).
                let mut plan = update_plan.clone();
                plan.sort_by_key(|&(_, t, _, _)| t);
                let t0 = Instant::now();
                for &(id, t, v, s) in &plan {
                    idx.update(id, t, v, s);
                }
                let update_time = t0.elapsed() / updates as u32;
                // Continuous queries after updates.
                let t0 = Instant::now();
                for &(_, lo) in probes.iter().take(queries / 3) {
                    let _ = idx.continuous(0, lo, lo + window);
                }
                let cont_time = t0.elapsed() / (queries / 3).max(1) as u32;
                table.row(vec![
                    name.into(),
                    fmt_duration(build),
                    fmt_duration(query_time),
                    fmt_f64(nodes),
                    fmt_duration(update_time),
                    fmt_duration(cont_time),
                ]);
            }
            None => {
                let t0 = Instant::now();
                let mut scan = ScanIndex::new();
                for &(id, v, s) in &objects {
                    scan.upsert(id, 0, v, s);
                }
                let build = t0.elapsed();
                let mut nodes = 0.0;
                let t0 = Instant::now();
                let results: Vec<Vec<u64>> = probes
                    .iter()
                    .map(|&(at, lo)| {
                        let (ids, stats) = scan.instantaneous(at, lo, lo + window);
                        nodes += stats.nodes_visited as f64 / queries as f64;
                        ids
                    })
                    .collect();
                let query_time = t0.elapsed() / queries as u32;
                assert_eq!(
                    reference.as_ref().expect("indexes ran first"),
                    &results,
                    "scan results differ"
                );
                let t0 = Instant::now();
                for &(id, t, v, s) in &update_plan {
                    scan.upsert(id, t, v, s);
                }
                let update_time = t0.elapsed() / updates as u32;
                table.row(vec![
                    name.into(),
                    fmt_duration(build),
                    fmt_duration(query_time),
                    fmt_f64(nodes),
                    fmt_duration(update_time),
                    "n/a".into(),
                ]);
            }
        }
    }
    table.note(format!(
        "n = {n}; 1% selectivity; both tree structures return identical answers \
         (asserted).  Scan updates are O(1) but every query pays O(n)."
    ));
    table.mark_measured(&["build", "query (avg)", "update (avg)", "continuous query (avg)"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trees_visit_fewer_entries_than_scan() {
        let t = run(Scale::Quick);
        let quad_nodes = t.cell_f64(0, "nodes/query").unwrap();
        let rtree_nodes = t.cell_f64(1, "nodes/query").unwrap();
        let scan_nodes = t.cell_f64(2, "nodes/query").unwrap();
        assert!(quad_nodes < scan_nodes / 3.0);
        assert!(rtree_nodes < scan_nodes / 3.0);
    }
}
