//! E15 — durability and fault-tolerant replication.
//!
//! The paper's service envisions long-lived server state (Section 1: a
//! database of moving objects queried continuously); a deployable engine
//! must survive crashes without losing committed updates and must be able
//! to replicate its update stream to followers over an unreliable
//! network.  This experiment drives both halves of the PR 8 durability
//! layer:
//!
//! * **Phase A (crash/recover, the CI gate):** for each of 16 seeds, a
//!   durable server executes half of a scripted workload, crashes (its
//!   WAL tail even gains a torn frame), is recovered with
//!   [`most_core::wal::DurableDb::open`], and a second server finishes
//!   the script.  Every answer and the full database fingerprint must
//!   match an oracle that never crashed, recovery must flag the torn
//!   tail, and the recovered engine's epoch accounting must conserve.
//!   All asserted *in-run*; a failure aborts the experiment.
//! * **Phase B (replica convergence):** a primary ships its WAL record
//!   sequence over the reliable mesh to two followers while the network
//!   loses 0–40% of copies, duplicates 20%, jitters delivery and cuts a
//!   partition window.  Every follower must apply every record and land
//!   on a byte-identical fingerprint with identical continuous-query
//!   answers.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_core::wal::{apply_record, WalRecord};
use most_core::{Database, UpdateOp};
use most_ftl::Query;
use most_mobile::{
    FaultPlan, Network, ReliableMesh, ReplicaApplier, ReplicaPublisher, RetryPolicy,
};
use most_server::load::{run_crash_recovery, LoadSpec};
use most_spatial::{Point, Polygon, Velocity};
use most_testkit::rng::Rng;
use most_testkit::ser::to_json_string;
use std::path::PathBuf;

/// Crash/recover seeds — the acceptance floor is 16.
const SEEDS: u64 = 16;

const PRIMARY: u64 = 0;
const FOLLOWERS: [u64; 2] = [1, 2];

/// WAL directories live under the workspace `target/` so experiment runs
/// never touch anything outside the repository; the per-seed suffix keeps
/// re-entrant runs (CI's double-run diff) from colliding mid-flight.
fn wal_dir(tag: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/e15_wal")
        .join(format!("{}-{tag}", std::process::id()))
}

/// The seeded replica world: five cars, one region, one registered CQ.
fn replica_world(seed: u64) -> (Database, Vec<u64>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new(300);
    db.add_region("P", Polygon::rectangle(-30.0, -30.0, 30.0, 30.0));
    let mut ids = Vec::new();
    for _ in 0..5 {
        let p = Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0));
        let v = Velocity::new(rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0));
        ids.push(db.insert_moving_object("cars", p, v));
    }
    db.register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").expect("parses"))
        .expect("registers");
    (db, ids)
}

/// The seeded record stream the primary ships.
fn replica_records(seed: u64, ids: &[u64], n: usize) -> Vec<WalRecord> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed_f00d);
    (0..n)
        .map(|_| {
            if rng.random_bool(0.35) {
                WalRecord::Advance { ticks: rng.random_range(1..3u64) }
            } else {
                WalRecord::Batch {
                    ops: vec![UpdateOp::Motion {
                        id: ids[rng.random_range(0..ids.len())],
                        velocity: Velocity::new(
                            rng.random_range(-2.0..2.0),
                            rng.random_range(-2.0..2.0),
                        ),
                    }],
                }
            }
        })
        .collect()
}

/// Every registered CQ's materialized answer, serialized — the canonical
/// "same answers" observation.
fn cq_answers(db: &Database) -> String {
    let mut out = String::new();
    for id in db.continuous_registry().ids() {
        out.push_str(&to_json_string(db.continuous_answer(id).expect("cq exists")).expect("encodes"));
        out.push(';');
    }
    out
}

/// Runs the durability experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E15",
        "durability: crash/recover against a never-crashed oracle, then replica convergence under faults",
        &[
            "phase",
            "param",
            "records",
            "replayed",
            "torn-tail",
            "traffic",
            "drain-ticks",
            "verified",
            "time",
        ],
    );

    // Phase A: per-seed crash/recover sweep.  The workload size varies
    // with the seed so segment rotation and checkpointing both get
    // exercised across the sweep.
    for seed in 0..SEEDS {
        let spec = LoadSpec {
            subscribers: 0,
            queries: scale.pick(3, 4),
            objects: scale.pick(20, 40),
            area: 400.0,
            ticks: scale.pick(6, 12) + seed % 3,
            batch: 6,
            seed: 0xE15 ^ seed,
        };
        let dir = wal_dir(&format!("a{seed}"));
        let outcome = run_crash_recovery(&spec, &dir);
        // The CI smoke gate: divergence from the never-crashed oracle,
        // an undetected torn tail, a wrong replay count, or an epoch
        // accounting leak each fail the whole experiment run.
        assert!(outcome.verified, "seed {seed}: recovered state diverges: {outcome:?}");
        assert!(outcome.epoch_conserved, "seed {seed}: epoch leak: {outcome:?}");
        assert!(outcome.truncated_tail, "seed {seed}: torn tail not detected: {outcome:?}");
        let logged = spec.queries as u64 + 2 * (spec.ticks / 2).max(1);
        assert_eq!(
            outcome.records_replayed, logged,
            "seed {seed}: recovery replayed a different committed prefix: {outcome:?}"
        );
        table.row(vec![
            "A crash/recover".into(),
            format!("seed {seed}"),
            logged.to_string(),
            outcome.records_replayed.to_string(),
            outcome.truncated_tail.to_string(),
            outcome.requests.to_string(),
            "—".into(),
            outcome.verified.to_string(),
            fmt_duration(outcome.elapsed),
        ]);
    }

    // Phase B: replica convergence loss sweep, duplication + jitter + one
    // partition window throughout.
    let n_records = scale.pick(16usize, 40usize);
    for (i, loss) in [0.0, 0.2, 0.4].into_iter().enumerate() {
        let seed = 0xB0 + i as u64;
        let (initial, ids) = replica_world(seed);
        let records = replica_records(seed, &ids, n_records);
        let mut primary = initial.clone();
        for r in &records {
            apply_record(&mut primary, r).expect("primary applies its own record");
        }

        let nodes = [PRIMARY, FOLLOWERS[0], FOLLOWERS[1]];
        let mut net = Network::new(1);
        net.set_faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_loss(loss)
                .with_duplication(0.2)
                .with_jitter(2)
                .with_partition(&[FOLLOWERS[0]], 5, 25),
        );
        let policy = RetryPolicy { base_backoff: 2, max_backoff: 16, ..RetryPolicy::unbounded() };
        let mut mesh = ReliableMesh::new(&nodes, policy);
        let publisher = ReplicaPublisher::new(PRIMARY, &FOLLOWERS);
        let mut appliers: Vec<ReplicaApplier> = FOLLOWERS
            .iter()
            .map(|&f| ReplicaApplier::new(f, initial.clone(), 0))
            .collect();

        let before = net.stats;
        let mut drain_ticks = 0u64;
        for t in 0..50_000u64 {
            if (t as usize) < records.len() {
                publisher.publish(&mut mesh, &mut net, t, &records[t as usize], t);
            }
            for d in mesh.tick(&mut net, t) {
                for a in appliers.iter_mut() {
                    if a.node() == d.at {
                        a.on_delivery(&d);
                    }
                }
            }
            if t as usize >= records.len() && mesh.is_idle() {
                drain_ticks = t;
                break;
            }
        }
        assert!(drain_ticks > 0, "loss {loss}: mesh never drained");
        let mut converged = true;
        let mut applied = u64::MAX;
        for a in &appliers {
            applied = applied.min(a.applied());
            if a.fingerprint() != primary.fingerprint()
                || cq_answers(a.db()) != cq_answers(&primary)
                || a.buffered() != 0
            {
                converged = false;
            }
        }
        assert!(converged, "loss {loss}: a follower diverged from the primary");
        assert_eq!(applied, records.len() as u64, "loss {loss}: a follower missed records");
        table.row(vec![
            "B replica".into(),
            format!("loss {}", fmt_f64(loss)),
            records.len().to_string(),
            applied.to_string(),
            "—".into(),
            (net.stats.messages - before.messages).to_string(),
            drain_ticks.to_string(),
            converged.to_string(),
            "—".into(),
        ]);
    }

    table.note(
        "Phase A is the durability gate: for each seed a durable server crashes halfway \
         through a scripted workload (with a torn frame appended to its WAL tail), is \
         recovered, and finishes the script on a second server; the final answers and \
         the full database fingerprint must equal a never-crashed oracle's byte for \
         byte, recovery must stop exactly at the committed whole-record prefix, and \
         the recovered engine's epoch accounting must conserve.  Phase B ships the \
         primary's WAL record stream over the reliable mesh under seeded loss, 20% \
         duplication, jitter and a partition window; every follower converges to a \
         byte-identical fingerprint with identical continuous-query answers.",
    );
    table.mark_measured(&["time"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_its_own_gates() {
        // `run` asserts oracle equality, torn-tail detection, epoch
        // conservation and replica convergence internally; reaching the
        // table at all means every gate held.
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), SEEDS as usize + 3);
        for r in 0..t.rows.len() {
            assert_eq!(t.cell(r, "verified"), Some("true"), "row {r}");
        }
    }
}
