//! E4 — FTL query processing: the appendix interval algorithm vs per-tick
//! evaluation; E4b — cost of the negation/disjunction extensions.
//!
//! Claim (§6): without exposed dynamic attributes "the only way to answer a
//! query such as 'retrieve the objects that will intersect a polygon P at
//! some time between now and 5pm' is to evaluate the query at every point
//! in time" — the black-box baseline implemented by
//! `most_ftl::semantics::naive_answer`.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_ftl::context::MemoryContext;
use most_ftl::semantics::naive_answer;
use most_ftl::{evaluate_query, Query};
use most_spatial::Polygon;
use most_temporal::Tick;
use most_workload::cars::CarScenario;
use std::time::Instant;

pub(crate) fn context(n: usize, horizon: Tick, seed: u64) -> MemoryContext {
    let scenario = CarScenario {
        count: n,
        area: 300.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18, // single-leg (instantaneous-query setting)
        horizon,
        seed,
    };
    let mut ctx = MemoryContext::new(horizon);
    for (i, plan) in scenario.generate().iter().enumerate() {
        ctx.add_object(i as u64 + 1, plan.trajectory());
        ctx.set_attr(i as u64 + 1, "PRICE", plan.price);
    }
    ctx.add_region("P", Polygon::rectangle(-120.0, -120.0, 120.0, 120.0));
    ctx.add_region("Q", Polygon::rectangle(150.0, -80.0, 280.0, 80.0));
    ctx
}

/// The paper's example queries (Section 3.4 I–III and the Until pair
/// query of Section 3.2).
pub fn paper_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "(I) enter P, price",
            "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually within 60 INSIDE(o, P)",
        ),
        (
            "(II) enter & stay",
            "RETRIEVE o WHERE Eventually within 60 (INSIDE(o, P) AND Always for 20 INSIDE(o, P))",
        ),
        (
            "(III) P then Q",
            "RETRIEVE o WHERE Eventually within 60 (INSIDE(o, P) AND Always for 10 INSIDE(o, P) AND Eventually after 30 INSIDE(o, Q))",
        ),
        (
            "Until pair",
            "RETRIEVE o, n WHERE o <> n AND (DIST(o, n) <= 150 Until (INSIDE(o, P) AND INSIDE(n, P)))",
        ),
    ]
}

/// Interval algorithm vs per-tick oracle across database sizes.
pub fn run(scale: Scale) -> Table {
    let horizon = scale.pick(150u64, 400u64);
    let sizes: &[usize] = match scale {
        Scale::Quick => &[10, 20],
        Scale::Full => &[10, 30, 100],
    };
    let mut table = Table::new(
        "E4",
        "FTL evaluation: appendix interval algorithm vs per-tick baseline",
        &[
            "query",
            "objects",
            "horizon",
            "interval algo",
            "per-tick baseline",
            "speedup",
            "answers equal",
        ],
    );
    for &n in sizes {
        let ctx = context(n, horizon, 9);
        for (name, src) in paper_queries() {
            let q = Query::parse(src).expect("paper query parses");
            let t0 = Instant::now();
            let fast = evaluate_query(&ctx, &q).expect("interval evaluation");
            let fast_time = t0.elapsed();
            let t0 = Instant::now();
            let slow = naive_answer(&ctx, &q).expect("oracle evaluation");
            let slow_time = t0.elapsed();
            table.row(vec![
                name.to_owned(),
                n.to_string(),
                horizon.to_string(),
                fmt_duration(fast_time),
                fmt_duration(slow_time),
                fmt_f64(slow_time.as_secs_f64() / fast_time.as_secs_f64().max(1e-9)),
                (fast == slow).to_string(),
            ]);
        }
    }
    table.note(
        "Claimed shape: the interval algorithm's cost scales with the number of \
         satisfaction intervals (relation sizes), not with horizon × objects, so the \
         speedup grows with the horizon; answers are asserted identical.",
    );
    table.mark_measured(&["interval algo", "per-tick baseline", "speedup"]);
    table
}

/// E4b — ablation: conjunctive fragment vs the negation/disjunction
/// extensions (DESIGN.md D3).
pub fn run_ablation(scale: Scale) -> Table {
    let horizon = scale.pick(150u64, 400u64);
    let n = scale.pick(20usize, 60usize);
    let ctx = context(n, horizon, 11);
    let queries = [
        ("conjunctive", "RETRIEVE o WHERE Eventually INSIDE(o, P) AND o.PRICE <= 120"),
        ("with OR", "RETRIEVE o WHERE Eventually INSIDE(o, P) OR o.PRICE <= 120"),
        ("with NOT", "RETRIEVE o WHERE NOT Eventually INSIDE(o, P)"),
        (
            "NOT over pairs",
            "RETRIEVE o, n WHERE o <> n AND NOT Eventually (DIST(o, n) <= 20)",
        ),
    ];
    let mut table = Table::new(
        "E4b",
        "extension ablation: conjunctive core vs negation/disjunction (active domain)",
        &["query", "objects", "time", "answer rows"],
    );
    for (name, src) in queries {
        let q = Query::parse(src).expect("query parses");
        let t0 = Instant::now();
        let a = evaluate_query(&ctx, &q).expect("evaluation");
        let dt = t0.elapsed();
        table.row(vec![
            name.to_owned(),
            n.to_string(),
            fmt_duration(dt),
            a.len().to_string(),
        ]);
    }
    table.note(
        "The paper restricts its algorithm to conjunctive formulas for safety; the \
         extensions pay for active-domain expansion (NOT over k variables touches \
         n^k instantiations).",
    );
    table.mark_measured(&["time"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_algorithm_wins_and_matches() {
        let t = run(Scale::Quick);
        for r in 0..t.rows.len() {
            assert_eq!(t.cell(r, "answers equal"), Some("true"));
        }
        // Median speedup comfortably above 1.
        let mut speedups: Vec<f64> = (0..t.rows.len())
            .map(|r| t.cell_f64(r, "speedup").unwrap())
            .collect();
        speedups.sort_by(f64::total_cmp);
        assert!(
            speedups[speedups.len() / 2] > 2.0,
            "median speedup {speedups:?}"
        );
    }

    #[test]
    fn ablation_runs_all_variants() {
        let t = run_ablation(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        // NOT over pairs yields n*(n-1) minus eventually-close pairs: some rows.
        assert!(t.cell_f64(3, "answer rows").unwrap() > 0.0);
    }
}
