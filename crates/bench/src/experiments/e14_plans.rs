//! E14 — compiled FTL query plans: interpreter vs compiled (per-atom
//! interval caching) vs compiled + index-pruned candidates.
//!
//! Claim under test (§2.3 + §4): a continuous query's answer "has to be
//! reevaluated when an update occurs", but the re-evaluation need not
//! repeat work the update cannot have touched.  The compiled-plan engine
//! lowers each registered query once into a flat atom plan; across
//! refreshes it (a) replays cached per-atom interval relations whose
//! dependency set the batch did not touch (a PRICE-only batch re-derives
//! only attribute atoms), and (b) fetches index-pruned candidate id-sets
//! for spatial and attribute-range atoms instead of enumerating the whole
//! domain — the Section 4 index purpose, "avoid examining each moving
//! object in the database".
//!
//! Every regime must produce byte-identical final displays — asserted in
//! [`run`] itself, so the CI smoke gate (`experiments e14 --quick`) fails
//! loudly if compilation, caching, or pruning ever changes an answer.
//! The quick run also asserts a strict reduction in candidate bindings
//! evaluated (`ftl.candidates_evaluated`) for the indexed regime and a
//! non-zero atom-cache hit count for the compiled regimes.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_core::{Database, IndexKind, UpdateOp};
use most_dbms::value::Value;
use most_ftl::Query;
use most_spatial::{Polygon, Rect, Velocity};
use most_workload::cars::CarScenario;
use std::time::{Duration, Instant};

/// One regime's outcome over the shared update script.
struct Outcome {
    /// Final display of every continuous query (soundness witness).
    displays: Vec<Vec<Vec<Value>>>,
    /// Candidate bindings the evaluator actually evaluated.
    candidates: u64,
    /// Atom-cache hits (relations replayed instead of recomputed).
    cache_hits: u64,
    /// Atoms answered from an index-pruned candidate set.
    pruned_atoms: u64,
    /// Wall-clock for driving the whole window.
    time: Duration,
}

/// Which acceleration layers a regime enables.
#[derive(Clone, Copy)]
struct Regime {
    compiled: bool,
    indexed: bool,
}

/// The deterministic update script: each tick applies two mixed batches —
/// motion first, then PRICE — so per-atom caching has same-tick replays to
/// serve (a PRICE batch finds every spatial atom still cached) and
/// dependency classification has something to classify.
fn drive(n_objects: usize, n_queries: usize, ticks: u64, batch: usize, regime: Regime) -> Outcome {
    let scenario = CarScenario {
        count: n_objects,
        area: 400.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18, // scripted updates below, none from the plan
        horizon: ticks,
        seed: 42,
    };
    let plans = scenario.generate();
    let mut db = Database::new(ticks + 200);
    db.set_compiled_plans(regime.compiled);
    if regime.indexed {
        db.enable_spatial_index(Rect::new(-500.0, -500.0, 500.0, 500.0));
        db.enable_attr_index("PRICE", IndexKind::RTree, (-10_000.0, 10_000.0));
    }
    for (i, rect) in region_grid().into_iter().enumerate() {
        db.add_region(format!("P{i}"), rect);
    }
    let ids = scenario.populate(&mut db, &plans);
    // Seed every car with a PRICE so attribute atoms and the attribute
    // index have real lines to work with.
    for (i, &id) in ids.iter().enumerate() {
        db.set_static(id, "PRICE", Value::from(40.0 + ((i * 7) % 160) as f64))
            .expect("cars admit PRICE");
    }
    let cqs: Vec<u64> = (0..n_queries)
        .map(|q| {
            let src = match q % 3 {
                0 => format!(
                    "RETRIEVE o WHERE Eventually within 100 INSIDE(o, P{})",
                    q / 3 % 8
                ),
                1 => format!("RETRIEVE o WHERE o.PRICE <= {}", 60 + (q * 13) % 130),
                _ => format!(
                    "RETRIEVE o WHERE Eventually within 100 (INSIDE(o, P{}) AND o.PRICE <= {})",
                    q / 3 % 8,
                    60 + (q * 11) % 130
                ),
            };
            db.register_continuous(Query::parse(&src).expect("query parses"))
                .expect("register")
        })
        .collect();

    let candidates0 = most_obs::counter_value("ftl.candidates_evaluated");
    let hits0 = most_obs::counter_value("ftl.plan.cache_hits");
    let pruned0 = most_obs::counter_value("ftl.pruned");
    let t0 = Instant::now();
    for t in 1..=ticks {
        db.advance_clock(1);
        // Two batches per tick: motion, then PRICE.  The second batch hits
        // the same-tick cache — only attribute atoms re-derive.
        for (phase, motion) in [(0usize, true), (1usize, false)] {
            let ops: Vec<UpdateOp> = (0..batch)
                .map(|j| {
                    let i = ((t as usize) * 17 + j * 31 + phase * 5) % ids.len();
                    if motion {
                        let k = ((t as usize + j + i) % 5) as f64;
                        UpdateOp::Motion {
                            id: ids[i],
                            velocity: Velocity::new(0.4 * k - 0.8, 0.3 * k - 0.6),
                        }
                    } else {
                        let price = 40.0 + (((t as usize) * 13 + i * 7) % 160) as f64;
                        UpdateOp::Static {
                            id: ids[i],
                            attr: "PRICE".into(),
                            value: Value::from(price),
                        }
                    }
                })
                .collect();
            db.apply_updates(&ops).expect("scripted updates are valid");
        }
        // Index maintenance rides the tick boundary, exactly as the epoch
        // engine does before publishing a snapshot.
        db.maintain_spatial_index();
        db.maintain_attr_index();
    }
    let time = t0.elapsed();

    let now = db.now();
    let displays = cqs
        .iter()
        .map(|&cq| db.continuous_display(cq, now).expect("display"))
        .collect();
    Outcome {
        displays,
        candidates: most_obs::counter_value("ftl.candidates_evaluated") - candidates0,
        cache_hits: most_obs::counter_value("ftl.plan.cache_hits") - hits0,
        pruned_atoms: most_obs::counter_value("ftl.pruned") - pruned0,
        time,
    }
}

/// Eight region rectangles the spatial queries cycle through.
fn region_grid() -> Vec<Polygon> {
    (0..8)
        .map(|i| {
            let x0 = -400.0 + 100.0 * i as f64;
            Polygon::rectangle(x0, -120.0, x0 + 140.0, 120.0)
        })
        .collect()
}

/// Measures the three evaluation regimes on one mixed workload.
pub fn run(scale: Scale) -> Table {
    let n_objects = scale.pick(40usize, 800usize);
    let n_queries = scale.pick(9usize, 48usize);
    let ticks = scale.pick(6u64, 20u64);
    let batch = scale.pick(4usize, 24usize);
    let mut table = Table::new(
        "E14",
        "compiled FTL plans: per-atom interval caching and index-pruned \
         candidates (final displays identical under every regime)",
        &[
            "objects",
            "CQs",
            "regime",
            "candidates evaluated",
            "cache hits",
            "pruned atoms",
            "time",
            "speedup vs interpreter",
        ],
    );
    let regimes = [
        ("interpreter", Regime { compiled: false, indexed: false }),
        ("compiled", Regime { compiled: true, indexed: false }),
        ("compiled + index", Regime { compiled: true, indexed: true }),
    ];
    let mut outcomes: Vec<Outcome> = Vec::new();
    for (label, regime) in &regimes {
        let out = drive(n_objects, n_queries, ticks, batch, *regime);
        table.row(vec![
            n_objects.to_string(),
            n_queries.to_string(),
            (*label).to_string(),
            out.candidates.to_string(),
            out.cache_hits.to_string(),
            out.pruned_atoms.to_string(),
            fmt_duration(out.time),
            fmt_f64(outcomes.first().map_or(1.0, |base: &Outcome| {
                base.time.as_secs_f64() / out.time.as_secs_f64().max(1e-9)
            })),
        ]);
        outcomes.push(out);
    }

    // The soundness + perf smoke gate: these hold on every run, including
    // `experiments e14 --quick` in CI.
    let interp = &outcomes[0];
    for (i, out) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(
            out.displays, interp.displays,
            "{}: compiled/indexed evaluation changed an answer",
            regimes[i].0
        );
    }
    if most_obs::is_enabled() {
        assert!(
            outcomes[1].cache_hits > 0,
            "compiled regime replayed no cached atoms"
        );
        assert!(
            outcomes[1].candidates < interp.candidates,
            "per-atom caching must evaluate strictly fewer candidate bindings \
             ({} vs {})",
            outcomes[1].candidates,
            interp.candidates
        );
        assert!(
            outcomes[2].candidates < outcomes[1].candidates,
            "index pruning must evaluate strictly fewer candidate bindings than \
             caching alone ({} vs {})",
            outcomes[2].candidates,
            outcomes[1].candidates
        );
        assert!(outcomes[2].pruned_atoms > 0, "no atom used a pruned candidate set");
        assert_eq!(
            interp.cache_hits, 0,
            "the interpreter regime must not touch the atom cache"
        );
    }

    table.note(
        "Mixed workload: every tick applies a motion batch then a PRICE batch \
         over spatial, attribute-range and conjunctive continuous queries.  \
         The interpreter row re-walks each query AST per refresh; the \
         compiled row replays per-atom interval relations cached across \
         same-tick batches and invalidated per dependency set (a PRICE batch \
         re-derives only attribute atoms); the indexed row additionally \
         answers INSIDE and PRICE-range atoms from index-pruned candidate \
         sets (Section 4 position index + dynamic-attribute index, \
         maintained at tick boundaries).  Final displays are asserted \
         byte-identical across all regimes and candidate counts strictly \
         decreasing — the CI quick run is the smoke gate.",
    );
    table.mark_measured(&["time", "speedup vs interpreter"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_and_indexed_strictly_reduce_candidates() {
        // `run` itself asserts display equality and the strict candidate
        // reductions; here we re-check the table shape.
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        let interp = t.cell_f64(0, "candidates evaluated").unwrap();
        let compiled = t.cell_f64(1, "candidates evaluated").unwrap();
        let indexed = t.cell_f64(2, "candidates evaluated").unwrap();
        if most_obs::is_enabled() {
            assert!(compiled < interp, "compiled {compiled} vs interpreter {interp}");
            assert!(indexed < compiled, "indexed {indexed} vs compiled {compiled}");
            assert_eq!(t.cell_f64(0, "cache hits"), Some(0.0));
            assert!(t.cell_f64(1, "cache hits").unwrap() > 0.0);
            assert!(t.cell_f64(2, "pruned atoms").unwrap() > 0.0);
        }
    }
}
