//! E9 — the Section 4 index accelerating FTL query processing.
//!
//! Claim (§4): "The objective is to enable answering queries of the form
//! 'Retrieve the objects that are currently in the polygon P' without
//! examining all the objects" — here extended to the *future* queries of
//! Section 3: the evaluator prunes `INSIDE` atom enumeration to the index's
//! candidate set (answers asserted identical).

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_core::Database;
use most_ftl::Query;
use most_spatial::{Polygon, Rect};
use most_workload::cars::CarScenario;
use std::time::Instant;

/// Sweeps fleet sizes; the region covers a small fraction of the area so
/// most objects are prunable.
pub fn run(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[1_000, 4_000][..], &[2_000, 8_000, 32_000][..]);
    let mut table = Table::new(
        "E9",
        "FTL INSIDE atoms with index pruning vs full enumeration",
        &[
            "objects",
            "full enumeration",
            "index-pruned",
            "speedup",
            "candidates",
            "answers equal",
        ],
    );
    let q = Query::parse("RETRIEVE o WHERE Eventually within 400 INSIDE(o, P)")
        .expect("query parses");
    for &n in sizes {
        let scenario = CarScenario {
            count: n,
            area: n as f64, // constant density: region selectivity shrinks with n
            speed: (0.5, 2.0),
            mean_update_gap: 1e18,
            horizon: 500,
            seed: 3,
        };
        let plans = scenario.generate();
        let build = |index: bool| {
            let mut db = Database::new(500);
            db.add_region("P", Polygon::rectangle(-150.0, -150.0, 150.0, 150.0));
            scenario.populate(&mut db, &plans);
            if index {
                let r = 4.0 * n as f64;
                db.enable_spatial_index(Rect::new(-r, -r, r, r));
            }
            db
        };
        let mut plain_db = build(false);
        let t0 = Instant::now();
        let plain = plain_db.instantaneous(&q).expect("plain evaluation");
        let plain_time = t0.elapsed();
        let mut indexed_db = build(true);
        let candidates = {
            use most_ftl::EvalContext;
            indexed_db
                .current_context()
                .inside_candidates(indexed_db.region("P").expect("region"))
                .map(|c| c.len())
                .unwrap_or(0)
        };
        let t0 = Instant::now();
        let indexed = indexed_db.instantaneous(&q).expect("indexed evaluation");
        let indexed_time = t0.elapsed();
        table.row(vec![
            n.to_string(),
            fmt_duration(plain_time),
            fmt_duration(indexed_time),
            fmt_f64(plain_time.as_secs_f64() / indexed_time.as_secs_f64().max(1e-9)),
            candidates.to_string(),
            (plain == indexed).to_string(),
        ]);
    }
    table.note(
        "Claimed shape: full enumeration pays O(n) atom evaluations; the pruned \
         evaluator touches only the index's candidates (objects whose motion can \
         reach the region's bounding box within the horizon), so the speedup grows \
         with n at fixed region size.",
    );
    table.mark_measured(&["full enumeration", "index-pruned", "speedup"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_wins_and_matches() {
        let t = run(Scale::Quick);
        for r in 0..t.rows.len() {
            assert_eq!(t.cell(r, "answers equal"), Some("true"));
            let objects = t.cell_f64(r, "objects").unwrap();
            let candidates = t.cell_f64(r, "candidates").unwrap();
            assert!(
                candidates < objects / 2.0,
                "pruning should discard most objects ({candidates}/{objects})"
            );
        }
        let s0 = t.cell_f64(0, "speedup").unwrap();
        let s_last = t.cell_f64(t.rows.len() - 1, "speedup").unwrap();
        assert!(s_last > 1.0 && s_last >= s0 * 0.8, "speedups {s0} -> {s_last}");
    }
}
