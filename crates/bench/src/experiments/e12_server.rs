//! E12 — serving MOST over the wire: correctness under concurrency, then
//! closed-loop throughput.
//!
//! The paper positions MOST as the data model for *server-backed* moving
//! object applications (Section 1: travellers querying motels from a
//! moving car).  This experiment drives the `most-server` front-end:
//!
//! * **Phase A (correctness, the CI gate):** a driver client performs a
//!   seeded scripted mutation sequence while N subscriber clients each
//!   hold subscriptions to every continuous query.  Every subscriber must
//!   receive byte-for-byte the delta sequence a single-threaded oracle
//!   replay produces — zero mismatches, zero dropped frames, zero lag.
//!   These are asserted *in-run*; a failure aborts the experiment.
//! * **Phase B (throughput):** N closed-loop readers issue instantaneous
//!   queries against the live server while a driver applies update
//!   batches; afterwards a fresh client's answers are checked
//!   byte-identically against an oracle replay.  Observability is
//!   disabled around this phase so its nondeterministic interleaving
//!   never leaks into the metrics snapshot.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_server::load::{run_correctness, run_throughput, LoadSpec, ThroughputSpec};

/// Runs the server load experiment.
pub fn run(scale: Scale) -> Table {
    let mut table = Table::new(
        "E12",
        "query serving over the wire: oracle-checked subscriptions, then closed-loop throughput",
        &[
            "phase",
            "clients",
            "CQs",
            "ticks",
            "batch",
            "requests",
            "deltas/client",
            "dropped",
            "lagged",
            "time",
            "req/s",
            "p50",
            "p95",
        ],
    );

    // Phase A: subscriber-count x update-batch sweep, each cell checked
    // against the single-threaded oracle.
    let subscriber_counts: &[usize] = match scale {
        Scale::Quick => &[1, 2],
        Scale::Full => &[1, 2, 4, 8],
    };
    let batches: &[usize] = match scale {
        Scale::Quick => &[4, 12],
        Scale::Full => &[4, 16],
    };
    for &subscribers in subscriber_counts {
        for &batch in batches {
            let spec = LoadSpec {
                subscribers,
                queries: scale.pick(3, 6),
                objects: scale.pick(30, 60),
                area: 400.0,
                ticks: scale.pick(5, 12),
                batch,
                seed: 0xE12,
            };
            let outcome = run_correctness(&spec);
            // The CI smoke gate: any disagreement with the oracle, any
            // lost frame, any lag marker fails the whole experiment run.
            assert_eq!(outcome.mismatches, 0, "subscriber deltas diverge from oracle: {outcome:?}");
            assert_eq!(outcome.dropped, 0, "server dropped pushed frames: {outcome:?}");
            assert_eq!(outcome.lagged, 0, "a subscriber saw a Lagged marker: {outcome:?}");
            for &n in &outcome.received_deltas {
                assert_eq!(n, outcome.oracle_deltas, "lost or duplicated delta frames: {outcome:?}");
            }
            let reqs = outcome.requests;
            let secs = outcome.elapsed.as_secs_f64().max(1e-9);
            table.row(vec![
                "A correctness".into(),
                subscribers.to_string(),
                spec.queries.to_string(),
                spec.ticks.to_string(),
                batch.to_string(),
                reqs.to_string(),
                outcome.oracle_deltas.to_string(),
                outcome.dropped.to_string(),
                outcome.lagged.to_string(),
                fmt_duration(outcome.elapsed),
                fmt_f64(reqs as f64 / secs),
                "—".into(),
                "—".into(),
            ]);
        }
    }

    // Phase B: reader-count sweep.  Bracketed by a global observability
    // disable: concurrent readers interleave nondeterministically, and
    // their counters must not enter the deterministic metrics snapshot.
    let reader_counts: &[usize] = match scale {
        Scale::Quick => &[2],
        Scale::Full => &[2, 4, 8],
    };
    most_obs::set_enabled(false);
    for &readers in reader_counts {
        let spec = ThroughputSpec {
            readers,
            requests_per_reader: scale.pick(25, 300),
            update_batches: scale.pick(3, 20),
            load: LoadSpec {
                subscribers: 0,
                queries: scale.pick(3, 6),
                objects: scale.pick(30, 60),
                area: 400.0,
                ticks: 0,
                batch: 8,
                seed: 0xE12,
            },
        };
        let outcome = run_throughput(&spec);
        assert!(outcome.verified, "post-run answers diverge from the oracle replay");
        let secs = outcome.elapsed.as_secs_f64().max(1e-9);
        table.row(vec![
            "B throughput".into(),
            readers.to_string(),
            spec.load.queries.to_string(),
            spec.update_batches.to_string(),
            spec.load.batch.to_string(),
            outcome.requests.to_string(),
            "—".into(),
            "0".into(),
            "0".into(),
            fmt_duration(outcome.elapsed),
            fmt_f64(outcome.requests as f64 / secs),
            fmt_duration(outcome.p50),
            fmt_duration(outcome.p95),
        ]);
    }
    most_obs::set_enabled(true);

    table.note(
        "Phase A is the correctness gate: every subscriber's delta stream is compared \
         byte-for-byte against a single-threaded oracle replaying the identical seeded \
         script (mutation + fan-out serialise through one lock, and a session's FIFO \
         outbox makes any reply a fence for previously-enqueued pushes).  Zero \
         mismatches, zero dropped frames and zero lag markers are asserted in-run.  \
         Phase B measures closed-loop request throughput with concurrent readers and a \
         mutating driver; its final state is verified byte-identically against an \
         oracle replay.  Latency percentiles are client-observed.",
    );
    table.mark_measured(&["time", "req/s", "p50", "p95"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_its_own_gates() {
        // `run` asserts the oracle comparison internally; reaching the
        // table at all means the gate held.
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 2 * 2 + 1);
        // Phase A produced deltas and no losses.
        for row in t.rows.iter().take(4) {
            assert_eq!(row[7], "0", "dropped column");
            assert_eq!(row[8], "0", "lagged column");
            assert!(row[6].parse::<u64>().unwrap() > 0, "deltas/client column");
        }
    }
}
