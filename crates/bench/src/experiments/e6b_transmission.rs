//! E6b — delivering Answer(CQ) to a moving client (Section 5.2).
//!
//! Claim: "The choice between the immediate and delayed approaches depends
//! on ... the probability that an update ... can be propagated to M (i.e.
//! that M is not disconnected) ... \[and\] the frequency of updates to
//! Answer(CQ)": immediate is robust to later disconnection but wastes
//! bandwidth when the answer changes; delayed sends less but loses tuples
//! whose begin falls into an offline window.

use crate::table::fmt_f64;
use crate::{Scale, Table};
use most_mobile::transmission::{delayed, immediate, AnswerRow};
use most_mobile::Network;
use most_temporal::Interval;
use most_testkit::rng::Rng;

fn random_answer(n: usize, horizon: u64, rng: &mut Rng) -> Vec<AnswerRow> {
    (0..n as u64)
        .map(|id| {
            let b = rng.random_range(0..horizon - 20);
            let len = rng.random_range(5u64..60).min(horizon - b);
            (id, Interval::new(b, b + len))
        })
        .collect()
}

/// Sweeps disconnection fraction and client memory.
pub fn run(scale: Scale) -> Table {
    let horizon = 600u64;
    let tuples = scale.pick(40usize, 200usize);
    let mut table = Table::new(
        "E6b",
        "Answer(CQ) delivery to a moving client: immediate vs delayed",
        &[
            "offline fraction",
            "memory B",
            "approach",
            "messages",
            "bytes",
            "lost tuples",
            "display-error ticks",
        ],
    );
    for offline_frac in [0.0, 0.1, 0.3] {
        for memory_b in [8usize, 64] {
            let mut rng = Rng::seed_from_u64(17);
            let answer = random_answer(tuples, horizon, &mut rng);
            // Offline windows scattered over the horizon.
            let mk_net = |rng: &mut Rng| {
                let mut net = Network::new(0);
                let mut covered = 0u64;
                while (covered as f64) < offline_frac * horizon as f64 {
                    let from = rng.random_range(1..horizon - 10);
                    let len = rng.random_range(5u64..30);
                    net.add_offline_window(200, from, (from + len).min(horizon));
                    covered += len;
                }
                net
            };
            let mut rng_net = Rng::seed_from_u64(99);
            let mut net = mk_net(&mut rng_net);
            let ri = immediate(&mut net, 100, 200, &answer, &answer, memory_b, 0, horizon);
            table.row(vec![
                fmt_f64(offline_frac),
                memory_b.to_string(),
                "immediate".into(),
                ri.messages.to_string(),
                ri.bytes.to_string(),
                ri.lost.to_string(),
                ri.display_error_ticks.to_string(),
            ]);
            let mut rng_net = Rng::seed_from_u64(99);
            let mut net = mk_net(&mut rng_net);
            let rd = delayed(&mut net, 100, 200, &answer, &answer, 0, horizon);
            table.row(vec![
                fmt_f64(offline_frac),
                memory_b.to_string(),
                "delayed".into(),
                rd.messages.to_string(),
                rd.bytes.to_string(),
                rd.lost.to_string(),
                rd.display_error_ticks.to_string(),
            ]);
        }
    }
    table.note(
        "Claimed shape: with no disconnection both approaches display perfectly and \
         immediate needs ceil(n/B) messages vs one per tuple for delayed; as the \
         offline fraction grows, delayed loses tuples (error ticks grow) while \
         immediate — transmitted at t=0 while connected — stays exact.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_case_is_exact_for_both() {
        let t = run(Scale::Quick);
        // offline 0 rows come first (two memory settings × two approaches).
        for r in 0..4 {
            assert_eq!(t.cell(r, "display-error ticks"), Some("0"), "row {r}");
        }
    }

    #[test]
    fn delayed_degrades_with_disconnection() {
        let t = run(Scale::Quick);
        let err = |r: usize| t.cell_f64(r, "display-error ticks").unwrap();
        let approach = |r: usize| t.cell(r, "approach").unwrap().to_owned();
        // Find the 0.3-offline delayed rows and confirm nonzero error,
        // while immediate stays at zero.
        let mut saw_delayed_error = false;
        for r in 0..t.rows.len() {
            if t.cell(r, "offline fraction") == Some("0.3000") && approach(r) == "delayed" {
                saw_delayed_error |= err(r) > 0.0;
            }
            if approach(r) == "immediate" {
                assert_eq!(err(r), 0.0, "immediate row {r}");
            }
        }
        assert!(saw_delayed_error, "delayed should lose tuples at 30% offline");
    }

    #[test]
    fn memory_limits_drive_immediate_messages() {
        let t = run(Scale::Quick);
        // At offline 0: B=8 immediate needs more messages than B=64.
        let m8 = t.cell_f64(0, "messages").unwrap();
        let m64 = t.cell_f64(2, "messages").unwrap();
        assert!(m8 > m64);
    }
}
