//! Figure 1 / Section 2.3: the three query types diverge on one scenario.
//!
//! The paper's walk-through: an object whose `X.POSITION` changes as `5t`,
//! explicitly updated to `7t` after one time unit and to `10t` after
//! another; the query R = "retrieve the objects whose speed in the
//! direction of the X-axis doubles within 10 minutes".  Instantaneous and
//! continuous versions never retrieve the object; the persistent version
//! retrieves it at time 2.

use crate::Table;
use most_core::{Database, PersistentQuery};
use most_ftl::Query;
use most_spatial::{Point, Velocity};

/// Runs the walk-through and tabulates what each query type returns at
/// each wall-clock time.
pub fn run() -> Table {
    let query = Query::parse(
        "RETRIEVE o WHERE [x <- o.VX] Eventually within 10 (o.VX >= 2 * x)",
    )
    .expect("query R parses");

    let mut db = Database::new(100);
    let o = db.insert_moving_object("objects", Point::origin(), Velocity::new(5.0, 0.0));
    let cq = db.register_continuous(query.clone()).expect("register CQ");
    let mut pq = PersistentQuery::enter(&db, query.clone());

    let mut table = Table::new(
        "F1",
        "Figure 1 / §2.3 — instantaneous vs continuous vs persistent on query R",
        &["time", "event", "instantaneous", "continuous", "persistent"],
    );

    let mut record = |db: &mut Database, pq: &mut PersistentQuery, event: &str| {
        let t = db.now();
        let inst = db
            .instantaneous_now(&query)
            .expect("instantaneous evaluation");
        let cont = db.continuous_display(cq, t).expect("continuous display");
        let pers = pq.satisfied_now(db).expect("persistent evaluation");
        let show = |v: &Vec<Vec<most_dbms::value::Value>>| {
            if v.is_empty() {
                "∅".to_owned()
            } else {
                format!("{{o{}}}", v.len())
            }
        };
        table.row(vec![
            t.to_string(),
            event.to_owned(),
            show(&inst),
            show(&cont),
            show(&pers),
        ]);
    };

    record(&mut db, &mut pq, "enter; X.function = 5t");
    db.advance_clock(1);
    db.update_motion(o, Velocity::new(7.0, 0.0)).expect("update");
    record(&mut db, &mut pq, "update: function := 7t");
    db.advance_clock(1);
    db.update_motion(o, Velocity::new(10.0, 0.0)).expect("update");
    record(&mut db, &mut pq, "update: function := 10t (doubled from 5)");
    db.advance_clock(3);
    record(&mut db, &mut pq, "no further updates");

    table.note(
        "Paper §2.3: \"if we consider the query R as instantaneous or continuous o will \
         never be retrieved ... at time 2 this history reflects a change of the speed \
         from 5 to 10 within two minutes, thus o will be retrieved at that time\" — the \
         persistent column flips to {o1} exactly at time 2.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_walkthrough() {
        let t = run();
        // Instantaneous and continuous: empty at every recorded time.
        for row in 0..t.rows.len() {
            assert_eq!(t.cell(row, "instantaneous"), Some("∅"));
            assert_eq!(t.cell(row, "continuous"), Some("∅"));
        }
        // Persistent: empty before time 2, retrieved from time 2 onwards.
        assert_eq!(t.cell(0, "persistent"), Some("∅"));
        assert_eq!(t.cell(1, "persistent"), Some("∅"));
        assert_eq!(t.cell(2, "persistent"), Some("{o1}"));
        assert_eq!(t.cell(3, "persistent"), Some("{o1}"));
        assert_eq!(t.cell(2, "time"), Some("2"));
    }
}
