//! E3 — continuous queries: single evaluation vs per-tick re-evaluation.
//!
//! Claim (§1/§2.3): "Our query processing algorithm facilitates a single
//! evaluation of the query; reevaluation has to occur only if the motion
//! vector ... changes" — versus the strawman that re-issues the
//! instantaneous query at every clock tick.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_core::{Database, RefreshMode};
use most_ftl::Query;
use most_spatial::Polygon;
use most_workload::cars::{apply_due_updates, CarScenario};
use std::time::Instant;

/// Measures serving a continuous query over a window under both regimes.
pub fn run(scale: Scale) -> Table {
    let window = scale.pick(200u64, 1_000u64);
    let n_cars = scale.pick(30usize, 100usize);
    let mut table = Table::new(
        "E3",
        "continuous query service cost over a window (answer identical under both)",
        &[
            "window (ticks)",
            "updates",
            "regime",
            "evaluations",
            "time",
            "speedup vs per-tick",
        ],
    );
    for mean_gap in [f64::INFINITY, 400.0, 100.0] {
        let scenario = CarScenario {
            count: n_cars,
            area: 400.0,
            speed: (0.5, 2.0),
            mean_update_gap: if mean_gap.is_finite() { mean_gap } else { 1e18 },
            horizon: window,
            seed: 42,
        };
        let plans = scenario.generate();
        let query =
            Query::parse("RETRIEVE o WHERE INSIDE(o, P)").expect("query parses");
        let region = Polygon::rectangle(-100.0, -100.0, 100.0, 100.0);

        // Per-tick baseline: re-issue the instantaneous query every tick.
        let mut db = Database::new(window * 2);
        db.add_region("P", region.clone());
        let ids = scenario.populate(&mut db, &plans);
        let t0 = Instant::now();
        let mut displays_naive = Vec::with_capacity(window as usize);
        let mut updates = 0u64;
        for t in 1..=window {
            db.advance_clock(1);
            updates += apply_due_updates(&mut db, &ids, &plans, t - 1, t) as u64;
            displays_naive.push(db.instantaneous_now(&query).expect("instantaneous"));
        }
        let naive_time = t0.elapsed();
        let naive_evals = db.stats.instantaneous_queries;
        table.row(vec![
            window.to_string(),
            updates.to_string(),
            "re-issue per tick".into(),
            naive_evals.to_string(),
            fmt_duration(naive_time),
            "1".into(),
        ]);

        // MOST regimes: materialized answer; full vs incremental refresh.
        for (label, mode) in [
            ("MOST (full refresh)", RefreshMode::Full),
            ("MOST (incremental refresh)", RefreshMode::Incremental),
        ] {
            let mut db = Database::new(window * 2);
            db.set_refresh_mode(mode);
            db.add_region("P", region.clone());
            let ids = scenario.populate(&mut db, &plans);
            let t0 = Instant::now();
            let cq = db.register_continuous(query.clone()).expect("register");
            let mut displays_most = Vec::with_capacity(window as usize);
            for t in 1..=window {
                db.advance_clock(1);
                apply_due_updates(&mut db, &ids, &plans, t - 1, t);
                displays_most.push(db.continuous_display(cq, t).expect("display"));
            }
            let most_time = t0.elapsed();
            let most_evals = db.continuous_evaluations() + db.incremental_refreshes();
            assert_eq!(displays_most, displays_naive, "{label} must agree with per-tick");
            table.row(vec![
                window.to_string(),
                updates.to_string(),
                label.into(),
                most_evals.to_string(),
                fmt_duration(most_time),
                fmt_f64(naive_time.as_secs_f64() / most_time.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    table.note(
        "Claimed shape: MOST performs at most 1 + (#updates) evaluations regardless \
         of the window length; per-tick re-evaluation performs one per tick.  The \
         evaluations column counts answer-CHANGING evaluations (a refresh whose \
         merged answer is byte-identical past the boundary is a no-op and no longer \
         miscounts the metric), so the full-refresh row can sit well under \
         1 + #updates.  All displays are asserted identical tick by tick.  The \
         incremental regime (extension) re-evaluates only the changed object's \
         instantiations, pushing the crossover far beyond one update per tick.",
    );
    table.mark_measured(&["time", "speedup vs per-tick"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_evaluates_once_plus_updates() {
        let t = run(Scale::Quick);
        // Rows come in triples: per-tick, MOST full, MOST incremental.
        for chunk in t.rows.chunks(3) {
            let window: f64 = chunk[0][0].parse().unwrap();
            let updates: f64 = chunk[0][1].parse().unwrap();
            let naive_evals: f64 = chunk[0][3].parse().unwrap();
            let full_evals: f64 = chunk[1][3].parse().unwrap();
            let incr_evals: f64 = chunk[2][3].parse().unwrap();
            assert_eq!(naive_evals, window);
            // `evaluations` counts answer-changing evaluations only: at most
            // one per update on top of the registration evaluation.
            assert!(full_evals >= 1.0);
            assert!(full_evals <= 1.0 + updates);
            assert!(incr_evals <= 1.0 + updates);
            assert!(full_evals <= naive_evals + updates);
        }
        // With no updates at all, exactly one evaluation served everything.
        assert_eq!(t.cell_f64(1, "evaluations"), Some(1.0));
    }
}
