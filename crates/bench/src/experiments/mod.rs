//! The experiments, one module per DESIGN.md §3 row.

pub mod e1_update_cost;
pub mod e2_index_access;
pub mod e3_continuous;
pub mod e4_ftl;
pub mod e5_rewrite;
pub mod e6_distributed;
pub mod e6b_transmission;
pub mod e7_index_ablation;
pub mod e8_rebuild_period;
pub mod e9_index_pruning;
pub mod e10_refresh;
pub mod e11_reliability;
pub mod fig1_query_types;
pub mod micro;

use crate::{Scale, Table};

/// Runs every experiment, in report order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        fig1_query_types::run(),
        e1_update_cost::run(scale),
        e2_index_access::run(scale),
        e3_continuous::run(scale),
        e4_ftl::run(scale),
        e4_ftl::run_ablation(scale),
        e5_rewrite::run(scale),
        e6_distributed::run(scale),
        e6b_transmission::run(scale),
        e7_index_ablation::run(scale),
        e8_rebuild_period::run(scale),
        e9_index_pruning::run(scale),
        e10_refresh::run(scale),
        e11_reliability::run(scale),
        micro::run(scale),
    ]
}

/// Runs one experiment by id (`fig1`, `e1` ... `e11`); `None` for an
/// unknown id.
pub fn run_one(id: &str, scale: Scale) -> Option<Table> {
    Some(match id.to_ascii_lowercase().as_str() {
        "fig1" => fig1_query_types::run(),
        "e1" => e1_update_cost::run(scale),
        "e2" => e2_index_access::run(scale),
        "e3" => e3_continuous::run(scale),
        "e4" => e4_ftl::run(scale),
        "e4b" => e4_ftl::run_ablation(scale),
        "e5" => e5_rewrite::run(scale),
        "e6" => e6_distributed::run(scale),
        "e6b" => e6b_transmission::run(scale),
        "e7" => e7_index_ablation::run(scale),
        "e8" => e8_rebuild_period::run(scale),
        "e9" => e9_index_pruning::run(scale),
        "e10" => e10_refresh::run(scale),
        "e11" => e11_reliability::run(scale),
        "micro" => micro::run(scale),
        _ => return None,
    })
}
