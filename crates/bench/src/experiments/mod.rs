//! The experiments, one module per DESIGN.md §3 row.

pub mod e1_update_cost;
pub mod e2_index_access;
pub mod e3_continuous;
pub mod e4_ftl;
pub mod e5_rewrite;
pub mod e6_distributed;
pub mod e6b_transmission;
pub mod e7_index_ablation;
pub mod e8_rebuild_period;
pub mod e9_index_pruning;
pub mod e10_refresh;
pub mod e11_reliability;
pub mod e12_server;
pub mod e13_epochs;
pub mod e14_plans;
pub mod e15_durability;
pub mod e16_sharding;
pub mod e17_history;
pub mod fig1_query_types;
pub mod micro;

use crate::{Scale, Table};

/// Runs an experiment with a clean observability registry and snapshots
/// the counters into the table's deterministic `metrics` block.
///
/// Counter values are pure functions of the workload (seeded, no
/// wall-clock-derived counts), so the snapshot is byte-identical across
/// same-seed runs — CI diffs it.  Histograms contribute only their
/// sample *counts*, never timings.
fn with_metrics(run: impl FnOnce() -> Table) -> Table {
    most_obs::reset();
    let mut t = run();
    t.metrics = most_obs::metrics_kv();
    t
}

/// Like [`with_metrics`] but drops `.peak` gauges from the snapshot.
///
/// Peak gauges (high-water marks like `server.outbox.peak`) depend on
/// thread scheduling even when every *count* is deterministic, so
/// experiments that exercise real concurrency (E12) exclude them from the
/// CI-diffed block.
fn with_filtered_metrics(run: impl FnOnce() -> Table) -> Table {
    let mut t = with_metrics(run);
    t.metrics.retain(|(k, _)| !k.ends_with(".peak"));
    t
}

/// Runs every experiment, in report order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        with_metrics(fig1_query_types::run),
        with_metrics(|| e1_update_cost::run(scale)),
        with_metrics(|| e2_index_access::run(scale)),
        with_metrics(|| e3_continuous::run(scale)),
        with_metrics(|| e4_ftl::run(scale)),
        with_metrics(|| e4_ftl::run_ablation(scale)),
        with_metrics(|| e5_rewrite::run(scale)),
        with_metrics(|| e6_distributed::run(scale)),
        with_metrics(|| e6b_transmission::run(scale)),
        with_metrics(|| e7_index_ablation::run(scale)),
        with_metrics(|| e8_rebuild_period::run(scale)),
        with_metrics(|| e9_index_pruning::run(scale)),
        with_metrics(|| e10_refresh::run(scale)),
        with_metrics(|| e11_reliability::run(scale)),
        with_filtered_metrics(|| e12_server::run(scale)),
        with_filtered_metrics(|| e13_epochs::run(scale)),
        with_metrics(|| e14_plans::run(scale)),
        with_filtered_metrics(|| e15_durability::run(scale)),
        with_filtered_metrics(|| e16_sharding::run(scale)),
        with_filtered_metrics(|| e17_history::run(scale)),
        with_metrics(|| micro::run(scale)),
    ]
}

/// Runs one experiment by id (`fig1`, `e1` ... `e17`); `None` for an
/// unknown id.
pub fn run_one(id: &str, scale: Scale) -> Option<Table> {
    Some(match id.to_ascii_lowercase().as_str() {
        "fig1" => with_metrics(fig1_query_types::run),
        "e1" => with_metrics(|| e1_update_cost::run(scale)),
        "e2" => with_metrics(|| e2_index_access::run(scale)),
        "e3" => with_metrics(|| e3_continuous::run(scale)),
        "e4" => with_metrics(|| e4_ftl::run(scale)),
        "e4b" => with_metrics(|| e4_ftl::run_ablation(scale)),
        "e5" => with_metrics(|| e5_rewrite::run(scale)),
        "e6" => with_metrics(|| e6_distributed::run(scale)),
        "e6b" => with_metrics(|| e6b_transmission::run(scale)),
        "e7" => with_metrics(|| e7_index_ablation::run(scale)),
        "e8" => with_metrics(|| e8_rebuild_period::run(scale)),
        "e9" => with_metrics(|| e9_index_pruning::run(scale)),
        "e10" => with_metrics(|| e10_refresh::run(scale)),
        "e11" => with_metrics(|| e11_reliability::run(scale)),
        "e12" => with_filtered_metrics(|| e12_server::run(scale)),
        "e13" => with_filtered_metrics(|| e13_epochs::run(scale)),
        "e14" => with_metrics(|| e14_plans::run(scale)),
        "e15" => with_filtered_metrics(|| e15_durability::run(scale)),
        "e16" => with_filtered_metrics(|| e16_sharding::run(scale)),
        "e17" => with_filtered_metrics(|| e17_history::run(scale)),
        "micro" => with_metrics(|| micro::run(scale)),
        _ => return None,
    })
}
