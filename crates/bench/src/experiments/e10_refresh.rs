//! E10 — the continuous-query refresh engine: serial-full vs
//! dependency-filtered vs filtered + parallel refresh.
//!
//! Claim under test (§2.3): `Answer(CQ)` "has to be reevaluated when an
//! update occurs **that may change the set of tuples**".  The paper-literal
//! strategy ignores the qualifier and re-evaluates every registered query
//! on every update; the refresh engine makes the qualifier operational
//! (static dependency sets, `most-core::deps`) and shards the surviving
//! evaluations over `std::thread::scope` workers (`most-core::refresh`).
//!
//! The workload is *mixed-attribute* on purpose: motion batches and
//! PRICE batches alternate, spatial and attribute queries are registered
//! half and half, so roughly half of all (update-batch × query) pairs are
//! irrelevant and filterable.  Every regime must produce identical final
//! displays — asserted in [`run`] itself, so the CI smoke gate
//! (`experiments e10 --quick`) fails loudly if filtering ever changes an
//! answer or performs more evaluations than the full strategy.

use crate::table::{fmt_duration, fmt_f64};
use crate::{Scale, Table};
use most_core::{Database, UpdateOp};
use most_dbms::value::Value;
use most_ftl::Query;
use most_spatial::{Polygon, Velocity};
use most_workload::cars::CarScenario;
use std::time::{Duration, Instant};

/// One regime's outcome over the shared update script.
struct Outcome {
    /// Final display of every continuous query (soundness witness).
    displays: Vec<Vec<Vec<Value>>>,
    /// Refresh evaluations actually performed (answer-changing + no-op),
    /// excluding the per-query registration evaluation.
    evals: u64,
    /// Refreshes skipped by dependency filtering.
    skipped: u64,
    /// Explicit updates applied.
    updates: u64,
    /// Wall-clock for driving the whole window.
    time: Duration,
}

/// The deterministic update script: odd ticks send a motion batch, even
/// ticks a PRICE batch, so dependency filtering has something to filter.
fn drive(
    n_objects: usize,
    n_queries: usize,
    ticks: u64,
    batch: usize,
    filtering: bool,
    workers: usize,
) -> Outcome {
    let scenario = CarScenario {
        count: n_objects,
        area: 400.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18, // scripted updates below, none from the plan
        horizon: ticks,
        seed: 42,
    };
    let plans = scenario.generate();
    let mut db = Database::new(ticks + 200);
    db.set_refresh_filtering(filtering);
    db.set_refresh_workers(workers);
    for (i, rect) in region_grid().into_iter().enumerate() {
        db.add_region(format!("P{i}"), rect);
    }
    let ids = scenario.populate(&mut db, &plans);
    let cqs: Vec<u64> = (0..n_queries)
        .map(|q| {
            let src = if q % 2 == 0 {
                // Position-dependent: relevant to motion batches only.
                format!("RETRIEVE o WHERE Eventually within 100 INSIDE(o, P{})", q / 2 % 8)
            } else {
                // Attribute-dependent: relevant to PRICE batches only.
                format!("RETRIEVE o WHERE o.PRICE <= {}", 60 + (q * 13) % 130)
            };
            db.register_continuous(Query::parse(&src).expect("query parses"))
                .expect("register")
        })
        .collect();
    let evals_at_register = db.continuous_evaluations() + db.noop_refreshes();

    let t0 = Instant::now();
    let mut updates = 0u64;
    for t in 1..=ticks {
        db.advance_clock(1);
        let ops: Vec<UpdateOp> = (0..batch)
            .map(|j| {
                let i = ((t as usize) * 17 + j * 31) % ids.len();
                if t % 2 == 1 {
                    // Deterministic, answer-changing velocity tweak.
                    let phase = ((t as usize + j + i) % 5) as f64;
                    UpdateOp::Motion {
                        id: ids[i],
                        velocity: Velocity::new(0.4 * phase - 0.8, 0.3 * phase - 0.6),
                    }
                } else {
                    let price = 40.0 + (((t as usize) * 13 + i * 7) % 160) as f64;
                    UpdateOp::Static {
                        id: ids[i],
                        attr: "PRICE".into(),
                        value: Value::from(price),
                    }
                }
            })
            .collect();
        updates += ops.len() as u64;
        db.apply_updates(&ops).expect("scripted updates are valid");
    }
    let time = t0.elapsed();

    let now = db.now();
    let displays = cqs
        .iter()
        .map(|&cq| db.continuous_display(cq, now).expect("display"))
        .collect();
    Outcome {
        displays,
        evals: db.continuous_evaluations() + db.noop_refreshes() - evals_at_register,
        skipped: db.skipped_refreshes(),
        updates,
        time,
    }
}

/// Eight region rectangles the spatial queries cycle through.
fn region_grid() -> Vec<Polygon> {
    (0..8)
        .map(|i| {
            let x0 = -400.0 + 100.0 * i as f64;
            Polygon::rectangle(x0, -120.0, x0 + 140.0, 120.0)
        })
        .collect()
}

/// Measures the three refresh strategies on one mixed-attribute workload.
pub fn run(scale: Scale) -> Table {
    let n_objects = scale.pick(40usize, 1_000usize);
    let n_queries = scale.pick(8usize, 64usize);
    let ticks = scale.pick(8u64, 24u64);
    let batch = scale.pick(4usize, 32usize);
    let mut table = Table::new(
        "E10",
        "refresh engine: dependency filtering and parallel re-evaluation \
         (final displays identical under every regime)",
        &[
            "objects",
            "CQs",
            "updates",
            "regime",
            "evaluations",
            "skipped",
            "time",
            "speedup vs serial-full",
        ],
    );
    let regimes: Vec<(String, bool, usize)> = std::iter::once(("full refresh (serial)".to_owned(), false, 1))
        .chain(std::iter::once(("filtered (serial)".to_owned(), true, 1)))
        .chain([2usize, 4, 8].into_iter().map(|w| (format!("filtered + parallel w{w}"), true, w)))
        .collect();
    let mut outcomes: Vec<Outcome> = Vec::new();
    for (label, filtering, workers) in &regimes {
        let out = drive(n_objects, n_queries, ticks, batch, *filtering, *workers);
        table.row(vec![
            n_objects.to_string(),
            n_queries.to_string(),
            out.updates.to_string(),
            label.clone(),
            out.evals.to_string(),
            out.skipped.to_string(),
            fmt_duration(out.time),
            fmt_f64(outcomes.first().map_or(1.0, |full: &Outcome| {
                full.time.as_secs_f64() / out.time.as_secs_f64().max(1e-9)
            })),
        ]);
        outcomes.push(out);
    }

    // The perf smoke gate: these hold on every run, including
    // `experiments e10 --quick` in CI.
    let full = &outcomes[0];
    for (i, out) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(
            out.displays, full.displays,
            "{}: filtered/parallel refresh changed an answer",
            regimes[i].0
        );
        assert!(
            out.evals < full.evals,
            "{}: filtered refresh must perform strictly fewer evaluations \
             ({} vs {}) on the mixed-attribute workload",
            regimes[i].0,
            out.evals,
            full.evals
        );
        assert!(out.skipped > 0, "{}: nothing was filtered", regimes[i].0);
        assert_eq!(
            out.evals, outcomes[1].evals,
            "worker count must not change which queries re-evaluate"
        );
    }
    assert_eq!(full.skipped, 0, "unfiltered regime must skip nothing");

    table.note(
        "Mixed-attribute workload: motion batches (odd ticks) and PRICE batches \
         (even ticks) over half-spatial / half-attribute continuous queries, \
         applied through the batched SharedDatabase-style apply_updates entry \
         point (one refresh pass per batch).  Dependency filtering skips every \
         (batch × query) pair outside the query's statically-extracted DepSet; \
         the parallel rows shard the surviving evaluations over \
         std::thread::scope workers.  Final displays are asserted identical \
         across all regimes, and the filtered path is asserted to perform \
         strictly fewer evaluations than the full path — the CI quick run is \
         the perf smoke gate.  Wall-clock speedups require a multi-core host.",
    );
    table.mark_measured(&["time", "speedup vs serial-full"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtered_strictly_beats_full_on_evaluations() {
        // `run` itself asserts display equality, strict evaluation savings,
        // and worker-count invariance; here we re-check the table shape.
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 5);
        let full = t.cell_f64(0, "evaluations").unwrap();
        let filtered = t.cell_f64(1, "evaluations").unwrap();
        assert!(filtered < full, "filtered {filtered} vs full {full}");
        assert_eq!(t.cell_f64(0, "skipped"), Some(0.0));
        assert!(t.cell_f64(1, "skipped").unwrap() > 0.0);
        // Parallel rows evaluate exactly as many times as filtered-serial.
        for row in 2..5 {
            assert_eq!(t.cell_f64(row, "evaluations"), Some(filtered));
        }
    }
}
