//! E11 — reliability under injected faults: raw vs reliable transport.
//!
//! Section 5.2's delivery discussion assumes messages either arrive after
//! a fixed latency or are lost to disconnection; real wireless links also
//! lose, duplicate and reorder packets while both ends are "connected".
//! This experiment injects seeded probabilistic loss (a [`FaultPlan`]) into
//! the two distributed pipelines — delayed `Answer(CQ)` delivery to a
//! moving client, and one-shot query-shipped object queries — and measures
//! what the reliable transport (acks + retransmission + store-and-forward)
//! buys back, and at what traffic overhead.

use crate::table::fmt_f64;
use crate::{Scale, Table};
use most_mobile::strategy::{object_query_over, ObjectPredicate, Shipping};
use most_mobile::transmission::{delayed_over, AnswerRow};
use most_mobile::{FaultPlan, FleetSim, Network, RetryPolicy, Transport};
use most_spatial::Point;
use most_temporal::Interval;
use most_testkit::rng::Rng;
use most_workload::cars::CarScenario;

const SERVER: u64 = 100;
const CLIENT: u64 = 200;

/// A fast retry policy (short backoff, never abandons) so retransmissions
/// complete within the scoring horizon.
fn policy() -> RetryPolicy {
    RetryPolicy { base_backoff: 2, max_backoff: 8, ..RetryPolicy::unbounded() }
}

fn random_answer(n: usize, horizon: u64, rng: &mut Rng) -> Vec<AnswerRow> {
    (0..n as u64)
        .map(|id| {
            let b = rng.random_range(0..horizon - 20);
            let len = rng.random_range(5u64..60).min(horizon - b);
            (id, Interval::new(b, b + len))
        })
        .collect()
}

/// A network with the experiment's fixed client offline windows, plus a
/// seeded loss plan when `loss > 0`.
fn delivery_net(horizon: u64, loss: f64) -> Network {
    let mut net = Network::new(1);
    // Two fixed disconnection windows: delayed-mode tuples whose begin
    // falls inside are lost raw but stored-and-forwarded reliably.
    net.add_offline_window(CLIENT, horizon / 4, horizon / 4 + 30);
    net.add_offline_window(CLIENT, horizon / 2, horizon / 2 + 25);
    if loss > 0.0 {
        net.set_faults(FaultPlan::new(11).with_loss(loss));
    }
    net
}

fn fleet(n: usize, horizon: u64, seed: u64) -> FleetSim {
    let scenario = CarScenario {
        count: n,
        area: 400.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18,
        horizon,
        seed,
    };
    let mut sim = FleetSim::new();
    sim.add_node(0, Point::origin(), most_spatial::Velocity::zero(), 0.0, vec![]);
    for (i, p) in scenario.generate().into_iter().enumerate() {
        sim.add_node(i as u64 + 1, p.start, p.velocity, p.price, p.updates);
    }
    sim
}

/// Loss sweep × transport for both pipelines; in-run assertions double as
/// the CI smoke gate (`experiments -- e11 --quick`).
pub fn run(scale: Scale) -> Table {
    let horizon = scale.pick(300u64, 600u64);
    let tuples = scale.pick(30usize, 120usize);
    let nodes = scale.pick(20usize, 60usize);
    let until = horizon + 120; // slack so retransmissions can land
    let mut table = Table::new(
        "E11",
        "fault injection: raw vs reliable transport (loss sweep)",
        &[
            "scenario",
            "loss",
            "transport",
            "messages",
            "bytes",
            "undelivered",
            "display-error ticks",
            "retransmissions",
        ],
    );

    // Part 1: delayed Answer(CQ) delivery to a moving client.
    let mut rng = Rng::seed_from_u64(17);
    let answer = random_answer(tuples, horizon, &mut rng);
    for loss in [0.0, 0.1, 0.3] {
        let mut raw = None;
        for transport in [Transport::Raw, Transport::Reliable(policy())] {
            let mut net = delivery_net(horizon, loss);
            let r = delayed_over(&mut net, transport, SERVER, CLIENT, &answer, &answer, 0, until);
            let label = match transport {
                Transport::Raw => "raw",
                Transport::Reliable(_) => "reliable",
            };
            table.row(vec![
                "Answer(CQ) delayed".into(),
                fmt_f64(loss),
                label.into(),
                r.messages.to_string(),
                r.bytes.to_string(),
                r.lost.to_string(),
                r.display_error_ticks.to_string(),
                r.retransmissions.to_string(),
            ]);
            match transport {
                Transport::Raw => {
                    if loss >= 0.1 {
                        assert!(r.lost > 0, "raw at {loss} loss must drop tuples");
                        assert!(r.display_error_ticks > 0, "raw at {loss} loss must err");
                    }
                    raw = Some(r);
                }
                Transport::Reliable(_) => {
                    let raw = raw.as_ref().expect("raw ran first");
                    assert_eq!(r.lost, 0, "reliable delivery must be lossless");
                    assert!(
                        r.display_error_ticks <= raw.display_error_ticks,
                        "reliable must not err more than raw"
                    );
                    if loss == 0.1 {
                        assert!(
                            r.bytes <= 3 * raw.bytes,
                            "reliability overhead {} > 3x raw {} at 10% loss",
                            r.bytes,
                            raw.bytes
                        );
                    }
                }
            }
        }
    }

    // Part 2: one-shot query shipping over a lossy network, with explicit
    // partial-answer completeness.
    let sim = fleet(nodes, horizon, 1);
    let pred = ObjectPredicate::ReachesPointWithin {
        target: Point::origin(),
        radius: 50.0,
        within: horizon,
    };
    for loss in [0.0, 0.1, 0.3] {
        for transport in [Transport::Raw, Transport::Reliable(policy())] {
            let mut net = Network::new(1);
            if loss > 0.0 {
                net.set_faults(FaultPlan::new(7).with_loss(loss));
            }
            let before = net.stats;
            let o = object_query_over(&sim, &mut net, 0, &pred, Shipping::Query, transport, 150);
            let label = match transport {
                Transport::Raw => "raw",
                Transport::Reliable(_) => "reliable",
            };
            table.row(vec![
                "object query (QS)".into(),
                fmt_f64(loss),
                label.into(),
                (net.stats.messages - before.messages).to_string(),
                (net.stats.bytes - before.bytes).to_string(),
                o.missing.len().to_string(),
                "-".into(),
                o.retransmissions.to_string(),
            ]);
            match transport {
                Transport::Raw => {
                    if loss >= 0.3 {
                        assert!(!o.complete, "raw at {loss} loss must be incomplete");
                    }
                }
                Transport::Reliable(_) => {
                    assert!(o.complete, "reliable query must complete at {loss} loss");
                }
            }
        }
    }

    table.note(
        "Claimed shape: raw transport at >=10% loss drops answer tuples (nonzero \
         display error) and leaves object queries incomplete at 30% loss; the \
         reliable transport delivers everything (undelivered = 0, queries \
         complete) at the cost of retransmissions and acks, staying within 3x \
         raw bytes at 10% loss.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery_rows(t: &Table) -> Vec<usize> {
        (0..t.rows.len()).filter(|&r| t.cell(r, "scenario") == Some("Answer(CQ) delayed")).collect()
    }

    #[test]
    fn reliable_rows_are_lossless() {
        let t = run(Scale::Quick);
        for r in 0..t.rows.len() {
            if t.cell(r, "transport") == Some("reliable") {
                assert_eq!(t.cell(r, "undelivered"), Some("0"), "row {r}");
            }
        }
    }

    #[test]
    fn raw_display_error_grows_with_loss_and_overhead_is_bounded() {
        let t = run(Scale::Quick);
        let rows = delivery_rows(&t);
        // Rows come in (raw, reliable) pairs per loss level.
        let err = |r: usize| t.cell_f64(r, "display-error ticks").unwrap();
        assert!(err(rows[4]) > err(rows[0]), "raw error must grow with loss");
        let raw_bytes = t.cell_f64(rows[2], "bytes").unwrap();
        let rel_bytes = t.cell_f64(rows[3], "bytes").unwrap();
        assert!(rel_bytes <= 3.0 * raw_bytes, "overhead {rel_bytes} > 3x {raw_bytes}");
        let retrans = t.cell_f64(rows[3], "retransmissions").unwrap();
        assert!(retrans > 0.0, "10% loss must force retransmissions");
    }
}
