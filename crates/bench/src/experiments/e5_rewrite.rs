//! E5 — the 2^k blow-up of the MOST-on-DBMS rewrite.
//!
//! Claim (§5.1): "if the original query has k atoms referring to a dynamic
//! variable then, in the worst case, this might mean evaluating up to 2^k
//! queries that do not contain dynamic variables.  However, if k is small
//! this may not be a serious problem."

use crate::table::fmt_duration;
use crate::{Scale, Table};
use most_core::rewrite::{MostDbmsLayer, MovingTableDef};
use most_dbms::expr::{CmpOp, Expr};
use most_dbms::query::SelectQuery;
use most_dbms::schema::ColumnType;
use most_dbms::value::Value;
use most_testkit::rng::Rng;
use std::time::Instant;

/// Builds a cars table with `n` rows and `attrs` dynamic attributes.
fn build_layer(n: usize, attrs: usize, seed: u64) -> MostDbmsLayer {
    let mut layer = MostDbmsLayer::new();
    layer
        .create_table(MovingTableDef {
            name: "cars".into(),
            static_columns: vec![
                ("id".into(), ColumnType::Id),
                ("price".into(), ColumnType::Float),
            ],
            dynamic_attrs: (0..attrs).map(|i| format!("A{i}")).collect(),
        })
        .expect("create table");
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..n as u64 {
        let dynamics = (0..attrs)
            .map(|_| {
                (
                    rng.random_range(0.0..1000.0),
                    0,
                    rng.random_range(-2.0..2.0),
                )
            })
            .collect();
        layer
            .insert(
                "cars",
                vec![Value::Id(i), rng.random_range(40.0..200.0).into()],
                dynamics,
            )
            .expect("insert");
    }
    layer
}

/// Sweeps the number of dynamic atoms `k` in the WHERE clause.
pub fn run(scale: Scale) -> Table {
    let n = scale.pick(500usize, 2_000usize);
    let ks: &[usize] = scale.pick(&[1, 2, 3, 4, 6][..], &[1, 2, 3, 4, 6, 8, 10][..]);
    let max_k = *ks.iter().max().expect("non-empty ks");
    let layer = build_layer(n, max_k, 3);
    let mut table = Table::new(
        "E5",
        "MOST-on-DBMS rewrite: subqueries and latency vs dynamic atoms k",
        &["k (dynamic atoms)", "subqueries (2^k)", "host tuples scanned", "latency", "result rows", "latency/subquery"],
    );
    for &k in ks {
        // WHERE A0 in [200,800] band via one atom per attribute.
        let mut clause = Expr::cmp(CmpOp::Le, Expr::col("price"), Expr::val(1e9));
        for i in 0..k {
            clause = clause.and(Expr::cmp(
                CmpOp::Ge,
                Expr::col(format!("A{i}")),
                Expr::val(200.0),
            ));
        }
        let q = SelectQuery::from_table("cars").column("id").filter(clause);
        let t0 = Instant::now();
        let (rs, stats) = layer.query(&q, 50).expect("rewrite query");
        let dt = t0.elapsed();
        table.row(vec![
            k.to_string(),
            stats.subqueries.to_string(),
            stats.tuples_scanned.to_string(),
            fmt_duration(dt),
            rs.len().to_string(),
            fmt_duration(dt / stats.subqueries.max(1) as u32),
        ]);
        assert_eq!(stats.dynamic_atoms as usize, k);
    }
    table.note(
        "Claimed shape: subqueries double with every added dynamic atom (2^k), the \
         dominant latency term; per-subquery cost stays flat.",
    );
    table.note(format!("table size n = {n}"));
    table.mark_measured(&["latency", "latency/subquery"]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subqueries_double_per_atom() {
        let t = run(Scale::Quick);
        let mut prev = 0.5;
        for r in 0..t.rows.len() {
            let k = t.cell_f64(r, "k (dynamic atoms)").unwrap();
            let subq = t.cell_f64(r, "subqueries (2^k)").unwrap();
            assert_eq!(subq, 2f64.powf(k), "k = {k}");
            assert!(subq > prev);
            prev = subq;
        }
    }

    #[test]
    fn rewrite_results_match_direct_evaluation() {
        // Cross-check the rewrite against a direct scan of current values.
        let layer = build_layer(200, 2, 5);
        let q = SelectQuery::from_table("cars").column("id").filter(
            Expr::cmp(CmpOp::Ge, Expr::col("A0"), Expr::val(300.0))
                .and(Expr::cmp(CmpOp::Le, Expr::col("A1"), Expr::val(700.0))),
        );
        let now = 80;
        let (rs, _) = layer.query(&q, now).expect("query");
        // Direct: read physical table and compute.
        let table = layer.catalog().table("cars").expect("table");
        let s = table.schema();
        let (a0v, a0t, a0f) = (
            s.index_of("A0_value").unwrap(),
            s.index_of("A0_updatetime").unwrap(),
            s.index_of("A0_function").unwrap(),
        );
        let (a1v, a1t, a1f) = (
            s.index_of("A1_value").unwrap(),
            s.index_of("A1_updatetime").unwrap(),
            s.index_of("A1_function").unwrap(),
        );
        let mut want: Vec<Value> = table
            .rows()
            .iter()
            .filter(|row| {
                let val = |v: usize, t: usize, f: usize| {
                    row.get(v).unwrap().as_f64().unwrap()
                        + row.get(f).unwrap().as_f64().unwrap()
                            * (now as f64 - row.get(t).unwrap().as_f64().unwrap())
                };
                val(a0v, a0t, a0f) >= 300.0 && val(a1v, a1t, a1f) <= 700.0
            })
            .map(|row| row.get(0).unwrap().clone())
            .collect();
        want.sort();
        let mut got: Vec<Value> = rs.rows.iter().map(|r| r.get(0).unwrap().clone()).collect();
        got.sort();
        assert_eq!(got, want);
    }
}
