//! Observability must be *observationally* inert: running an experiment
//! with the metrics registry enabled and with it runtime-disabled must
//! produce byte-identical answers, and the counters it does collect must
//! satisfy the refresh-pass conservation law.
//!
//! Everything lives in one `#[test]` because `most_obs` is a
//! process-global registry: concurrent test threads toggling
//! `set_enabled` would race each other.

use most_bench::experiments::run_one;
use most_bench::Scale;
use most_testkit::ser::to_json_string;

/// One experiment run reduced to its deterministic answer content:
/// measured wall-clock cells blanked, the metrics snapshot dropped
/// (it is *supposed* to differ between enabled and disabled runs).
fn answers_only(id: &str) -> String {
    let mut t = run_one(id, Scale::Quick).expect("known experiment id");
    t.stabilize();
    t.metrics.clear();
    to_json_string(&t).expect("table serializes")
}

#[test]
fn instrumentation_is_observationally_inert_and_counters_conserve() {
    // E4 exercises the FTL evaluation pipeline, E10 the continuous-query
    // refresh engine, E15 the WAL/recovery/replication path, and E17 the
    // trajectory history recorder — together they cover every layer the
    // observability hooks touch on the query, durability and history
    // paths.
    for id in ["e4", "e10", "e15", "e17"] {
        most_obs::set_enabled(true);
        let instrumented = answers_only(id);
        most_obs::set_enabled(false);
        let disabled = answers_only(id);
        most_obs::set_enabled(true);
        assert_eq!(
            instrumented, disabled,
            "{id}: enabling observability must not change any answer byte"
        );
    }

    // Conservation: every continuous query seen by a refresh pass is
    // either filtered out or evaluated — never both, never neither.
    let t = run_one("e10", Scale::Quick).expect("e10 exists");
    let get = |key: &str| {
        t.metrics
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert!(get("refresh.total") > 0, "e10 must drive the refresh engine");
    assert_eq!(
        get("refresh.evaluated") + get("refresh.skipped"),
        get("refresh.total"),
        "refresh counter conservation: evaluated + skipped == total"
    );
    assert_eq!(
        get("refresh.query_nanos.count"),
        get("refresh.evaluated"),
        "every evaluated refresh contributes one latency sample"
    );
}
