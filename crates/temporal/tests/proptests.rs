//! Property-based tests pinning the interval algebra to brute-force
//! per-tick set semantics, and the production `Until` to the appendix's
//! maximal-chain construction.

use most_temporal::chain::until_via_chains;
use most_temporal::{Horizon, Interval, IntervalSet, Tick};
use proptest::prelude::*;
use std::collections::BTreeSet;

const H_END: Tick = 64;

fn horizon() -> Horizon {
    Horizon::new(H_END)
}

/// Arbitrary interval set within the test horizon, via raw (possibly
/// overlapping / unsorted / adjacent) intervals.
fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec((0..=H_END, 0..=16u64), 0..8).prop_map(|pairs| {
        IntervalSet::from_intervals(
            pairs
                .into_iter()
                .map(|(a, len)| Interval::new(a, (a + len).min(H_END))),
        )
    })
}

fn ticks_of(s: &IntervalSet) -> BTreeSet<Tick> {
    s.ticks().collect()
}

fn set_of(ticks: &BTreeSet<Tick>) -> IntervalSet {
    IntervalSet::from_predicate(horizon(), |t| ticks.contains(&t))
}

proptest! {
    #[test]
    fn normalization_invariant_holds(s in arb_set()) {
        prop_assert!(s.is_normalized());
    }

    #[test]
    fn round_trip_through_ticks(s in arb_set()) {
        prop_assert_eq!(set_of(&ticks_of(&s)), s);
    }

    #[test]
    fn union_matches_set_union(a in arb_set(), b in arb_set()) {
        let expected: BTreeSet<Tick> = ticks_of(&a).union(&ticks_of(&b)).copied().collect();
        prop_assert_eq!(a.union(&b), set_of(&expected));
    }

    #[test]
    fn intersect_matches_set_intersection(a in arb_set(), b in arb_set()) {
        let expected: BTreeSet<Tick> =
            ticks_of(&a).intersection(&ticks_of(&b)).copied().collect();
        prop_assert_eq!(a.intersect(&b), set_of(&expected));
    }

    #[test]
    fn complement_matches_set_complement(a in arb_set()) {
        let h = horizon();
        let universe: BTreeSet<Tick> = h.ticks().collect();
        let expected: BTreeSet<Tick> =
            universe.difference(&ticks_of(&a)).copied().collect();
        prop_assert_eq!(a.complement(h), set_of(&expected));
    }

    #[test]
    fn difference_matches_set_difference(a in arb_set(), b in arb_set()) {
        let expected: BTreeSet<Tick> =
            ticks_of(&a).difference(&ticks_of(&b)).copied().collect();
        prop_assert_eq!(a.difference(&b, horizon()), set_of(&expected));
    }

    #[test]
    fn demorgan_laws(a in arb_set(), b in arb_set()) {
        let h = horizon();
        let lhs = a.union(&b).complement(h);
        let rhs = a.complement(h).intersect(&b.complement(h));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn contains_matches_linear_scan(s in arb_set(), t in 0..=H_END) {
        prop_assert_eq!(s.contains(t), ticks_of(&s).contains(&t));
    }

    #[test]
    fn next_time_matches_pointwise(s in arb_set()) {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| t < H_END && s.contains(t + 1));
        prop_assert_eq!(s.next_time(h), expected);
    }

    #[test]
    fn eventually_matches_pointwise(s in arb_set()) {
        let h = horizon();
        let expected =
            IntervalSet::from_predicate(h, |t| (t..=H_END).any(|u| s.contains(u)));
        prop_assert_eq!(s.eventually(), expected);
    }

    #[test]
    fn always_matches_pointwise(s in arb_set()) {
        let h = horizon();
        let expected =
            IntervalSet::from_predicate(h, |t| (t..=H_END).all(|u| s.contains(u)));
        prop_assert_eq!(s.always(h), expected);
    }

    #[test]
    fn until_matches_pointwise(f in arb_set(), g in arb_set()) {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| {
            g.ticks().any(|t2| t2 >= t && (t..t2).all(|u| f.contains(u)))
        });
        prop_assert_eq!(f.until(&g), expected);
    }

    #[test]
    fn until_agrees_with_appendix_chains(f in arb_set(), g in arb_set()) {
        prop_assert_eq!(f.until(&g), until_via_chains(&f, &g));
    }

    #[test]
    fn eventually_within_matches_pointwise(s in arb_set(), c in 0..20u64) {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| {
            (t..=(t + c).min(H_END)).any(|u| s.contains(u))
        });
        prop_assert_eq!(s.eventually_within(c), expected);
    }

    #[test]
    fn eventually_after_matches_pointwise(s in arb_set(), c in 0..20u64) {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| {
            (t + c..=H_END).any(|u| u >= t + c && s.contains(u))
        });
        prop_assert_eq!(s.eventually_after(c), expected);
    }

    #[test]
    fn always_for_matches_pointwise(s in arb_set(), c in 0..20u64) {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| {
            t + c <= H_END && (t..=t + c).all(|u| s.contains(u))
        });
        prop_assert_eq!(s.always_for(c, h), expected);
    }

    #[test]
    fn until_within_matches_pointwise(f in arb_set(), g in arb_set(), c in 0..20u64) {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| {
            g.ticks()
                .any(|t2| t2 >= t && t2 <= t + c && (t..t2).all(|u| f.contains(u)))
        });
        prop_assert_eq!(f.until_within(c, &g), expected);
    }

    #[test]
    fn until_with_full_f_is_eventually(g in arb_set()) {
        // Eventually g  ==  true Until g   (Section 3.3)
        let full = IntervalSet::full(horizon());
        prop_assert_eq!(full.until(&g), g.eventually());
    }

    #[test]
    fn always_is_not_eventually_not(s in arb_set()) {
        // Always f == ¬ Eventually ¬ f    (Section 3.3)
        let h = horizon();
        let lhs = s.always(h);
        let rhs = s.complement(h).eventually().complement(h);
        prop_assert_eq!(lhs, rhs);
    }
}
