//! Property-based tests pinning the interval algebra to brute-force
//! per-tick set semantics, and the production `Until` to the appendix's
//! maximal-chain construction.

use most_temporal::chain::until_via_chains;
use most_temporal::{Horizon, Interval, IntervalSet, Tick};
use most_testkit::check::{ints, tuple2, tuple3, vecs, Check, Gen};
use std::collections::BTreeSet;

const H_END: Tick = 64;

fn horizon() -> Horizon {
    Horizon::new(H_END)
}

/// Arbitrary interval set within the test horizon, via raw (possibly
/// overlapping / unsorted / adjacent) intervals.
fn arb_set() -> Gen<IntervalSet> {
    vecs(tuple2(ints(0..=H_END), ints(0..=16u64)), 0..8).map(|pairs| {
        IntervalSet::from_intervals(
            pairs
                .into_iter()
                .map(|(a, len)| Interval::new(a, (a + len).min(H_END))),
        )
    })
}

fn ticks_of(s: &IntervalSet) -> BTreeSet<Tick> {
    s.ticks().collect()
}

fn set_of(ticks: &BTreeSet<Tick>) -> IntervalSet {
    IntervalSet::from_predicate(horizon(), |t| ticks.contains(&t))
}

#[test]
fn normalization_invariant_holds() {
    Check::new("temporal::normalization_invariant_holds")
        .run(&arb_set(), |s| assert!(s.is_normalized()));
}

#[test]
fn round_trip_through_ticks() {
    Check::new("temporal::round_trip_through_ticks")
        .run(&arb_set(), |s| assert_eq!(&set_of(&ticks_of(s)), s));
}

#[test]
fn union_matches_set_union() {
    Check::new("temporal::union_matches_set_union").run(
        &tuple2(arb_set(), arb_set()),
        |(a, b)| {
            let expected: BTreeSet<Tick> = ticks_of(a).union(&ticks_of(b)).copied().collect();
            assert_eq!(a.union(b), set_of(&expected));
        },
    );
}

#[test]
fn intersect_matches_set_intersection() {
    Check::new("temporal::intersect_matches_set_intersection").run(
        &tuple2(arb_set(), arb_set()),
        |(a, b)| {
            let expected: BTreeSet<Tick> =
                ticks_of(a).intersection(&ticks_of(b)).copied().collect();
            assert_eq!(a.intersect(b), set_of(&expected));
        },
    );
}

#[test]
fn complement_matches_set_complement() {
    Check::new("temporal::complement_matches_set_complement").run(&arb_set(), |a| {
        let h = horizon();
        let universe: BTreeSet<Tick> = h.ticks().collect();
        let expected: BTreeSet<Tick> = universe.difference(&ticks_of(a)).copied().collect();
        assert_eq!(a.complement(h), set_of(&expected));
    });
}

#[test]
fn difference_matches_set_difference() {
    Check::new("temporal::difference_matches_set_difference").run(
        &tuple2(arb_set(), arb_set()),
        |(a, b)| {
            let expected: BTreeSet<Tick> =
                ticks_of(a).difference(&ticks_of(b)).copied().collect();
            assert_eq!(a.difference(b, horizon()), set_of(&expected));
        },
    );
}

#[test]
fn demorgan_laws() {
    Check::new("temporal::demorgan_laws").run(&tuple2(arb_set(), arb_set()), |(a, b)| {
        let h = horizon();
        let lhs = a.union(b).complement(h);
        let rhs = a.complement(h).intersect(&b.complement(h));
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn contains_matches_linear_scan() {
    Check::new("temporal::contains_matches_linear_scan").run(
        &tuple2(arb_set(), ints(0..=H_END)),
        |(s, t)| {
            assert_eq!(s.contains(*t), ticks_of(s).contains(t));
        },
    );
}

#[test]
fn next_time_matches_pointwise() {
    Check::new("temporal::next_time_matches_pointwise").run(&arb_set(), |s| {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| t < H_END && s.contains(t + 1));
        assert_eq!(s.next_time(h), expected);
    });
}

#[test]
fn eventually_matches_pointwise() {
    Check::new("temporal::eventually_matches_pointwise").run(&arb_set(), |s| {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| (t..=H_END).any(|u| s.contains(u)));
        assert_eq!(s.eventually(), expected);
    });
}

#[test]
fn always_matches_pointwise() {
    Check::new("temporal::always_matches_pointwise").run(&arb_set(), |s| {
        let h = horizon();
        let expected = IntervalSet::from_predicate(h, |t| (t..=H_END).all(|u| s.contains(u)));
        assert_eq!(s.always(h), expected);
    });
}

#[test]
fn until_matches_pointwise() {
    Check::new("temporal::until_matches_pointwise").run(
        &tuple2(arb_set(), arb_set()),
        |(f, g)| {
            let h = horizon();
            let expected = IntervalSet::from_predicate(h, |t| {
                g.ticks().any(|t2| t2 >= t && (t..t2).all(|u| f.contains(u)))
            });
            assert_eq!(f.until(g), expected);
        },
    );
}

#[test]
fn until_agrees_with_appendix_chains() {
    Check::new("temporal::until_agrees_with_appendix_chains").run(
        &tuple2(arb_set(), arb_set()),
        |(f, g)| {
            assert_eq!(f.until(g), until_via_chains(f, g));
        },
    );
}

#[test]
fn eventually_within_matches_pointwise() {
    Check::new("temporal::eventually_within_matches_pointwise").run(
        &tuple2(arb_set(), ints(0..20u64)),
        |(s, c)| {
            let c = *c;
            let h = horizon();
            let expected = IntervalSet::from_predicate(h, |t| {
                (t..=(t + c).min(H_END)).any(|u| s.contains(u))
            });
            assert_eq!(s.eventually_within(c), expected);
        },
    );
}

#[test]
fn eventually_after_matches_pointwise() {
    Check::new("temporal::eventually_after_matches_pointwise").run(
        &tuple2(arb_set(), ints(0..20u64)),
        |(s, c)| {
            let c = *c;
            let h = horizon();
            let expected = IntervalSet::from_predicate(h, |t| {
                (t + c..=H_END).any(|u| u >= t + c && s.contains(u))
            });
            assert_eq!(s.eventually_after(c), expected);
        },
    );
}

#[test]
fn always_for_matches_pointwise() {
    Check::new("temporal::always_for_matches_pointwise").run(
        &tuple2(arb_set(), ints(0..20u64)),
        |(s, c)| {
            let c = *c;
            let h = horizon();
            let expected = IntervalSet::from_predicate(h, |t| {
                t + c <= H_END && (t..=t + c).all(|u| s.contains(u))
            });
            assert_eq!(s.always_for(c, h), expected);
        },
    );
}

#[test]
fn until_within_matches_pointwise() {
    Check::new("temporal::until_within_matches_pointwise").run(
        &tuple3(arb_set(), arb_set(), ints(0..20u64)),
        |(f, g, c)| {
            let c = *c;
            let h = horizon();
            let expected = IntervalSet::from_predicate(h, |t| {
                g.ticks()
                    .any(|t2| t2 >= t && t2 <= t + c && (t..t2).all(|u| f.contains(u)))
            });
            assert_eq!(f.until_within(c, g), expected);
        },
    );
}

#[test]
fn until_with_full_f_is_eventually() {
    Check::new("temporal::until_with_full_f_is_eventually").run(&arb_set(), |g| {
        // Eventually g  ==  true Until g   (Section 3.3)
        let full = IntervalSet::full(horizon());
        assert_eq!(full.until(g), g.eventually());
    });
}

#[test]
fn always_is_not_eventually_not() {
    Check::new("temporal::always_is_not_eventually_not").run(&arb_set(), |s| {
        // Always f == ¬ Eventually ¬ f    (Section 3.3)
        let h = horizon();
        let lhs = s.always(h);
        let rhs = s.complement(h).eventually().complement(h);
        assert_eq!(lhs, rhs);
    });
}
