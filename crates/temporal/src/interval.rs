//! Closed tick intervals `[begin, end]`.
//!
//! The appendix manipulates intervals of clock ticks during which a formula
//! is satisfied for one instantiation of its free variables.  Two notions
//! from the appendix are implemented verbatim here:
//!
//! * **consecutive** — `[a, b]` and `[c, d]` with `c = b + 1` (no gap);
//!   normalized interval sets must not contain consecutive intervals;
//! * **compatible** — "`[l1 u1]` is compatible with `[m1 n1]` if
//!   `m1 <= u1 + 1` and `n1 >= u1`, i.e. the two intervals either overlap or
//!   they are consecutive" — the condition under which a `g1`-interval can be
//!   chained into a `g2`-interval while evaluating `g1 Until g2`.

use crate::time::Tick;
use std::fmt;

/// A closed, non-empty interval of clock ticks `[begin, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    begin: Tick,
    end: Tick,
}

impl Interval {
    /// Creates the interval `[begin, end]`.
    ///
    /// # Panics
    /// Panics if `begin > end`; use [`Interval::try_new`] for fallible
    /// construction.
    pub fn new(begin: Tick, end: Tick) -> Self {
        assert!(
            begin <= end,
            "interval begin ({begin}) must not exceed end ({end})"
        );
        Interval { begin, end }
    }

    /// Creates the interval `[begin, end]`, or `None` when `begin > end`.
    pub fn try_new(begin: Tick, end: Tick) -> Option<Self> {
        (begin <= end).then_some(Interval { begin, end })
    }

    /// The single-tick interval `[t, t]`.
    pub fn point(t: Tick) -> Self {
        Interval { begin: t, end: t }
    }

    /// First tick of the interval.
    pub fn begin(self) -> Tick {
        self.begin
    }

    /// Last tick of the interval (inclusive).
    pub fn end(self) -> Tick {
        self.end
    }

    /// Number of ticks in the interval.
    ///
    /// Saturates at `u64::MAX` for the full-domain interval
    /// `[0, Tick::MAX]`, whose true length (`2^64`) is unrepresentable.
    pub fn len(self) -> u64 {
        (self.end - self.begin).saturating_add(1)
    }

    /// Intervals are non-empty by construction.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Whether tick `t` lies inside the interval.
    pub fn contains(self, t: Tick) -> bool {
        self.begin <= t && t <= self.end
    }

    /// Whether `other` is entirely inside `self`.
    pub fn covers(self, other: Interval) -> bool {
        self.begin <= other.begin && other.end <= self.end
    }

    /// Whether the two intervals share at least one tick.
    pub fn overlaps(self, other: Interval) -> bool {
        self.begin <= other.end && other.begin <= self.end
    }

    /// The intersection of two intervals, if non-empty.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        Interval::try_new(self.begin.max(other.begin), self.end.min(other.end))
    }

    /// Whether `other` starts exactly one tick after `self` ends
    /// (the appendix's "consecutive" relation, in that order).
    pub fn precedes_consecutively(self, other: Interval) -> bool {
        other.begin == self.end.saturating_add(1) && self.end < Tick::MAX
    }

    /// Whether the two intervals overlap or are consecutive in either order,
    /// i.e. whether their union is a single interval.
    pub fn touches(self, other: Interval) -> bool {
        self.overlaps(other)
            || self.precedes_consecutively(other)
            || other.precedes_consecutively(self)
    }

    /// The appendix's **compatibility** test: `self = [l1, u1]` is compatible
    /// with `other = [m1, n1]` iff `m1 <= u1 + 1` and `n1 >= u1`.
    ///
    /// Intuitively: a tick range satisfying `g1` up to `u1` can hand over to
    /// a `g2` interval that starts no later than `u1 + 1` and does not end
    /// before `u1`.
    pub fn compatible_with(self, other: Interval) -> bool {
        other.begin <= self.end.saturating_add(1) && other.end >= self.end
    }

    /// Union of two touching intervals; `None` when the union would be
    /// disconnected.
    pub fn merge(self, other: Interval) -> Option<Interval> {
        self.touches(other)
            .then(|| Interval::new(self.begin.min(other.begin), self.end.max(other.end)))
    }

    /// Iterator over the ticks in the interval (tests / reference evaluator
    /// only).
    pub fn ticks(self) -> impl Iterator<Item = Tick> {
        self.begin..=self.end
    }

    /// Shifts the interval towards zero by `delta`, clamping at zero.
    ///
    /// Used for the `Nexttime` and `Eventually within` transforms; the result
    /// is `[begin - delta, end - delta]` saturated at 0, or `None` when the
    /// whole interval would fall below 0 (i.e. `end < delta`).
    pub fn shift_down(self, delta: u64) -> Option<Interval> {
        if self.end < delta {
            None
        } else {
            Some(Interval::new(self.begin.saturating_sub(delta), self.end - delta))
        }
    }

    /// Shifts the interval away from zero by `delta` (saturating at
    /// `Tick::MAX`, which in practice is never reached because horizons are
    /// small relative to `u64`).
    pub fn shift_up(self, delta: u64) -> Interval {
        Interval::new(
            self.begin.saturating_add(delta),
            self.end.saturating_add(delta),
        )
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.begin, self.end)
    }
}

impl most_testkit::ser::ToJson for Interval {
    fn to_json(&self) -> most_testkit::ser::Json {
        most_testkit::ser::Json::Obj(vec![
            ("begin".to_owned(), self.begin.to_json()),
            ("end".to_owned(), self.end.to_json()),
        ])
    }
}

impl most_testkit::ser::FromJson for Interval {
    fn from_json(j: &most_testkit::ser::Json) -> Result<Self, most_testkit::ser::JsonError> {
        let begin = Tick::from_json(j.field("begin")?)?;
        let end = Tick::from_json(j.field("end")?)?;
        Interval::try_new(begin, end).ok_or_else(|| {
            most_testkit::ser::JsonError::Decode(format!(
                "interval begin ({begin}) exceeds end ({end})"
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic]
    fn inverted_interval_panics() {
        let _ = Interval::new(5, 4);
    }

    #[test]
    fn try_new_rejects_inverted() {
        assert!(Interval::try_new(5, 4).is_none());
        assert_eq!(Interval::try_new(4, 5), Some(Interval::new(4, 5)));
    }

    #[test]
    fn point_interval() {
        let i = Interval::point(7);
        assert_eq!(i.begin(), 7);
        assert_eq!(i.end(), 7);
        assert_eq!(i.len(), 1);
        assert!(i.contains(7));
        assert!(!i.contains(6));
    }

    #[test]
    fn contains_and_covers() {
        let i = Interval::new(3, 9);
        assert!(i.contains(3) && i.contains(9) && i.contains(6));
        assert!(!i.contains(2) && !i.contains(10));
        assert!(i.covers(Interval::new(4, 8)));
        assert!(i.covers(i));
        assert!(!i.covers(Interval::new(2, 8)));
        assert!(!i.covers(Interval::new(4, 10)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::new(2, 6);
        let b = Interval::new(5, 9);
        let c = Interval::new(7, 9);
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!a.overlaps(c));
        assert_eq!(a.intersect(b), Some(Interval::new(5, 6)));
        assert_eq!(a.intersect(c), None);
    }

    #[test]
    fn consecutive_and_touches() {
        let a = Interval::new(2, 6);
        let b = Interval::new(7, 9);
        let c = Interval::new(8, 9);
        assert!(a.precedes_consecutively(b));
        assert!(!a.precedes_consecutively(c));
        assert!(a.touches(b) && b.touches(a));
        assert!(!a.touches(c));
        assert_eq!(a.merge(b), Some(Interval::new(2, 9)));
        assert_eq!(a.merge(c), None);
    }

    #[test]
    fn compatibility_matches_appendix_definition() {
        // [l1,u1] = [2,6]; compatible iff m1 <= 7 and n1 >= 6.
        let g1 = Interval::new(2, 6);
        assert!(g1.compatible_with(Interval::new(7, 9))); // consecutive
        assert!(g1.compatible_with(Interval::new(5, 6))); // overlap ending at u1
        assert!(g1.compatible_with(Interval::new(0, 10))); // covering
        assert!(!g1.compatible_with(Interval::new(8, 9))); // gap
        assert!(!g1.compatible_with(Interval::new(3, 5))); // ends before u1
    }

    #[test]
    fn shift_down_saturates_and_vanishes() {
        let i = Interval::new(3, 5);
        assert_eq!(i.shift_down(0), Some(i));
        assert_eq!(i.shift_down(4), Some(Interval::new(0, 1)));
        assert_eq!(i.shift_down(5), Some(Interval::new(0, 0)));
        assert_eq!(i.shift_down(6), None);
    }

    #[test]
    fn shift_up_moves_both_ends() {
        assert_eq!(Interval::new(3, 5).shift_up(10), Interval::new(13, 15));
    }

    #[test]
    fn tick_iteration() {
        assert_eq!(Interval::new(2, 4).ticks().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(Interval::new(2, 4).len(), 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(Interval::new(1, 2).to_string(), "[1, 2]");
    }

    #[test]
    fn len_saturates_at_tick_domain_boundary() {
        // [0, MAX] has 2^64 ticks; len must saturate, not overflow.
        assert_eq!(Interval::new(0, Tick::MAX).len(), u64::MAX);
        assert_eq!(Interval::new(1, Tick::MAX).len(), u64::MAX);
        assert_eq!(Interval::new(Tick::MAX, Tick::MAX).len(), 1);
    }

    #[test]
    fn consecutiveness_never_overflows_at_tick_max() {
        let top = Interval::new(Tick::MAX - 1, Tick::MAX);
        let below = Interval::new(0, Tick::MAX - 2);
        // Nothing starts after MAX, so an interval ending there precedes
        // nothing consecutively — and the check must not wrap to 0.
        assert!(!top.precedes_consecutively(Interval::new(0, 5)));
        assert!(below.precedes_consecutively(top));
        assert!(below.touches(top));
        assert_eq!(below.merge(top), Some(Interval::new(0, Tick::MAX)));
        // Compatibility at the top of the domain must not wrap either.
        assert!(top.compatible_with(Interval::new(Tick::MAX, Tick::MAX)));
        assert!(!Interval::new(0, 1).compatible_with(Interval::new(Tick::MAX, Tick::MAX)));
    }
}
