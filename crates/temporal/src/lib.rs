//! Discrete-time temporal algebra for the MOST / FTL reproduction.
//!
//! The ICDE 1997 paper models time as a special database object whose
//! "domain is the set of natural numbers, and its value increases by one in
//! each clock tick" (Section 2).  Queries are interpreted over *database
//! histories*: infinite sequences of states, one per tick.  Because the paper
//! itself truncates infinite answers by letting queries "expire after a
//! predefined (but very large) amount of time", every evaluation in this
//! workspace happens against a finite [`Horizon`].
//!
//! This crate provides the three building blocks everything else sits on:
//!
//! * [`Tick`] / [`Horizon`] — the discrete clock;
//! * [`Interval`] — closed tick intervals `[begin, end]`;
//! * [`IntervalSet`] — *normalized* sets of intervals (disjoint and
//!   non-consecutive, exactly the invariant the paper's appendix requires of
//!   the per-instantiation interval columns of the relations `R_g`), together
//!   with the full temporal-operator algebra (`Until` via maximal chains,
//!   `Nexttime`, `Eventually`, `Always` and the bounded real-time variants of
//!   Section 3.4).
//!
//! The [`chain`] module contains a literal transcription of the appendix's
//! maximal-chain merge for `Until`; [`IntervalSet::until`] is the production
//! implementation and the two are property-tested against each other and
//! against brute-force per-tick evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod interval;
pub mod interval_set;
pub mod time;

pub use interval::Interval;
pub use interval_set::IntervalSet;
pub use time::{Duration, Horizon, Tick};
