//! Normalized interval sets and the temporal-operator algebra.
//!
//! The appendix requires that, for each instantiation of a subformula's free
//! variables, the intervals stored in the relation `R_g` are *disjoint and
//! non-consecutive* ("there is a non-zero gap separating intervals in tuples
//! that give identical values to corresponding variables").  [`IntervalSet`]
//! maintains exactly that invariant: a sorted vector of [`Interval`]s where
//! successive intervals are separated by a gap of at least one tick.
//!
//! On top of the boolean algebra (union / intersection / complement within a
//! [`Horizon`]) this module implements every temporal operator of FTL as an
//! interval-set transform, so the appendix algorithm never enumerates clock
//! ticks:
//!
//! | FTL operator                | method                     |
//! |-----------------------------|----------------------------|
//! | `f ∧ g`                     | [`IntervalSet::intersect`] |
//! | `f ∨ g` (extension)         | [`IntervalSet::union`]     |
//! | `¬ f` (extension)           | [`IntervalSet::complement`]|
//! | `Nexttime f`                | [`IntervalSet::next_time`] |
//! | `f Until g`                 | [`IntervalSet::until`]     |
//! | `Eventually f`              | [`IntervalSet::eventually`]|
//! | `Always f`                  | [`IntervalSet::always`]    |
//! | `Eventually within c f`     | [`IntervalSet::eventually_within`] |
//! | `Eventually after c f`      | [`IntervalSet::eventually_after`]  |
//! | `Always for c f`            | [`IntervalSet::always_for`]        |
//! | `f until_within c g`        | [`IntervalSet::until_within`]      |

use crate::interval::Interval;
use crate::time::{Horizon, Tick};
use std::fmt;

/// A normalized (sorted, disjoint, non-consecutive) set of tick intervals.
///
/// ```
/// use most_temporal::{Interval, IntervalSet};
///
/// // Overlapping and adjacent intervals normalize on construction.
/// let f = IntervalSet::from_intervals([Interval::new(0, 4), Interval::new(5, 9)]);
/// assert_eq!(f.intervals(), &[Interval::new(0, 9)]);
///
/// // Temporal operators are interval-set transforms: `f Until g`.
/// let g = IntervalSet::from_intervals([Interval::new(10, 12)]);
/// assert_eq!(f.until(&g).intervals(), &[Interval::new(0, 12)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet::default()
    }

    /// The set containing the single interval `iv`.
    pub fn singleton(iv: Interval) -> Self {
        IntervalSet { intervals: vec![iv] }
    }

    /// The set containing the single tick `t`.
    pub fn point(t: Tick) -> Self {
        IntervalSet::singleton(Interval::point(t))
    }

    /// The whole horizon `[0, h.end()]`.
    pub fn full(h: Horizon) -> Self {
        IntervalSet::singleton(Interval::new(0, h.end()))
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// unsorted, consecutive) intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(ivs: I) -> Self {
        let mut v: Vec<Interval> = ivs.into_iter().collect();
        v.sort_unstable();
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match out.last_mut() {
                Some(last) if last.touches(iv) => {
                    *last = last.merge(iv).expect("touching intervals merge");
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { intervals: out }
    }

    /// Builds a set from a per-tick predicate over the horizon.
    ///
    /// Brute-force constructor used by the naive reference evaluator and by
    /// the test suites; O(horizon).
    pub fn from_predicate<F: FnMut(Tick) -> bool>(h: Horizon, mut pred: F) -> Self {
        let mut intervals = Vec::new();
        let mut open: Option<Tick> = None;
        for t in h.ticks() {
            match (pred(t), open) {
                (true, None) => open = Some(t),
                (false, Some(b)) => {
                    intervals.push(Interval::new(b, t - 1));
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(b) = open {
            intervals.push(Interval::new(b, h.end()));
        }
        IntervalSet { intervals }
    }

    /// The underlying sorted intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Consumes the set, returning its intervals.
    pub fn into_intervals(self) -> Vec<Interval> {
        self.intervals
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of maximal intervals.
    pub fn span_count(&self) -> usize {
        self.intervals.len()
    }

    /// Total number of ticks contained in the set (saturating at
    /// `u64::MAX`; the full tick domain has `2^64` ticks).
    pub fn tick_count(&self) -> u64 {
        self.intervals
            .iter()
            .fold(0u64, |acc, iv| acc.saturating_add(iv.len()))
    }

    /// Whether tick `t` is in the set (binary search, O(log spans)).
    pub fn contains(&self, t: Tick) -> bool {
        self.intervals
            .binary_search_by(|iv| {
                if iv.end() < t {
                    std::cmp::Ordering::Less
                } else if iv.begin() > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// First tick in the set, if any.
    pub fn first_tick(&self) -> Option<Tick> {
        self.intervals.first().map(|iv| iv.begin())
    }

    /// Last tick in the set, if any.
    pub fn last_tick(&self) -> Option<Tick> {
        self.intervals.last().map(|iv| iv.end())
    }

    /// Iterator over every tick in the set (tests only; O(ticks)).
    pub fn ticks(&self) -> impl Iterator<Item = Tick> + '_ {
        self.intervals.iter().flat_map(|iv| iv.ticks())
    }

    /// Checks the normalization invariant; used by debug assertions and
    /// property tests.
    pub fn is_normalized(&self) -> bool {
        self.intervals
            .windows(2)
            .all(|w| w[0].end().saturating_add(1) < w[1].begin())
    }

    /// Set union (sorted merge, O(n + m)).
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out: Vec<Interval> = Vec::with_capacity(self.intervals.len() + other.intervals.len());
        let mut a = self.intervals.iter().copied().peekable();
        let mut b = other.intervals.iter().copied().peekable();
        let push = |out: &mut Vec<Interval>, iv: Interval| match out.last_mut() {
            Some(last) if last.touches(iv) => {
                *last = last.merge(iv).expect("touching intervals merge");
            }
            _ => out.push(iv),
        };
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        a.next()
                    } else {
                        b.next()
                    }
                }
                (Some(_), None) => a.next(),
                (None, Some(_)) => b.next(),
                (None, None) => break,
            };
            push(&mut out, next.expect("peeked element exists"));
        }
        IntervalSet { intervals: out }
    }

    /// Set intersection (sorted merge, O(n + m)).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (x, y) = (self.intervals[i], other.intervals[j]);
            if let Some(iv) = x.intersect(y) {
                out.push(iv);
            }
            if x.end() <= y.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { intervals: out }
    }

    /// Complement within the horizon.
    ///
    /// The paper restricts its algorithm to conjunctive (negation-free)
    /// formulas for safety; this complement is the active-domain extension
    /// discussed in DESIGN.md (D3) and is exact within `[0, h.end()]`.
    pub fn complement(&self, h: Horizon) -> IntervalSet {
        let mut out = Vec::with_capacity(self.intervals.len() + 1);
        let mut cursor: Tick = 0;
        for iv in &self.intervals {
            if iv.begin() > cursor {
                out.push(Interval::new(cursor, iv.begin() - 1));
            }
            // An interval reaching Tick::MAX leaves no ticks above it; the
            // saturated cursor would otherwise re-admit tick MAX below.
            if iv.end() == Tick::MAX {
                return IntervalSet { intervals: out };
            }
            cursor = iv.end() + 1;
            if cursor > h.end() {
                return IntervalSet { intervals: out };
            }
        }
        if cursor <= h.end() {
            out.push(Interval::new(cursor, h.end()));
        }
        IntervalSet { intervals: out }
    }

    /// Set difference `self \ other` within the horizon.
    pub fn difference(&self, other: &IntervalSet, h: Horizon) -> IntervalSet {
        self.intersect(&other.complement(h))
    }

    /// Restricts the set to the horizon.
    pub fn clamp(&self, h: Horizon) -> IntervalSet {
        self.intersect(&IntervalSet::full(h))
    }

    // ------------------------------------------------------------------
    // Temporal operators (Section 3.3 / 3.4 / appendix)
    // ------------------------------------------------------------------

    /// `Nexttime f`: `t` satisfies iff `t + 1` satisfies `f`.
    ///
    /// Ticks whose successor lies beyond the horizon are unsatisfied (the
    /// truncated history has no next state there).
    pub fn next_time(&self, h: Horizon) -> IntervalSet {
        let shifted = self
            .intervals
            .iter()
            .filter_map(|iv| iv.shift_down(1));
        IntervalSet::from_intervals(shifted).clamp_end(h.end().saturating_sub(1))
    }

    /// `Eventually f` (= `true Until f`): `t` satisfies iff some `t' >= t`
    /// within the horizon satisfies `f`.
    pub fn eventually(&self) -> IntervalSet {
        match self.last_tick() {
            Some(last) => IntervalSet::singleton(Interval::new(0, last)),
            None => IntervalSet::empty(),
        }
    }

    /// `Always f`: `t` satisfies iff every `t' >= t` up to the horizon end
    /// satisfies `f`.
    pub fn always(&self, h: Horizon) -> IntervalSet {
        match self.intervals.last() {
            Some(iv) if iv.end() >= h.end() => {
                IntervalSet::singleton(Interval::new(iv.begin(), h.end()))
            }
            _ => IntervalSet::empty(),
        }
    }

    /// `f Until g` where `self` is the satisfaction set of `f` and `g_set`
    /// that of `g`.
    ///
    /// Per Section 3.3, `t` satisfies iff either `g` holds at `t`, or there
    /// is a future `t''` where `g` holds and `f` holds throughout
    /// `[t, t'' - 1]`.  The construction below is the closed form of the
    /// appendix's maximal-chain merge: every `g`-interval `[m, n]` is
    /// extended backwards through the `f`-interval containing `m - 1` (when
    /// one exists), and the union is normalized — which merges exactly the
    /// intervals the appendix links into chains.  Unlike the literal chain
    /// description, intervals of `g` that no `f`-interval is compatible with
    /// are still included (they satisfy `Until` by the first disjunct of the
    /// semantics); see `chain::until_via_chains` for the transcription and
    /// the property test pinning both implementations together.
    pub fn until(&self, g_set: &IntervalSet) -> IntervalSet {
        let mut out = Vec::with_capacity(g_set.intervals.len());
        for g_iv in &g_set.intervals {
            let begin = match g_iv.begin() {
                0 => 0,
                m => match self.interval_containing(m - 1) {
                    Some(f_iv) => f_iv.begin().min(m),
                    None => m,
                },
            };
            out.push(Interval::new(begin, g_iv.end()));
        }
        IntervalSet::from_intervals(out)
    }

    /// `Eventually within c (f)`: `t` satisfies iff some `t' ∈ [t, t + c]`
    /// satisfies `f` (Section 3.4).
    pub fn eventually_within(&self, c: u64) -> IntervalSet {
        IntervalSet::from_intervals(
            self.intervals
                .iter()
                .map(|iv| Interval::new(iv.begin().saturating_sub(c), iv.end())),
        )
    }

    /// `Eventually after c (f)`: `t` satisfies iff some `t' >= t + c`
    /// satisfies `f` (Section 3.4).
    pub fn eventually_after(&self, c: u64) -> IntervalSet {
        match self.last_tick() {
            Some(last) if last >= c => IntervalSet::singleton(Interval::new(0, last - c)),
            _ => IntervalSet::empty(),
        }
    }

    /// `Always for c (f)`: `t` satisfies iff `f` holds at every
    /// `t' ∈ [t, t + c]` (Section 3.4).
    ///
    /// `t + c` must lie within the horizon for the obligation to be
    /// checkable; ticks too close to the horizon end are unsatisfied, which
    /// is the conservative reading of the truncated history.
    pub fn always_for(&self, c: u64, h: Horizon) -> IntervalSet {
        let ivs = self.intervals.iter().filter_map(|iv| {
            if iv.len() > c {
                Interval::try_new(iv.begin(), iv.end() - c)
            } else {
                None
            }
        });
        IntervalSet::from_intervals(ivs).clamp_end(h.end().saturating_sub(c))
    }

    /// `f until_within c g`: `t` satisfies iff there is `t'' ∈ [t, t + c]`
    /// where `g` holds and `f` holds throughout `[t, t'')` (Section 3.4).
    pub fn until_within(&self, c: u64, g_set: &IntervalSet) -> IntervalSet {
        let mut out = Vec::with_capacity(g_set.intervals.len());
        for g_iv in &g_set.intervals {
            let m = g_iv.begin();
            // Backwards extension through f, as in `until` ...
            let reach_begin = match m {
                0 => 0,
                m => match self.interval_containing(m - 1) {
                    Some(f_iv) => f_iv.begin().min(m),
                    None => m,
                },
            };
            // ... but a tick t < m only works when m <= t + c.
            let begin = reach_begin.max(m.saturating_sub(c));
            out.push(Interval::new(begin, g_iv.end()));
        }
        IntervalSet::from_intervals(out)
    }

    /// The interval containing tick `t`, if any.
    pub fn interval_containing(&self, t: Tick) -> Option<Interval> {
        self.intervals
            .binary_search_by(|iv| {
                if iv.end() < t {
                    std::cmp::Ordering::Less
                } else if iv.begin() > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()
            .map(|idx| self.intervals[idx])
    }

    /// Drops every tick strictly greater than `end`.
    fn clamp_end(mut self, end: Tick) -> IntervalSet {
        while let Some(last) = self.intervals.last_mut() {
            if last.begin() > end {
                self.intervals.pop();
            } else {
                if last.end() > end {
                    *last = Interval::new(last.begin(), end);
                }
                break;
            }
        }
        self
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl most_testkit::ser::ToJson for IntervalSet {
    fn to_json(&self) -> most_testkit::ser::Json {
        most_testkit::ser::ToJson::to_json(&self.intervals)
    }
}

impl most_testkit::ser::FromJson for IntervalSet {
    fn from_json(j: &most_testkit::ser::Json) -> Result<Self, most_testkit::ser::JsonError> {
        // Re-normalize on decode so a hand-edited or adversarial document
        // cannot smuggle in an unsorted / overlapping representation.
        let ivs: Vec<Interval> = most_testkit::ser::FromJson::from_json(j)?;
        Ok(IntervalSet::from_intervals(ivs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ivs: &[(Tick, Tick)]) -> IntervalSet {
        IntervalSet::from_intervals(ivs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn normalization_merges_overlaps_and_adjacent() {
        let s = set(&[(5, 9), (0, 2), (3, 4), (11, 12)]);
        assert_eq!(s.intervals(), &[Interval::new(0, 9), Interval::new(11, 12)]);
        assert!(s.is_normalized());
    }

    #[test]
    fn from_predicate_round_trip() {
        let h = Horizon::new(20);
        let s = set(&[(0, 3), (7, 7), (10, 20)]);
        let rebuilt = IntervalSet::from_predicate(h, |t| s.contains(t));
        assert_eq!(s, rebuilt);
    }

    #[test]
    fn contains_and_counts() {
        let s = set(&[(2, 4), (8, 8)]);
        assert!(s.contains(2) && s.contains(4) && s.contains(8));
        assert!(!s.contains(5) && !s.contains(9) && !s.contains(0));
        assert_eq!(s.span_count(), 2);
        assert_eq!(s.tick_count(), 4);
        assert_eq!(s.first_tick(), Some(2));
        assert_eq!(s.last_tick(), Some(8));
    }

    #[test]
    fn union_is_commutative_and_normalized() {
        let a = set(&[(0, 3), (10, 12)]);
        let b = set(&[(4, 5), (11, 15)]);
        let u = a.union(&b);
        assert_eq!(u, b.union(&a));
        assert_eq!(u, set(&[(0, 5), (10, 15)]));
        assert!(u.is_normalized());
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = set(&[(1, 2)]);
        assert_eq!(a.union(&IntervalSet::empty()), a);
        assert_eq!(IntervalSet::empty().union(&a), a);
    }

    #[test]
    fn intersection_cases() {
        let a = set(&[(0, 5), (10, 20)]);
        let b = set(&[(3, 12), (18, 30)]);
        assert_eq!(a.intersect(&b), set(&[(3, 5), (10, 12), (18, 20)]));
        assert_eq!(a.intersect(&IntervalSet::empty()), IntervalSet::empty());
    }

    #[test]
    fn complement_within_horizon() {
        let h = Horizon::new(10);
        let s = set(&[(2, 4), (8, 10)]);
        assert_eq!(s.complement(h), set(&[(0, 1), (5, 7)]));
        assert_eq!(IntervalSet::empty().complement(h), IntervalSet::full(h));
        assert_eq!(IntervalSet::full(h).complement(h), IntervalSet::empty());
        // Double complement is identity for clamped sets.
        assert_eq!(s.complement(h).complement(h), s);
    }

    #[test]
    fn difference_and_clamp() {
        let h = Horizon::new(10);
        let a = set(&[(0, 8)]);
        let b = set(&[(3, 4)]);
        assert_eq!(a.difference(&b, h), set(&[(0, 2), (5, 8)]));
        assert_eq!(set(&[(5, 50)]).clamp(h), set(&[(5, 10)]));
    }

    #[test]
    fn next_time_shifts_down() {
        let h = Horizon::new(10);
        // f holds at [3,5]; Nexttime f holds at [2,4].
        assert_eq!(set(&[(3, 5)]).next_time(h), set(&[(2, 4)]));
        // f holds at 0 only: no tick has its successor at 0.
        assert_eq!(set(&[(0, 0)]).next_time(h), IntervalSet::empty());
        // f holds at the horizon end: Nexttime f holds at end-1.
        assert_eq!(set(&[(10, 10)]).next_time(h), set(&[(9, 9)]));
    }

    #[test]
    fn eventually_reaches_back_to_zero() {
        assert_eq!(set(&[(3, 5), (9, 9)]).eventually(), set(&[(0, 9)]));
        assert_eq!(IntervalSet::empty().eventually(), IntervalSet::empty());
    }

    #[test]
    fn always_requires_horizon_suffix() {
        let h = Horizon::new(10);
        assert_eq!(set(&[(4, 10)]).always(h), set(&[(4, 10)]));
        assert_eq!(set(&[(4, 9)]).always(h), IntervalSet::empty());
        assert_eq!(set(&[(0, 2), (5, 10)]).always(h), set(&[(5, 10)]));
    }

    #[test]
    fn until_matches_pointwise_semantics() {
        let h = Horizon::new(30);
        let f = set(&[(0, 10), (14, 20)]);
        let g = set(&[(8, 9), (21, 22)]);
        let result = f.until(&g);
        let expected = IntervalSet::from_predicate(h, |t| {
            // exists t'' >= t with g(t'') and f on [t, t''-1]
            g.ticks().any(|t2| t2 >= t && (t..t2).all(|u| f.contains(u)))
        });
        assert_eq!(result, expected);
    }

    #[test]
    fn until_includes_g_only_states() {
        // g holds where f never does; Until still holds on g's intervals.
        let f = IntervalSet::empty();
        let g = set(&[(5, 7)]);
        assert_eq!(f.until(&g), g);
    }

    #[test]
    fn until_chains_across_alternations() {
        // f: [0,4], [6,9]; g: [5,5], [10,12]
        // t in [0,4]: f up to 4, g at 5 -> ok. t=5: g holds. t in [6,9]: f up
        // to 9, g at 10 -> ok. So the whole [0,12] holds (one chain).
        let f = set(&[(0, 4), (6, 9)]);
        let g = set(&[(5, 5), (10, 12)]);
        assert_eq!(f.until(&g), set(&[(0, 12)]));
    }

    #[test]
    fn eventually_within_expands_left() {
        assert_eq!(set(&[(5, 6)]).eventually_within(3), set(&[(2, 6)]));
        assert_eq!(set(&[(1, 2)]).eventually_within(5), set(&[(0, 2)]));
        assert_eq!(IntervalSet::empty().eventually_within(3), IntervalSet::empty());
    }

    #[test]
    fn eventually_after_requires_distance() {
        assert_eq!(set(&[(5, 9)]).eventually_after(3), set(&[(0, 6)]));
        assert_eq!(set(&[(2, 2)]).eventually_after(3), IntervalSet::empty());
        assert_eq!(set(&[(3, 3)]).eventually_after(3), set(&[(0, 0)]));
    }

    #[test]
    fn always_for_shrinks_right() {
        let h = Horizon::new(100);
        assert_eq!(set(&[(5, 10)]).always_for(2, h), set(&[(5, 8)]));
        assert_eq!(set(&[(5, 6)]).always_for(2, h), IntervalSet::empty());
        assert_eq!(set(&[(5, 7)]).always_for(2, h), set(&[(5, 5)]));
    }

    #[test]
    fn always_for_respects_horizon_end() {
        let h = Horizon::new(10);
        // f holds on [8,10]; Always for 2 can only be checked at t <= 8.
        assert_eq!(set(&[(8, 10)]).always_for(2, h), set(&[(8, 8)]));
        // f holds on [9,10]: at t=9, t+2=11 exceeds the horizon -> unsatisfied.
        assert_eq!(set(&[(9, 10)]).always_for(2, h), IntervalSet::empty());
    }

    #[test]
    fn until_within_matches_pointwise_semantics() {
        let h = Horizon::new(40);
        let f = set(&[(0, 20)]);
        let g = set(&[(15, 16), (30, 31)]);
        for c in [0u64, 1, 3, 10, 25] {
            let result = f.until_within(c, &g);
            let expected = IntervalSet::from_predicate(h, |t| {
                g.ticks()
                    .any(|t2| t2 >= t && t2 <= t + c && (t..t2).all(|u| f.contains(u)))
            });
            assert_eq!(result, expected, "c = {c}");
        }
    }

    #[test]
    fn interval_containing_lookup() {
        let s = set(&[(2, 4), (8, 8)]);
        assert_eq!(s.interval_containing(3), Some(Interval::new(2, 4)));
        assert_eq!(s.interval_containing(8), Some(Interval::new(8, 8)));
        assert_eq!(s.interval_containing(5), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(set(&[(1, 2), (4, 5)]).to_string(), "{[1, 2], [4, 5]}");
        assert_eq!(IntervalSet::empty().to_string(), "{}");
    }

    #[test]
    fn normalization_merges_adjacency_at_tick_max() {
        // Adjacent at the very top of the tick domain: the consecutiveness
        // check (hi + 1 == lo) must not overflow.
        let s = set(&[(0, Tick::MAX - 1), (Tick::MAX, Tick::MAX)]);
        assert_eq!(s.intervals(), &[Interval::new(0, Tick::MAX)]);
        assert!(s.is_normalized());
    }

    #[test]
    fn complement_excludes_tick_max_when_set_reaches_it() {
        let h = Horizon::new(Tick::MAX);
        // The set occupies [10, MAX]; its complement is exactly [0, 9] —
        // in particular tick MAX must NOT reappear in the complement.
        let s = set(&[(10, Tick::MAX)]);
        let c = s.complement(h);
        assert_eq!(c, set(&[(0, 9)]));
        assert!(!c.contains(Tick::MAX));
        // Full-domain set complements to empty; double complement restores.
        let full = set(&[(0, Tick::MAX)]);
        assert_eq!(full.complement(h), IntervalSet::empty());
        assert_eq!(s.complement(h).complement(h), s);
    }

    #[test]
    fn tick_count_saturates_on_huge_sets() {
        assert_eq!(set(&[(0, Tick::MAX)]).tick_count(), u64::MAX);
        assert_eq!(
            set(&[(0, Tick::MAX - 2), (Tick::MAX, Tick::MAX)]).tick_count(),
            u64::MAX
        );
    }
}
