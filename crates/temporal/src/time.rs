//! The discrete clock: ticks, durations and evaluation horizons.
//!
//! The paper's `time` object has the natural numbers as its domain and
//! increases by one per clock tick.  A [`Tick`] is therefore a plain `u64`;
//! a [`Duration`] is a difference of ticks.  Evaluation of FTL formulas is
//! always performed relative to a [`Horizon`], the paper's "predefined (but
//! very large) amount of time" after which queries expire.

/// A point on the global discrete clock (the paper's `time` object).
///
/// Tick `0` is, by convention of the appendix ("without loss of generality we
/// assume that the time when we are evaluating the query is zero"), the
/// moment the query under evaluation was entered.
pub type Tick = u64;

/// A length of time, measured in clock ticks.
pub type Duration = u64;

/// The finite evaluation horizon `[0, end]` standing in for the infinite
/// future database history.
///
/// Section 2.3: "we will assume in this paper that a continuous query expires
/// after a predefined (but very large) amount of time."  All interval algebra
/// in this workspace is exact within the horizon; `Always`-style operators
/// interpret "all future states" as "all states up to and including
/// `Horizon::end`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Horizon {
    end: Tick,
}

impl Horizon {
    /// Creates a horizon covering ticks `0..=end`.
    pub const fn new(end: Tick) -> Self {
        Horizon { end }
    }

    /// The last tick inside the horizon (inclusive).
    pub const fn end(self) -> Tick {
        self.end
    }

    /// Number of ticks in the horizon (`end + 1`).
    ///
    /// Saturates at `u64::MAX` for `Horizon::new(Tick::MAX)`, whose true
    /// length (`2^64`) is unrepresentable.
    pub const fn len(self) -> u64 {
        self.end.saturating_add(1)
    }

    /// A horizon is never empty: it always contains at least tick 0.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Whether `t` falls inside the horizon.
    pub const fn contains(self, t: Tick) -> bool {
        t <= self.end
    }

    /// Iterator over every tick in the horizon.
    ///
    /// Only sensible for the small horizons used by tests and the naive
    /// reference evaluator; the interval algebra never enumerates ticks.
    pub fn ticks(self) -> impl Iterator<Item = Tick> {
        0..=self.end
    }

    /// Clamps a tick into the horizon.
    pub fn clamp(self, t: Tick) -> Tick {
        t.min(self.end)
    }
}

impl Default for Horizon {
    /// A comfortable default horizon for interactive use: 1,000,000 ticks.
    fn default() -> Self {
        Horizon::new(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_contains_bounds() {
        let h = Horizon::new(10);
        assert!(h.contains(0));
        assert!(h.contains(10));
        assert!(!h.contains(11));
        assert_eq!(h.len(), 11);
        assert!(!h.is_empty());
    }

    #[test]
    fn horizon_tick_iteration_matches_len() {
        let h = Horizon::new(4);
        let ticks: Vec<Tick> = h.ticks().collect();
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
        assert_eq!(ticks.len() as u64, h.len());
    }

    #[test]
    fn horizon_clamp() {
        let h = Horizon::new(5);
        assert_eq!(h.clamp(3), 3);
        assert_eq!(h.clamp(5), 5);
        assert_eq!(h.clamp(99), 5);
    }

    #[test]
    fn default_horizon_is_large() {
        assert!(Horizon::default().end() >= 1_000_000);
    }

    #[test]
    fn horizon_len_saturates_at_tick_max() {
        // The full-domain horizon has 2^64 ticks; len saturates.
        let h = Horizon::new(Tick::MAX);
        assert_eq!(h.len(), u64::MAX);
        assert!(h.contains(Tick::MAX));
    }
}
