//! Literal transcription of the appendix's maximal-chain construction for
//! `g1 Until g2`.
//!
//! The appendix defines: a *chain* is an alternating sequence
//! `[l1 u1], [m1 n1], [l2 u2], [m2 n2], ..., [lk uk], [mk nk]` where each
//! `[li ui]` is an interval of `I1` (the satisfaction intervals of `g1`),
//! each `[mi ni]` is an interval of `I2` (of `g2`), `[li ui]` is compatible
//! with `[mi ni]`, and for `i < k`, `[mi ni]` is compatible with
//! `[l(i+1) u(i+1)]`.  `interval(s)` of such a chain is `[l1, nk]`, on which
//! `g1 Until g2` is satisfied throughout.  "All the maximal chains can be
//! computed by sorting the sets I1 and I2 individually and running a modified
//! merge algorithm."
//!
//! Two fidelity notes, both verified by the property tests against the
//! pointwise Section 3.3 semantics:
//!
//! 1. The chain description alone omits states where `g2` holds but no
//!    `g1`-interval is compatible with the `g2`-interval — yet such states
//!    satisfy `Until` outright by the first disjunct of the semantics
//!    ("either g is satisfied at that state").  We therefore seed chains with
//!    bare `I2` intervals as degenerate chains (`k = 0` prefix), matching
//!    [`IntervalSet::until`].
//! 2. A `g2`-interval can extend an `Until` span backwards at most to the
//!    start of the `g1`-interval covering the tick right before it, which is
//!    what the first conjunct of compatibility (`m1 <= u1 + 1`) encodes.
//! 3. Compatibility's second conjunct (`n1 >= u1`, "g2 outlasts g1") is
//!    needed only so a chain can *continue* past the `g1`-interval; requiring
//!    it for the backwards extension itself would lose answers (with
//!    `g1 = [4,10]` and `g2 = [5,6]`, tick 4 satisfies `Until` but the pair
//!    fails `n1 >= u1`).  The merge below therefore uses the sound condition
//!    — the `g1`-interval must cover the tick immediately preceding the
//!    `g2`-interval — and lets normalization perform chain continuation.
//!
//! This module exists so the production implementation
//! ([`IntervalSet::until`]) can be pinned against the paper's own
//! construction; the two are asserted equal on random inputs.

use crate::interval::Interval;
use crate::interval_set::IntervalSet;

/// Computes `g1 Until g2` by building maximal chains, following the appendix
/// merge over the two sorted interval lists.
pub fn until_via_chains(i1: &IntervalSet, i2: &IntervalSet) -> IntervalSet {
    let f = i1.intervals();
    let g = i2.intervals();
    let mut out: Vec<Interval> = Vec::with_capacity(g.len());

    // For each g2-interval, find the furthest-left chain start that can reach
    // it; the alternation across multiple (f, g) pairs is produced by the
    // final normalization, which merges compatible (overlapping/consecutive)
    // chain intervals exactly as the appendix's maximal chains do.
    let mut fi = 0usize;
    for g_iv in g {
        // Advance over f-intervals that end strictly before g could use them.
        while fi < f.len() && f[fi].end().saturating_add(1) < g_iv.begin() {
            fi += 1;
        }
        let begin = match f.get(fi) {
            // f-interval covers the tick just before g starts (fidelity
            // notes 2 and 3): the chain reaches back to its start.
            Some(f_iv)
                if f_iv.end().saturating_add(1) >= g_iv.begin()
                    && f_iv.begin() < g_iv.begin() =>
            {
                f_iv.begin()
            }
            // Degenerate chain: the g2-interval alone (fidelity note 1).
            _ => g_iv.begin(),
        };
        out.push(Interval::new(begin, g_iv.end()));
    }
    IntervalSet::from_intervals(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Horizon;

    fn set(ivs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_intervals(ivs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    /// Pointwise Section 3.3 semantics, the oracle.
    fn until_pointwise(f: &IntervalSet, g: &IntervalSet, h: Horizon) -> IntervalSet {
        IntervalSet::from_predicate(h, |t| {
            g.ticks().any(|t2| t2 >= t && (t..t2).all(|u| f.contains(u)))
        })
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn chains_match_production_until_on_examples() {
        let cases: &[(&[(u64, u64)], &[(u64, u64)])] = &[
            (&[(0, 10), (14, 20)], &[(8, 9), (21, 22)]),
            (&[(0, 4), (6, 9)], &[(5, 5), (10, 12)]),
            (&[], &[(5, 7)]),
            (&[(0, 100)], &[]),
            (&[(3, 5)], &[(9, 9)]),
            (&[(5, 10)], &[(3, 12)]),
            (&[(0, 2), (4, 6), (8, 10)], &[(3, 3), (7, 7), (11, 11)]),
        ];
        let h = Horizon::new(40);
        for (fs, gs) in cases {
            let f = set(fs);
            let g = set(gs);
            let chains = until_via_chains(&f, &g);
            assert_eq!(chains, f.until(&g), "f={f} g={g}");
            assert_eq!(chains, until_pointwise(&f, &g, h), "f={f} g={g}");
        }
    }

    #[test]
    fn chain_alternation_produces_single_interval() {
        // The appendix's headline case: alternating f/g intervals chain into
        // one long satisfaction interval.
        let f = set(&[(0, 2), (4, 6), (8, 10)]);
        let g = set(&[(3, 3), (7, 7), (11, 11)]);
        assert_eq!(until_via_chains(&f, &g), set(&[(0, 11)]));
    }

    #[test]
    fn incompatible_f_interval_does_not_extend() {
        // f ends two ticks before g starts: not compatible, g stands alone.
        let f = set(&[(0, 3)]);
        let g = set(&[(6, 7)]);
        assert_eq!(until_via_chains(&f, &g), set(&[(6, 7)]));
    }

    #[test]
    fn overlapping_g_that_outlasts_f_keeps_early_g_states() {
        // Fidelity note 1: g = [3,12] overlaps f = [5,10]; states 3..4
        // satisfy Until via g directly even though the chain interval is
        // [5,12].
        let f = set(&[(5, 10)]);
        let g = set(&[(3, 12)]);
        assert_eq!(until_via_chains(&f, &g), set(&[(3, 12)]));
    }
}
