//! Hermetic observability for the MOST workspace: a process-global
//! registry of named monotonic counters and gauges, fixed-bucket log2
//! latency histograms (integer-only p50/p95/p99), and lightweight span
//! timers that nest and aggregate per label.
//!
//! Two switches keep instrumentation free when it is unwanted:
//!
//! * **compile time** — the `enabled` cargo feature (default on).  With
//!   it off, every entry point below is an empty inline stub and the
//!   registry does not exist; uninstrumented builds pay nothing.
//! * **run time** — [`set_enabled`], a relaxed `AtomicBool` checked
//!   before any registry work, so one process can compare instrumented
//!   and uninstrumented runs of the same workload.
//!
//! Counter names are dot-separated, `layer.event` (e.g.
//! `refresh.evaluated`, `ftl.candidates`, `index.rebuilds`,
//! `net.messages`, `dbms.rows_scanned`); span labels follow the same
//! scheme and surface in [`metrics_kv`] as `<label>.count`.  Hot loops
//! must not call into the registry per element — batch with one
//! [`add`] per call site instead (the registry is a `Mutex<BTreeMap>`;
//! cheap at aggregation points, wrong inside an inner loop).
//!
//! [`metrics_kv`] returns only deterministic quantities — counter and
//! gauge values plus span/histogram *counts*, never recorded
//! wall-clock nanoseconds — so a seeded workload emits a byte-identical
//! metrics snapshot on every run (asserted in CI).  Percentile queries
//! over the recorded durations are available separately via
//! [`percentiles`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "enabled")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// A fixed-bucket log2 histogram: bucket 0 holds zeros, bucket `b`
    /// (1..=64) holds values with bit length `b`, i.e. `[2^(b-1), 2^b)`.
    /// No floats anywhere; recording is two relaxed atomic adds.
    struct Histogram {
        buckets: Vec<AtomicU64>, // 65 entries
        count: AtomicU64,
        total: AtomicU64,
    }

    impl Histogram {
        fn new() -> Self {
            Histogram {
                buckets: (0..65).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                total: AtomicU64::new(0),
            }
        }

        fn record(&self, v: u64) {
            let b = (64 - v.leading_zeros()) as usize; // 0 for v == 0
            self.buckets[b].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.total.fetch_add(v, Ordering::Relaxed);
        }

        /// Lower bound of the bucket containing the `p`-th percentile
        /// (rank = ceil(count * p / 100)), or 0 when empty.
        fn percentile(&self, p: u64) -> u64 {
            let total = self.count.load(Ordering::Relaxed);
            if total == 0 {
                return 0;
            }
            let rank = ((total * p).div_ceil(100)).max(1);
            let mut cum = 0u64;
            for (b, bucket) in self.buckets.iter().enumerate() {
                cum += bucket.load(Ordering::Relaxed);
                if cum >= rank {
                    return if b == 0 { 0 } else { 1u64 << (b - 1) };
                }
            }
            u64::MAX
        }
    }

    #[derive(Default)]
    struct Registry {
        counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
        gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
        histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(Registry::default)
    }

    fn counter(name: &str) -> Arc<AtomicU64> {
        let mut map = registry().counters.lock().expect("obs counters lock");
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    fn histogram(name: &str) -> Arc<Histogram> {
        let mut map = registry().histograms.lock().expect("obs histograms lock");
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// Turns recording on or off at run time (compile-time-enabled
    /// builds only; the registry itself is unaffected).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Adds `n` to the monotonic counter `name`, creating it at zero.
    pub fn add(name: &str, n: u64) {
        if is_enabled() {
            counter(name).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the monotonic counter `name` by one.
    pub fn inc(name: &str) {
        add(name, 1);
    }

    /// Sets the gauge `name` to `v` (last write wins).
    pub fn gauge_set(name: &str, v: u64) {
        if !is_enabled() {
            return;
        }
        let mut map = registry().gauges.lock().expect("obs gauges lock");
        match map.get(name) {
            Some(g) => g.store(v, Ordering::Relaxed),
            None => {
                map.insert(name.to_owned(), Arc::new(AtomicU64::new(v)));
            }
        }
    }

    /// Raises the gauge `name` to `v` if `v` exceeds its current value
    /// (a high-water mark, e.g. peak hold-buffer depth).
    pub fn gauge_max(name: &str, v: u64) {
        if !is_enabled() {
            return;
        }
        let mut map = registry().gauges.lock().expect("obs gauges lock");
        match map.get(name) {
            Some(g) => {
                g.fetch_max(v, Ordering::Relaxed);
            }
            None => {
                map.insert(name.to_owned(), Arc::new(AtomicU64::new(v)));
            }
        }
    }

    /// Records value `v` into the log2 histogram `name`.
    pub fn observe(name: &str, v: u64) {
        if is_enabled() {
            histogram(name).record(v);
        }
    }

    /// The current value of counter `name` (0 if it does not exist).
    pub fn counter_value(name: &str) -> u64 {
        registry()
            .counters
            .lock()
            .expect("obs counters lock")
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// `(p50, p95, p99)` bucket lower bounds of histogram `name`, or
    /// `None` if it has recorded nothing.
    pub fn percentiles(name: &str) -> Option<(u64, u64, u64)> {
        let h = {
            let map = registry().histograms.lock().expect("obs histograms lock");
            Arc::clone(map.get(name)?)
        };
        if h.count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some((h.percentile(50), h.percentile(95), h.percentile(99)))
    }

    /// Clears every counter, gauge and histogram.
    pub fn reset() {
        registry().counters.lock().expect("obs counters lock").clear();
        registry().gauges.lock().expect("obs gauges lock").clear();
        registry().histograms.lock().expect("obs histograms lock").clear();
    }

    /// Deterministic snapshot: sorted `(name, value)` pairs of every
    /// counter and gauge, plus each histogram's observation count as
    /// `<name>.count`.  Recorded durations themselves are excluded so a
    /// seeded run snapshots byte-identically.
    pub fn metrics_kv() -> Vec<(String, u64)> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for (name, c) in registry().counters.lock().expect("obs counters lock").iter() {
            out.insert(name.clone(), c.load(Ordering::Relaxed));
        }
        for (name, g) in registry().gauges.lock().expect("obs gauges lock").iter() {
            out.insert(name.clone(), g.load(Ordering::Relaxed));
        }
        for (name, h) in registry().histograms.lock().expect("obs histograms lock").iter() {
            out.insert(format!("{name}.count"), h.count.load(Ordering::Relaxed));
        }
        out.into_iter().collect()
    }

    /// RAII span timer: created by [`span`], records its elapsed
    /// nanoseconds into the histogram labelled with the span's label on
    /// drop.  Spans nest freely; each label aggregates independently.
    #[must_use = "a span records on drop; bind it or use obs::span!"]
    pub struct Span {
        label: &'static str,
        start: Option<Instant>,
    }

    /// Starts a span timer for `label` (no-op while disabled).
    pub fn span(label: &'static str) -> Span {
        Span {
            label,
            start: is_enabled().then(Instant::now),
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if let Some(start) = self.start {
                let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                observe(self.label, nanos);
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    //! The zero-cost stubs: identical signatures, empty inline bodies.

    /// No-op (observability compiled out).
    pub fn set_enabled(_on: bool) {}

    /// Always `false` (observability compiled out).
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op (observability compiled out).
    pub fn add(_name: &str, _n: u64) {}

    /// No-op (observability compiled out).
    pub fn inc(_name: &str) {}

    /// No-op (observability compiled out).
    pub fn gauge_set(_name: &str, _v: u64) {}

    /// No-op (observability compiled out).
    pub fn gauge_max(_name: &str, _v: u64) {}

    /// No-op (observability compiled out).
    pub fn observe(_name: &str, _v: u64) {}

    /// Always 0 (observability compiled out).
    pub fn counter_value(_name: &str) -> u64 {
        0
    }

    /// Always `None` (observability compiled out).
    pub fn percentiles(_name: &str) -> Option<(u64, u64, u64)> {
        None
    }

    /// No-op (observability compiled out).
    pub fn reset() {}

    /// Always empty (observability compiled out).
    pub fn metrics_kv() -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Unit span guard (observability compiled out).
    #[must_use = "a span records on drop; bind it or use obs::span!"]
    pub struct Span;

    /// Returns the unit guard (observability compiled out).
    pub fn span(_label: &'static str) -> Span {
        Span
    }
}

pub use imp::{
    add, counter_value, gauge_max, gauge_set, inc, is_enabled, metrics_kv, observe, percentiles,
    reset, set_enabled, span, Span,
};

/// Times the rest of the enclosing scope under `label`:
/// `obs::span!("refresh.eval");` binds a hidden [`Span`] guard that
/// records on scope exit.  Macro hygiene keeps multiple spans in one
/// scope from colliding.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        let _obs_span_guard = $crate::span($label);
    };
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global; tests in this binary serialize on
    /// one lock so counter assertions cannot race each other.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let _g = guard();
        reset();
        set_enabled(true);
        inc("z.last");
        add("a.first", 41);
        inc("a.first");
        gauge_set("m.gauge", 7);
        gauge_set("m.gauge", 9);
        assert_eq!(counter_value("a.first"), 42);
        assert_eq!(counter_value("missing"), 0);
        let kv = metrics_kv();
        assert_eq!(
            kv,
            vec![
                ("a.first".to_owned(), 42),
                ("m.gauge".to_owned(), 9),
                ("z.last".to_owned(), 1),
            ]
        );
        reset();
        assert!(metrics_kv().is_empty());
    }

    #[test]
    fn runtime_disable_drops_all_recording() {
        let _g = guard();
        reset();
        set_enabled(false);
        inc("dropped");
        gauge_set("dropped.gauge", 5);
        observe("dropped.hist", 10);
        {
            span!("dropped.span");
        }
        assert!(metrics_kv().is_empty());
        set_enabled(true);
    }

    #[test]
    fn gauge_max_is_a_high_water_mark() {
        let _g = guard();
        reset();
        set_enabled(true);
        gauge_max("hw", 3);
        gauge_max("hw", 9);
        gauge_max("hw", 5);
        assert_eq!(metrics_kv(), vec![("hw".to_owned(), 9)]);
        reset();
    }

    #[test]
    fn histogram_percentiles_use_log2_bucket_lower_bounds() {
        let _g = guard();
        reset();
        set_enabled(true);
        // 100 observations: 50 zeros, 45 in bucket [4,8), 5 in [64,128).
        for _ in 0..50 {
            observe("h", 0);
        }
        for _ in 0..45 {
            observe("h", 5);
        }
        for _ in 0..5 {
            observe("h", 100);
        }
        let (p50, p95, p99) = percentiles("h").expect("recorded");
        assert_eq!(p50, 0);
        assert_eq!(p95, 4);
        assert_eq!(p99, 64);
        assert_eq!(percentiles("empty"), None);
        // The deterministic snapshot carries the count, not durations.
        assert_eq!(metrics_kv(), vec![("h.count".to_owned(), 100)]);
        reset();
    }

    #[test]
    fn spans_nest_and_aggregate_per_label() {
        let _g = guard();
        reset();
        set_enabled(true);
        {
            span!("outer");
            for _ in 0..3 {
                span!("inner");
            }
        }
        let kv = metrics_kv();
        assert_eq!(
            kv.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["inner.count", "outer.count"]
        );
        assert_eq!(counter_value("missing"), 0);
        assert_eq!(
            kv,
            vec![("inner.count".to_owned(), 3), ("outer.count".to_owned(), 1)]
        );
        reset();
    }
}
