//! Property: compiled FTL plans — with or without index-assisted candidate
//! pruning — are an *implementation detail*.  For any random workload of
//! motion/attribute/domain updates, the materialized answer of every
//! continuous query must stay byte-identical to the plain interpreter's,
//! tick for tick.
//!
//! Failures shrink to a minimal workload and append their seed to
//! `tests/plan_equivalence.seeds`, which is replayed first on every run.

use most_core::{Database, IndexKind, RefreshMode};
use most_dbms::value::Value;
use most_spatial::{Point, Polygon, Rect, Velocity};
use most_testkit::check::{ints, one_of, tuple2, tuple3, vecs, Check, Gen};

const EXPIRATION: u64 = 120;

/// One step of a workload: advance the clock, then apply one update.
#[derive(Debug, Clone)]
enum Step {
    Motion { id: u64, vx: f64, vy: f64 },
    Price { id: u64, price: f64 },
    PriceText { id: u64 },
    Fuel { id: u64, value: f64, slope: f64 },
    Insert { x: f64, y: f64, vx: f64 },
    Remove { id: u64 },
}

fn arb_step() -> Gen<Step> {
    let id = || ints(1u64..6);
    let coord = || ints(-50i32..=50).map(|v| v as f64);
    let vel = || ints(-4i32..=4).map(|v| v as f64);
    one_of(vec![
        tuple3(id(), vel(), vel()).map(|(id, vx, vy)| Step::Motion { id, vx, vy }),
        tuple2(id(), ints(0u32..200)).map(|(id, p)| Step::Price { id, price: p as f64 }),
        id().map(|id| Step::PriceText { id }),
        tuple3(id(), ints(0u32..100), ints(-3i32..=3))
            .map(|(id, v, s)| Step::Fuel { id, value: v as f64, slope: s as f64 }),
        tuple3(coord(), coord(), vel()).map(|(x, y, vx)| Step::Insert { x, y, vx }),
        id().map(|id| Step::Remove { id }),
    ])
}

#[derive(Debug, Clone)]
struct Workload {
    objects: Vec<(f64, f64, f64, f64, f64)>, // x, y, vx, vy, price
    steps: Vec<(u64, Step)>,
    incremental: bool,
}

fn arb_workload() -> Gen<Workload> {
    let object = tuple3(
        tuple2(ints(-50i32..=50), ints(-50i32..=50)),
        tuple2(ints(-4i32..=4), ints(-4i32..=4)),
        ints(0u32..200),
    )
    .map(|((x, y), (vx, vy), p)| (x as f64, y as f64, vx as f64, vy as f64, p as f64));
    tuple3(
        vecs(object, 1..5),
        vecs(tuple2(ints(0u64..15), arb_step()), 1..7),
        ints(0u32..2).map(|v| v == 1),
    )
    .map(|(objects, steps, incremental)| Workload { objects, steps, incremental })
}

const QUERIES: &[&str] = &[
    "RETRIEVE o WHERE INSIDE(o, P)",
    "RETRIEVE o WHERE o.PRICE <= 100",
    "RETRIEVE o WHERE Eventually within 60 (INSIDE(o, P) AND o.PRICE <= 100)",
    "RETRIEVE o WHERE o.FUEL >= 20 OR INSIDE(o, P)",
];

fn build(w: &Workload) -> Database {
    let mut db = Database::new(EXPIRATION);
    for (x, y, vx, vy, price) in &w.objects {
        let id = db.insert_moving_object("cars", Point::new(*x, *y), Velocity::new(*vx, *vy));
        db.set_static(id, "PRICE", Value::from(*price)).unwrap();
    }
    db.add_region("P", Polygon::rectangle(-20.0, -20.0, 20.0, 20.0));
    if w.incremental {
        db.set_refresh_mode(RefreshMode::Incremental);
    }
    db
}

fn apply(db: &mut Database, ticks: u64, step: &Step) {
    db.advance_clock(ticks);
    // Steps may name absent objects or plain ones; rejection is part of the
    // behaviour under test and must be identical across engines, so errors
    // are ignored rather than avoided.
    match step {
        Step::Motion { id, vx, vy } => {
            let _ = db.update_motion(*id, Velocity::new(*vx, *vy));
        }
        Step::Price { id, price } => {
            let _ = db.set_static(*id, "PRICE", Value::from(*price));
        }
        Step::PriceText { id } => {
            let _ = db.set_static(*id, "PRICE", Value::Str("call us".into()));
        }
        Step::Fuel { id, value, slope } => {
            let _ = db.set_dynamic_scalar(
                *id,
                "FUEL",
                Some(*value),
                Some(most_core::AttrFunction::Linear(*slope)),
            );
        }
        Step::Insert { x, y, vx } => {
            db.insert_moving_object("cars", Point::new(*x, *y), Velocity::new(*vx, 0.0));
        }
        Step::Remove { id } => {
            let _ = db.remove_object(*id);
        }
    }
}

#[test]
fn compiled_and_indexed_plans_match_interpreter() {
    Check::new("core::compiled_and_indexed_plans_match_interpreter")
        .cases(32)
        .regressions("tests/plan_equivalence.seeds")
        .run(&arb_workload(), |w| {
            // Engine A: plain interpreter.  B: compiled plans.  C: compiled
            // plans + spatial and attribute indexes (periodically rolled to
            // fresh epochs, as the epoch engine does at boundaries).
            let mut a = build(w);
            a.set_compiled_plans(false);
            let mut b = build(w);
            let mut c = build(w);
            c.enable_spatial_index(Rect::new(-500.0, -500.0, 500.0, 500.0));
            c.enable_attr_index("PRICE", IndexKind::RTree, (-10_000.0, 10_000.0));
            let mut cqs = Vec::new();
            for text in QUERIES {
                let q = most_ftl::Query::parse(text).unwrap();
                let ia = a.register_continuous(q.clone()).unwrap();
                let ib = b.register_continuous(q.clone()).unwrap();
                let ic = c.register_continuous(q).unwrap();
                cqs.push((ia, ib, ic));
            }
            for (ticks, step) in &w.steps {
                apply(&mut a, *ticks, step);
                apply(&mut b, *ticks, step);
                apply(&mut c, *ticks, step);
                c.maintain_spatial_index();
                c.maintain_attr_index();
                for (ia, ib, ic) in &cqs {
                    let base = a.continuous_answer(*ia).unwrap();
                    assert_eq!(
                        base,
                        b.continuous_answer(*ib).unwrap(),
                        "compiled plan diverged at tick {}: {step:?}",
                        a.now()
                    );
                    assert_eq!(
                        base,
                        c.continuous_answer(*ic).unwrap(),
                        "indexed plan diverged at tick {}: {step:?}",
                        a.now()
                    );
                }
            }
        });
}
