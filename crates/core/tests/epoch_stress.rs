//! Seeded concurrent-interleaving stress suite for the epoch engine.
//!
//! Snapshot isolation, stated operationally: **every reader observes
//! exactly the state of some published epoch** — never a torn batch,
//! never a half-applied refresh — and that state is byte-identical
//! (canonical JSON of the answers) to a single-threaded oracle replaying
//! the same batch script.  Each seed derives a different update schedule
//! from the testkit RNG; writers and readers race freely under
//! `std::thread::scope` with **no sleeps anywhere** — the schedules, not
//! timing, provide the interleaving diversity.
//!
//! The suite also pins the retirement accounting (`created == retired +
//! live`, a long-pinned reader keeps exactly one old epoch alive) and
//! the one-batch-one-epoch guarantee, including the error path.  All
//! assertions go through [`most_core::EpochStats`] rather than `obs`
//! counters, so the whole file runs unchanged under
//! `--no-default-features` (obs stubs).

use most_core::{Database, EpochDb, SharedDatabase, UpdateOp};
use most_dbms::value::Value;
use most_ftl::Query;
use most_spatial::{Point, Polygon, Rect, Velocity};
use most_testkit::rng::Rng;
use most_testkit::ser::to_json_string;
use std::thread;

const SCHEDULES: u64 = 64;
const CARS: usize = 8;
const STEPS: usize = 8;

/// One writer action; each maps to exactly one published epoch.
#[derive(Debug, Clone)]
enum Step {
    Advance(u64),
    Batch(Vec<UpdateOp>),
}

/// A deterministic small world: cars with seeded positions/velocities, a
/// PRICE attribute, one region, one registered continuous query, and (on
/// even seeds) the spatial index, so epoch-boundary reconstruction is
/// exercised too.
fn build_world(seed: u64) -> (Database, Vec<u64>, u64) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new(200);
    db.add_region("P", Polygon::rectangle(-40.0, -40.0, 40.0, 40.0));
    let mut ids = Vec::new();
    for i in 0..CARS {
        let p = Point::new(rng.random_range(-80.0..80.0), rng.random_range(-80.0..80.0));
        let v = Velocity::new(rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0));
        let id = db.insert_moving_object("cars", p, v);
        db.set_static(id, "PRICE", (60.0 + 10.0 * i as f64).into()).unwrap();
        ids.push(id);
    }
    if seed.is_multiple_of(2) {
        db.enable_spatial_index(Rect::new(-2_000.0, -2_000.0, 2_000.0, 2_000.0));
    }
    let cq = db
        .register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();
    (db, ids, cq)
}

/// The seeded batch script.  Includes occasional bad object ids so the
/// error path (batch stops, prefix still publishes as one epoch) races
/// with readers too.
fn gen_script(seed: u64, ids: &[u64]) -> Vec<Step> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut steps = Vec::new();
    for _ in 0..STEPS {
        if rng.random_bool(0.4) {
            steps.push(Step::Advance(rng.random_range(1..4u64)));
        } else {
            let n = rng.random_range(1..4usize);
            let mut ops = Vec::new();
            for _ in 0..n {
                let id = if rng.random_bool(0.05) {
                    999_999 // unknown: stops the batch at this op
                } else {
                    ids[rng.below(ids.len() as u64) as usize]
                };
                if rng.random_bool(0.7) {
                    let velocity = Velocity::new(
                        rng.random_range(-2.0..2.0),
                        rng.random_range(-2.0..2.0),
                    );
                    ops.push(UpdateOp::Motion { id, velocity });
                } else {
                    ops.push(UpdateOp::Static {
                        id,
                        attr: "PRICE".into(),
                        value: Value::from(rng.random_range(40.0..200.0)),
                    });
                }
            }
            steps.push(Step::Batch(ops));
        }
    }
    steps
}

/// Canonical byte fingerprint of everything a reader can observe on one
/// epoch: the clock, an instantaneous answer, the materialized continuous
/// display, a persistent (recorded-history) answer, and the index-backed
/// region lookup.  Two states are "the same epoch" iff these bytes match.
fn observe(db: &Database, cq: u64) -> String {
    let inst = Query::parse("RETRIEVE o WHERE Eventually within 50 INSIDE(o, P)").unwrap();
    let pers = Query::parse("RETRIEVE o WHERE Eventually within 30 (o.PRICE <= 100)").unwrap();
    let mut in_rect = db
        .objects_in_rect_at(&Rect::new(-40.0, -40.0, 40.0, 40.0))
        .0;
    in_rect.sort_unstable();
    [
        db.now().to_string(),
        to_json_string(&db.instantaneous_readonly(&inst).unwrap()).unwrap(),
        to_json_string(&db.continuous_display(cq, db.now()).unwrap()).unwrap(),
        to_json_string(&db.persistent_answer(&pers, 0).unwrap()).unwrap(),
        format!("{in_rect:?}"),
    ]
    .join("\n")
}

/// Single-threaded oracle: replays the script on a private copy and
/// records the canonical observation after every step.  `expected[e]` is
/// what epoch `e` must look like, byte for byte.
fn oracle(db0: &Database, script: &[Step], cq: u64) -> Vec<String> {
    let mut db = db0.clone();
    let mut expected = vec![observe(&db, cq)];
    for step in script {
        match step {
            Step::Advance(n) => db.advance_clock(*n),
            Step::Batch(ops) => {
                let _ = db.apply_updates(ops); // same prefix-on-error semantics
            }
        }
        expected.push(observe(&db, cq));
    }
    expected
}

/// Runs one seeded schedule: a writer publishing the script step by step
/// while racing readers pin epochs and check them against the oracle.
/// Returns the number of reader observations checked.
fn run_schedule(seed: u64) -> usize {
    let (db, ids, cq) = build_world(seed);
    let script = gen_script(seed, &ids);
    let expected = oracle(&db, &script, cq);
    let shared = SharedDatabase::new(db);
    let readers = 2 + (seed as usize % 3);
    let pins_per_reader = 8 + (seed as usize % 5);
    let mut checks = 0usize;
    thread::scope(|s| {
        let writer = {
            let shared = shared.clone();
            let script = &script;
            s.spawn(move || {
                for step in script {
                    match step {
                        Step::Advance(n) => shared.advance_clock(*n),
                        Step::Batch(ops) => {
                            let _ = shared.apply_updates(ops);
                        }
                    }
                }
            })
        };
        let mut handles = Vec::new();
        for r in 0..readers {
            let shared = shared.clone();
            let expected = &expected;
            handles.push(s.spawn(move || {
                let mut done = 0usize;
                // Keep the previous pin alive across iterations so several
                // epochs are pinned at once (retirement must wait for us).
                let mut held = None;
                for i in 0..pins_per_reader {
                    let pin = shared.pin();
                    let e = pin.epoch() as usize;
                    assert!(
                        e < expected.len(),
                        "seed {seed} reader {r}: epoch {e} was never published by the oracle"
                    );
                    let got = observe(pin.db(), cq);
                    assert_eq!(
                        got, expected[e],
                        "seed {seed} reader {r} pin {i}: epoch {e} is not oracle state"
                    );
                    done += 1;
                    held = Some(pin);
                }
                drop(held);
                done
            }));
        }
        writer.join().expect("writer");
        for h in handles {
            checks += h.join().expect("reader");
        }
    });
    // Quiescent end state: the published epoch is the oracle's last state,
    // the epoch count is exactly one per step, and accounting conserves.
    let fin = shared.pin();
    assert_eq!(fin.epoch() as usize, script.len(), "seed {seed}: one epoch per step");
    assert_eq!(observe(fin.db(), cq), expected[script.len()], "seed {seed}: final state");
    drop(fin);
    let st = shared.epoch_stats();
    assert_eq!(st.created, st.retired + st.live, "seed {seed}: conservation: {st:?}");
    assert_eq!(st.live, 1, "seed {seed}: old epochs leaked: {st:?}");
    assert_eq!(st.created, script.len() as u64 + 1);
    assert_eq!(st.pending_batches, 0);
    checks
}

/// The headline stress test: 64 seeded schedules, sleep-free, every
/// reader observation byte-identical to the single-threaded oracle for
/// all three query types (instantaneous / continuous / persistent).
#[test]
fn sixty_four_seeded_schedules_preserve_snapshot_isolation() {
    let mut total = 0usize;
    for seed in 0..SCHEDULES {
        total += run_schedule(seed);
    }
    assert!(total >= 64 * 2 * 8, "suspiciously few reader checks: {total}");
}

/// Retirement regression: a long-pinned reader (a slow subscriber) keeps
/// its epoch — and only its epoch — alive while the writer advances many
/// epochs.  Memory stays bounded: `live <= 2` throughout, and the
/// conservation invariant `created == retired + live` accounts for every
/// snapshot ever made.
#[test]
fn long_pinned_reader_keeps_one_epoch_alive_with_bounded_memory() {
    let (db, ids, cq) = build_world(7);
    let shared = SharedDatabase::new(db);
    let slow = shared.pin();
    let frozen = observe(slow.db(), cq);
    for i in 1..=64u64 {
        shared
            .apply_updates(&[UpdateOp::Motion {
                id: ids[(i as usize) % ids.len()],
                velocity: Velocity::new(1.0, 0.5),
            }])
            .unwrap();
        shared.advance_clock(1);
        let st = shared.epoch_stats();
        assert_eq!(st.current, 2 * i);
        assert_eq!(st.created, st.retired + st.live, "conservation at step {i}: {st:?}");
        assert_eq!(st.live, 2, "bounded memory violated at step {i}: {st:?}");
    }
    // The pinned epoch never moved.
    assert_eq!(slow.epoch(), 0);
    assert_eq!(observe(slow.db(), cq), frozen);
    // Releasing the slow subscriber retires its epoch immediately.
    drop(slow);
    let st = shared.epoch_stats();
    assert_eq!(st.live, 1);
    assert_eq!(st.retired, st.created - 1, "epoch.retired failed to catch up: {st:?}");
}

/// One batch is one epoch, atomically: batches buffered into E+1 are
/// invisible (even mid-application) until `advance_epoch`, then all
/// become visible at once.
#[test]
fn buffered_batches_publish_atomically() {
    let (db, ids, cq) = build_world(3);
    let edb = EpochDb::new(db);
    let before = observe(edb.pin().db(), cq);
    for (k, &id) in ids.iter().enumerate().take(3) {
        edb.buffer_updates(&[UpdateOp::Motion { id, velocity: Velocity::new(3.0, 0.0) }])
            .unwrap();
        assert_eq!(edb.pin().epoch(), 0, "buffered batch {k} leaked");
        assert_eq!(observe(edb.pin().db(), cq), before, "buffered batch {k} visible");
    }
    assert_eq!(edb.stats().pending_batches, 3);
    let e = edb.advance_epoch();
    assert_eq!(e, 1);
    let pin = edb.pin();
    for (k, &id) in ids.iter().enumerate().take(3) {
        assert_eq!(
            pin.db().object(id).unwrap().velocity_at(pin.db().now()),
            Some(Velocity::new(3.0, 0.0)),
            "buffered batch {k} lost at publish"
        );
    }
    assert_eq!(edb.stats().pending_batches, 0);
}

/// The error path races too: a batch that stops at an unknown object
/// publishes its applied prefix as exactly one epoch, concurrently with
/// readers, and the oracle agrees byte for byte.
#[test]
fn error_batches_race_readers_without_tearing() {
    for seed in 100..116u64 {
        let (db, ids, cq) = build_world(seed);
        // Every batch poisoned in the middle.
        let script: Vec<Step> = (0..6)
            .map(|k| {
                Step::Batch(vec![
                    UpdateOp::Motion {
                        id: ids[k % ids.len()],
                        velocity: Velocity::new(k as f64 * 0.25, -1.0),
                    },
                    UpdateOp::Motion { id: 999_999, velocity: Velocity::zero() },
                    UpdateOp::Motion { id: ids[(k + 1) % ids.len()], velocity: Velocity::zero() },
                ])
            })
            .collect();
        let expected = oracle(&db, &script, cq);
        let shared = SharedDatabase::new(db);
        thread::scope(|s| {
            let writer = {
                let shared = shared.clone();
                let script = &script;
                s.spawn(move || {
                    for step in script {
                        if let Step::Batch(ops) = step {
                            assert!(shared.apply_updates(ops).is_err());
                        }
                    }
                })
            };
            for _ in 0..2 {
                let shared = shared.clone();
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..8 {
                        let pin = shared.pin();
                        let e = pin.epoch() as usize;
                        assert_eq!(observe(pin.db(), cq), expected[e], "seed {seed} epoch {e}");
                    }
                });
            }
            writer.join().expect("writer");
        });
        assert_eq!(shared.epoch_stats().current as usize, script.len());
    }
}
