//! Crash-recovery oracle suite for the write-ahead log.
//!
//! The contract under test: a primary killed at a **seeded random
//! record** — with a torn partial write left on disk — recovers from
//! checkpoint + WAL to a state whose [`Database::fingerprint`] and
//! registered-CQ answers are byte-identical to a never-crashed
//! single-threaded oracle, and stays identical tick for tick as both
//! resume the remaining script.  Runs across ≥ 16 seeds with varying
//! checkpoint cadences and segment sizes, so recovery is exercised from
//! a fresh checkpoint, mid-segment, and across segment rotations.
//!
//! All WAL files live under `CARGO_TARGET_TMPDIR` (inside `target/`)
//! and are removed on success.

use most_core::wal::{apply_record, DurableDb, WalConfig, WalRecord};
use most_core::{Database, UpdateOp};
use most_dbms::value::Value;
use most_ftl::Query;
use most_spatial::{Point, Polygon, Velocity};
use most_testkit::rng::Rng;
use most_testkit::ser::to_json_string;
use std::fs;
use std::path::PathBuf;

const SEEDS: u64 = 16;
const CARS: usize = 6;
const STEPS: usize = 24;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir); // stale state from a failed run
    dir
}

/// A deterministic world: cars with seeded positions/velocities, a
/// PRICE attribute, one region, one pre-registered continuous query
/// (so the initial checkpoint already carries CQ state).
fn build_world(seed: u64) -> (Database, Vec<u64>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new(500);
    db.add_region("P", Polygon::rectangle(-40.0, -40.0, 40.0, 40.0));
    let mut ids = Vec::new();
    for i in 0..CARS {
        let p = Point::new(rng.random_range(-80.0..80.0), rng.random_range(-80.0..80.0));
        let v = Velocity::new(rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0));
        let id = db.insert_moving_object("cars", p, v);
        db.set_static(id, "PRICE", (60.0 + 10.0 * i as f64).into()).unwrap();
        ids.push(id);
    }
    db.register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();
    (db, ids)
}

/// The seeded mutation script: update batches (some with a bad id, so
/// the prefix-on-error path replays too), clock advances, CQ
/// registrations and cancellations.
fn gen_script(seed: u64, ids: &[u64]) -> Vec<WalRecord> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut steps = Vec::new();
    let mut live_cqs = vec![0u64];
    let mut next_cq = 1u64;
    for _ in 0..STEPS {
        let roll = rng.f64();
        if roll < 0.30 {
            steps.push(WalRecord::Advance { ticks: rng.random_range(1..4u64) });
        } else if roll < 0.40 {
            let q = if rng.random_bool(0.5) {
                "RETRIEVE o WHERE Eventually within 40 INSIDE(o, P)"
            } else {
                "RETRIEVE o WHERE o.PRICE <= 100"
            };
            steps.push(WalRecord::Register { query: q.to_owned() });
            live_cqs.push(next_cq);
            next_cq += 1;
        } else if roll < 0.46 && live_cqs.len() > 1 {
            // Cancel a random live CQ (never the baseline one); also
            // occasionally a dead id, so the deterministic-error replay
            // path is covered.
            let cq = if rng.random_bool(0.2) {
                9_999
            } else {
                live_cqs.remove(rng.random_range(1..live_cqs.len()))
            };
            steps.push(WalRecord::Cancel { cq });
        } else {
            let n = rng.random_range(1..4usize);
            let mut ops = Vec::new();
            for _ in 0..n {
                let id = if rng.random_bool(0.05) {
                    999_999 // unknown: the batch stops here, prefix applies
                } else {
                    ids[rng.random_range(0..ids.len())]
                };
                if rng.random_bool(0.7) {
                    let velocity = Velocity::new(
                        rng.random_range(-2.0..2.0),
                        rng.random_range(-2.0..2.0),
                    );
                    ops.push(UpdateOp::Motion { id, velocity });
                } else {
                    ops.push(UpdateOp::Static {
                        id,
                        attr: "PRICE".into(),
                        value: Value::from(rng.random_range(40.0..200.0)),
                    });
                }
            }
            steps.push(WalRecord::Batch { ops });
        }
    }
    steps
}

/// Everything an observer can ask of the recovered state: the
/// fingerprint plus each live CQ's materialized answer, canonically
/// serialized.  Byte equality here is the acceptance criterion.
fn observe(db: &Database) -> (u64, String) {
    let mut cqs = String::new();
    for id in db.continuous_registry().ids() {
        cqs.push_str(&format!(
            "cq{}:{};",
            id,
            to_json_string(db.continuous_answer(id).unwrap()).unwrap()
        ));
    }
    (db.fingerprint(), cqs)
}

fn wal_config(seed: u64) -> WalConfig {
    WalConfig {
        // Small segments on odd seeds force several rotations.
        segment_bytes: if seed % 2 == 1 { 4 * 1024 } else { 256 * 1024 },
        sync: false,
        // A third of the seeds checkpoint automatically mid-run, so
        // recovery starts from a non-initial checkpoint.
        checkpoint_every: if seed.is_multiple_of(3) { 7 } else { 0 },
    }
}

#[test]
fn crash_recovery_matches_never_crashed_oracle() {
    for seed in 0..SEEDS {
        let dir = tmp_dir(&format!("wal_recovery_{seed}"));
        let (initial, ids) = build_world(seed);
        let script = gen_script(seed, &ids);
        let mut rng = Rng::seed_from_u64(seed ^ 0xc0ff_ee00_dead_beef);
        let crash_at = rng.random_range(1..script.len());

        // The never-crashed oracle replays the identical records on a
        // plain single-threaded database.
        let mut oracle = initial.clone();

        // Primary: durable, applies the script prefix, then "crashes".
        let durable =
            DurableDb::create(&dir, initial, wal_config(seed)).expect("create durable db");
        for rec in &script[..crash_at] {
            let primary_result = match rec {
                WalRecord::Batch { ops } => durable.apply_updates(ops).err(),
                WalRecord::Advance { ticks } => durable.advance_clock(*ticks).err(),
                WalRecord::Register { query } => durable.register_continuous(query).err(),
                WalRecord::Cancel { cq } => durable.cancel_continuous(*cq).err(),
            };
            let oracle_result = apply_record(&mut oracle, rec).err();
            assert_eq!(
                primary_result, oracle_result,
                "seed {seed}: primary and oracle must fail identically"
            );
        }
        let at_crash = observe(durable.pin().db());
        drop(durable); // the crash: no checkpoint, no clean shutdown

        // Leave a torn tail: a partial record (header promising more
        // bytes than exist) appended to the newest segment.
        let newest_segment = {
            let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| {
                    let p = e.unwrap().path();
                    p.extension().is_some_and(|x| x == "seg").then_some(p)
                })
                .collect();
            segs.sort();
            segs.pop().expect("at least one segment")
        };
        let mut bytes = fs::read(&newest_segment).unwrap();
        bytes.extend_from_slice(&200u32.to_le_bytes()); // length promising 200 bytes
        bytes.extend_from_slice(&0u64.to_le_bytes()); // bogus checksum
        bytes.extend_from_slice(b"torn"); // ...but only 4 arrive
        fs::write(&newest_segment, &bytes).unwrap();

        // Recover.  The torn tail must be detected and discarded; the
        // recovered state must equal both the at-crash observation and
        // the oracle.
        let (recovered, recovery) =
            DurableDb::open(&dir, wal_config(seed)).expect("recovery never fails");
        assert!(
            recovery.truncated_tail,
            "seed {seed}: the torn tail must be detected"
        );
        assert_eq!(
            observe(recovered.pin().db()),
            at_crash,
            "seed {seed}: recovery must restore the exact at-crash state"
        );
        assert_eq!(
            observe(recovered.pin().db()),
            observe(&oracle),
            "seed {seed}: recovered state must match the never-crashed oracle"
        );

        // Resume the remaining script on both; they must stay
        // byte-identical tick for tick.
        for (step, rec) in script[crash_at..].iter().enumerate() {
            let recovered_result = match rec {
                WalRecord::Batch { ops } => recovered.apply_updates(ops).err(),
                WalRecord::Advance { ticks } => recovered.advance_clock(*ticks).err(),
                WalRecord::Register { query } => recovered.register_continuous(query).err(),
                WalRecord::Cancel { cq } => recovered.cancel_continuous(*cq).err(),
            };
            let oracle_result = apply_record(&mut oracle, rec).err();
            assert_eq!(
                recovered_result, oracle_result,
                "seed {seed} step {step}: divergent error behaviour after recovery"
            );
            assert_eq!(
                observe(recovered.pin().db()),
                observe(&oracle),
                "seed {seed} step {step}: post-recovery divergence"
            );
        }

        // Epoch hygiene on the recovered engine.
        let stats = recovered.epochs().stats();
        assert_eq!(
            stats.created,
            stats.retired + stats.live,
            "seed {seed}: epoch conservation violated after recovery"
        );
        drop(recovered);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_after_clean_run_replays_everything() {
    let dir = tmp_dir("wal_clean");
    let (initial, ids) = build_world(7);
    let script = gen_script(7, &ids);
    let mut oracle = initial.clone();
    let durable = DurableDb::create(&dir, initial, WalConfig::default()).unwrap();
    for rec in &script {
        match rec {
            WalRecord::Batch { ops } => {
                let _ = durable.apply_updates(ops);
            }
            WalRecord::Advance { ticks } => durable.advance_clock(*ticks).unwrap(),
            WalRecord::Register { query } => {
                durable.register_continuous(query).map(|_| ()).unwrap()
            }
            WalRecord::Cancel { cq } => {
                let _ = durable.cancel_continuous(*cq);
            }
        }
        let _ = apply_record(&mut oracle, rec);
    }
    drop(durable);
    let (recovered, recovery) = DurableDb::open(&dir, WalConfig::default()).unwrap();
    assert!(!recovery.truncated_tail, "clean log has no torn tail");
    assert_eq!(recovery.records_replayed, script.len() as u64);
    assert_eq!(observe(recovered.pin().db()), observe(&oracle));
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_prunes_segments_and_recovery_resumes_from_it() {
    let dir = tmp_dir("wal_checkpoint");
    let (initial, ids) = build_world(3);
    let durable = DurableDb::create(
        &dir,
        initial.clone(),
        WalConfig { segment_bytes: 2 * 1024, sync: false, checkpoint_every: 0 },
    )
    .unwrap();
    let mut oracle = initial;
    let script = gen_script(3, &ids);
    for rec in &script {
        match rec {
            WalRecord::Batch { ops } => {
                let _ = durable.apply_updates(ops);
            }
            WalRecord::Advance { ticks } => durable.advance_clock(*ticks).unwrap(),
            WalRecord::Register { query } => {
                let _ = durable.register_continuous(query);
            }
            WalRecord::Cancel { cq } => {
                let _ = durable.cancel_continuous(*cq);
            }
        }
        let _ = apply_record(&mut oracle, rec);
    }
    durable.checkpoint().unwrap();
    let after_checkpoint = durable.next_seq();
    // Two more records after the checkpoint.
    durable.advance_clock(2).unwrap();
    durable.advance_clock(3).unwrap();
    oracle.advance_clock(2);
    oracle.advance_clock(3);
    drop(durable);

    let (recovered, recovery) = DurableDb::open(&dir, WalConfig::default()).unwrap();
    assert_eq!(
        recovery.checkpoint_seq, after_checkpoint,
        "recovery must start from the checkpoint, not the beginning"
    );
    assert_eq!(recovery.records_replayed, 2, "only the post-checkpoint suffix replays");
    assert_eq!(observe(recovered.pin().db()), observe(&oracle));
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}

/// The fingerprint zeroes the per-CQ `refresh_nanos` timing at its one
/// known path only — a *user attribute* that merely shares the name is
/// real state and must count toward the fingerprint.
#[test]
fn fingerprint_counts_user_attributes_named_refresh_nanos() {
    let (db, ids) = build_world(19);
    let mut a = db.clone();
    let mut b = db;
    a.set_static(ids[0], "refresh_nanos", Value::from(1.0)).unwrap();
    b.set_static(ids[0], "refresh_nanos", Value::from(2.0)).unwrap();
    assert_ne!(
        a.fingerprint(),
        b.fingerprint(),
        "states diverging only in a user attribute named refresh_nanos must not \
         fingerprint as equal"
    );
}

/// A crash between the checkpoint rename and segment pruning leaves
/// stale segments (records wholly below the checkpoint) on disk.
/// Recovery must skip them and still replay every record committed
/// after the checkpoint — across a reopen and a second recovery too.
#[test]
fn stale_segments_from_an_interrupted_prune_are_skipped() {
    let dir = tmp_dir("wal_stale_prune");
    let (initial, ids) = build_world(5);
    let durable = DurableDb::create(
        &dir,
        initial.clone(),
        WalConfig { segment_bytes: 2 * 1024, sync: false, checkpoint_every: 0 },
    )
    .unwrap();
    let mut oracle = initial;
    for rec in &gen_script(5, &ids) {
        match rec {
            WalRecord::Batch { ops } => {
                let _ = durable.apply_updates(ops);
            }
            WalRecord::Advance { ticks } => durable.advance_clock(*ticks).unwrap(),
            WalRecord::Register { query } => {
                let _ = durable.register_continuous(query);
            }
            WalRecord::Cancel { cq } => {
                let _ = durable.cancel_continuous(*cq);
            }
        }
        let _ = apply_record(&mut oracle, rec);
    }
    // Capture the pre-checkpoint segment files; writing them back after
    // the checkpoint reproduces exactly the on-disk state a crash
    // between the checkpoint rename and segment pruning leaves behind.
    let stale: Vec<(PathBuf, Vec<u8>)> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.extension()
                .is_some_and(|x| x == "seg")
                .then(|| (p.clone(), fs::read(&p).unwrap()))
        })
        .collect();
    assert!(stale.len() > 1, "small segments force several rotations");
    durable.checkpoint().unwrap();
    // Two committed post-checkpoint records.
    durable.advance_clock(2).unwrap();
    durable.advance_clock(3).unwrap();
    oracle.advance_clock(2);
    oracle.advance_clock(3);
    drop(durable); // crash
    for (path, bytes) in &stale {
        fs::write(path, bytes).unwrap(); // the prune never happened
    }

    let (recovered, recovery) = DurableDb::open(&dir, WalConfig::default()).unwrap();
    assert_eq!(
        recovery.records_replayed, 2,
        "exactly the post-checkpoint suffix replays, stale segments notwithstanding"
    );
    assert!(recovery.stale_skipped > 0, "the stale records were seen and skipped");
    assert_eq!(observe(recovered.pin().db()), observe(&oracle));

    // Commit more records with the stale segments still on disk, crash
    // again: the second recovery must not lose them either.
    recovered.advance_clock(1).unwrap();
    oracle.advance_clock(1);
    drop(recovered);
    let (again, second) = DurableDb::open(&dir, WalConfig::default()).unwrap();
    assert_eq!(second.records_replayed, 3);
    assert_eq!(observe(again.pin().db()), observe(&oracle));
    drop(again);
    let _ = fs::remove_dir_all(&dir);
}

/// A failed auto-checkpoint must not fail the mutation that triggered
/// it: the record is already durably appended and applied, so reporting
/// an error would tell the client "not applied" about a mutation that
/// was — and lose a `Register`'s assigned id.  The checkpoint retries
/// on a later append.
#[test]
fn failed_auto_checkpoint_does_not_fail_the_mutation() {
    let dir = tmp_dir("wal_ckpt_fail");
    let (initial, _) = build_world(17);
    let mut oracle = initial.clone();
    let durable = DurableDb::create(
        &dir,
        initial,
        WalConfig { segment_bytes: 256 * 1024, sync: false, checkpoint_every: 1 },
    )
    .unwrap();
    // Block the checkpoint temp path with a directory: every
    // auto-checkpoint now fails while appends keep working.
    fs::create_dir(dir.join("checkpoint.tmp")).unwrap();
    durable
        .advance_clock(1)
        .expect("the mutation is durable and applied; a checkpoint failure must not fail it");
    let cq = durable
        .register_continuous("RETRIEVE o WHERE o.PRICE <= 100")
        .expect("register must still return its assigned id");
    oracle.advance_clock(1);
    let oracle_cq =
        oracle.register_continuous(Query::parse("RETRIEVE o WHERE o.PRICE <= 100").unwrap());
    assert_eq!(Ok(cq), oracle_cq);
    // Unblock: the next mutation's auto-checkpoint retries and lands.
    fs::remove_dir(dir.join("checkpoint.tmp")).unwrap();
    durable.advance_clock(2).unwrap();
    oracle.advance_clock(2);
    drop(durable);
    let (recovered, recovery) = DurableDb::open(&dir, WalConfig::default()).unwrap();
    assert_eq!(recovery.checkpoint_seq, 3, "the retried checkpoint covers all three records");
    assert_eq!(recovery.records_replayed, 0);
    assert_eq!(observe(recovered.pin().db()), observe(&oracle));
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}

/// Asking the feed for records below the checkpoint horizon must be an
/// explicit error carrying the horizon — never a silently gapped
/// stream a replica would buffer behind forever.
#[test]
fn feed_below_the_checkpoint_horizon_is_an_explicit_error() {
    let dir = tmp_dir("wal_feed_pruned");
    let (initial, _) = build_world(13);
    let durable = DurableDb::create(&dir, initial, WalConfig::default()).unwrap();
    durable.advance_clock(1).unwrap();
    durable.advance_clock(2).unwrap();
    durable.advance_clock(3).unwrap();
    durable.checkpoint().unwrap();
    durable.advance_clock(4).unwrap();
    match durable.read_from(0) {
        Err(most_core::CoreError::WalFeedPruned { from_seq: 0, checkpoint_seq: 3 }) => {}
        other => panic!("expected WalFeedPruned {{ 0, 3 }}, got {other:?}"),
    }
    // From the horizon on, the feed serves normally.
    let suffix = durable.read_from(3).unwrap();
    assert_eq!(suffix.len(), 1);
    assert_eq!(suffix[0], (3, WalRecord::Advance { ticks: 4 }));
    drop(durable);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn feed_serves_the_committed_suffix() {
    let dir = tmp_dir("wal_feed");
    let (initial, ids) = build_world(11);
    let durable = DurableDb::create(&dir, initial.clone(), WalConfig::default()).unwrap();
    durable.advance_clock(1).unwrap();
    durable
        .apply_updates(&[UpdateOp::Motion { id: ids[0], velocity: Velocity::new(1.0, 1.0) }])
        .unwrap();
    durable.advance_clock(2).unwrap();
    let all = durable.read_from(0).unwrap();
    assert_eq!(all.len(), 3);
    assert_eq!(all[0].0, 0);
    assert_eq!(all[2].1, WalRecord::Advance { ticks: 2 });
    let suffix = durable.read_from(2).unwrap();
    assert_eq!(suffix.len(), 1);
    assert_eq!(suffix[0].0, 2);

    // A follower applying the feed from the initial state converges.
    let mut follower = initial;
    for (_, rec) in &all {
        let _ = apply_record(&mut follower, rec);
    }
    assert_eq!(follower.fingerprint(), durable.pin().db().fingerprint());
    drop(durable);
    let _ = fs::remove_dir_all(&dir);
}
