//! Torn-write property suite: recovery survives a WAL damaged at
//! **every byte offset** — truncated there, or with that byte
//! corrupted — without panicking, and never replays a partial or
//! checksum-invalid record.
//!
//! "Never replays a partial batch" is asserted exactly: the recovered
//! fingerprint must equal the oracle state after some *whole-record
//! prefix* of the logged sequence — specifically the prefix of length
//! `records_replayed` — for every damage point.  A shrinking property
//! test then varies the damage over random logs; failures shrink and
//! append their seed to `tests/wal_torn.seeds`.

use most_core::wal::{apply_record, recover, DurableDb, WalConfig, WalRecord};
use most_core::{Database, UpdateOp};
use most_ftl::Query;
use most_spatial::{Point, Polygon, Velocity};
use most_testkit::check::{ints, tuple3, Check};
use most_testkit::rng::Rng;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A compact world, so exhaustive per-byte recovery stays fast.
fn small_world() -> (Database, Vec<u64>) {
    let mut db = Database::new(200);
    db.add_region("P", Polygon::rectangle(-20.0, -20.0, 20.0, 20.0));
    let a = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
    let b = db.insert_moving_object("cars", Point::new(5.0, 5.0), Velocity::new(0.0, 1.0));
    db.register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();
    (db, vec![a, b])
}

/// Seeded records for the log under damage.
fn records(seed: u64, ids: &[u64]) -> Vec<WalRecord> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..6 {
        if rng.random_bool(0.3) {
            out.push(WalRecord::Advance { ticks: rng.random_range(1..3u64) });
        } else {
            out.push(WalRecord::Batch {
                ops: vec![UpdateOp::Motion {
                    id: ids[rng.random_range(0..ids.len())],
                    velocity: Velocity::new(
                        rng.random_range(-2.0..2.0),
                        rng.random_range(-2.0..2.0),
                    ),
                }],
            });
        }
    }
    out
}

/// Builds a one-segment WAL of `recs` in `dir`; returns the oracle
/// fingerprints after each whole-record prefix (index = records
/// applied) and the segment path.
fn build_log(dir: &Path, initial: &Database, recs: &[WalRecord]) -> (Vec<u64>, PathBuf) {
    let durable = DurableDb::create(dir, initial.clone(), WalConfig::default()).unwrap();
    let mut oracle = initial.clone();
    let mut prefixes = vec![oracle.fingerprint()];
    for rec in recs {
        match rec {
            WalRecord::Batch { ops } => {
                let _ = durable.apply_updates(ops);
            }
            WalRecord::Advance { ticks } => durable.advance_clock(*ticks).unwrap(),
            WalRecord::Register { query } => {
                let _ = durable.register_continuous(query);
            }
            WalRecord::Cancel { cq } => {
                let _ = durable.cancel_continuous(*cq);
            }
        }
        let _ = apply_record(&mut oracle, rec);
        prefixes.push(oracle.fingerprint());
    }
    drop(durable);
    let seg = dir.join("wal-00000001.seg");
    assert!(seg.exists(), "the log fits one segment");
    (prefixes, seg)
}

/// The core assertion: recovery of the damaged log must succeed
/// without panicking and land exactly on a whole-record prefix state.
fn assert_prefix_recovery(dir: &Path, prefixes: &[u64], context: &str) {
    let recovery = recover(dir).expect("recovery reads the checkpoint");
    let replayed = recovery.records_replayed as usize;
    assert!(
        replayed < prefixes.len(),
        "{context}: replayed {replayed} records, only {} were logged",
        prefixes.len() - 1
    );
    assert_eq!(
        recovery.db.fingerprint(),
        prefixes[replayed],
        "{context}: recovered state is not the {replayed}-record prefix state — \
         a partial or corrupt record was applied"
    );
}

#[test]
fn recovery_survives_damage_at_every_byte_offset() {
    let dir = tmp_dir("wal_torn_exhaustive");
    let (initial, ids) = small_world();
    let recs = records(0xA5A5, &ids);
    let (prefixes, seg) = build_log(&dir, &initial, &recs);
    let pristine = fs::read(&seg).unwrap();

    // Sanity: the undamaged log replays fully.
    assert_prefix_recovery(&dir, &prefixes, "pristine");
    let full = recover(&dir).unwrap();
    assert_eq!(full.records_replayed as usize, recs.len());
    assert!(!full.truncated_tail);

    for offset in 0..pristine.len() {
        // Truncation at `offset`: everything from it on never hit disk.
        fs::write(&seg, &pristine[..offset]).unwrap();
        assert_prefix_recovery(&dir, &prefixes, &format!("truncated at byte {offset}"));

        // Corruption at `offset`: one flipped byte.
        let mut corrupt = pristine.clone();
        corrupt[offset] ^= 0x41;
        fs::write(&seg, &corrupt).unwrap();
        let ctx = format!("corrupted at byte {offset}");
        assert_prefix_recovery(&dir, &prefixes, &ctx);
        let r = recover(&dir).unwrap();
        assert!(
            r.truncated_tail || r.records_replayed as usize == recs.len(),
            "{ctx}: damage neither detected nor harmless"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_logs_recover_to_a_whole_record_prefix() {
    Check::new("core::torn_logs_recover_to_a_whole_record_prefix")
        .cases(48)
        .regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/wal_torn.seeds"))
        .run(
            &tuple3(ints(0u64..1_000_000), ints(0u32..10_000), ints(0u8..=2)),
            |&(seed, damage_roll, kind)| {
                let dir = tmp_dir(&format!("wal_torn_prop_{seed}_{damage_roll}_{kind}"));
                let (initial, ids) = small_world();
                let recs = records(seed, &ids);
                let (prefixes, seg) = build_log(&dir, &initial, &recs);
                let pristine = fs::read(&seg).unwrap();
                let offset = damage_roll as usize % pristine.len();
                match kind {
                    0 => {
                        // Truncate.
                        fs::write(&seg, &pristine[..offset]).unwrap();
                    }
                    1 => {
                        // Flip one byte.
                        let mut c = pristine.clone();
                        c[offset] ^= 0xFF;
                        fs::write(&seg, &c).unwrap();
                    }
                    _ => {
                        // Torn duplicate tail: a partial copy of the log's
                        // own bytes appended (a crashed rewrite).
                        let mut c = pristine.clone();
                        c.extend_from_slice(&pristine[..offset]);
                        fs::write(&seg, &c).unwrap();
                    }
                }
                assert_prefix_recovery(
                    &dir,
                    &prefixes,
                    &format!("seed {seed} kind {kind} offset {offset}"),
                );
                let _ = fs::remove_dir_all(&dir);
            },
        );
}

#[test]
fn corrupt_checkpoint_errors_without_panicking() {
    let dir = tmp_dir("wal_torn_checkpoint");
    let (initial, ids) = small_world();
    let recs = records(9, &ids);
    let _ = build_log(&dir, &initial, &recs);
    let cp = dir.join("checkpoint.json");
    let text = fs::read_to_string(&cp).unwrap();
    fs::write(&cp, &text[..text.len() / 2]).unwrap();
    assert!(
        recover(&dir).is_err(),
        "a half-written checkpoint must surface as an error, not a panic or a bogus state"
    );
    let _ = fs::remove_dir_all(&dir);
}
