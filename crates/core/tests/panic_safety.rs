//! Regression tests: a panicking query evaluation must not terminate the
//! refresh pass (PR 9 satellite bugfix).
//!
//! Before the fix, `evaluate_refresh_set` joined its workers with
//! `.expect("refresh worker panicked")`: one panicking evaluation aborted
//! the entire refresh, unwound through `SharedDatabase::write`, poisoned
//! the epoch writer lock, and wedged every later mutation.  Now the panic
//! is caught at the evaluation boundary: only the offending query's
//! refresh fails (with `CoreError::EvalPanic`), every other query
//! refreshes, and the batch's mutations stay applied.
//!
//! The deliberately panicking evaluation comes from
//! `Database::set_eval_fault`: queries reading the armed attribute panic
//! at evaluation entry, on the exact production path (refresh workers,
//! epoch writers).

use most_core::{CoreError, Database, SharedDatabase, UpdateOp};
use most_ftl::Query;
use most_spatial::{Point, Polygon, Velocity};

const BOOM: &str = "BOOM";

/// A database with `n` cars moving right, a region P, a faulty CQ reading
/// the armed attribute, and a healthy spatial CQ.  Returns
/// `(db, faulty_cq, healthy_cq)`; the fault is armed after registration
/// (registration itself must evaluate cleanly).
fn armed_db(n: u64, workers: usize) -> (Database, u64, u64) {
    let mut db = Database::new(300);
    db.set_refresh_workers(workers);
    for i in 0..n {
        let id = db.insert_moving_object(
            "cars",
            Point::new(i as f64 * 5.0, 0.0),
            Velocity::new(1.0, 0.0),
        );
        db.set_static(id, BOOM, most_dbms::value::Value::from(1.0)).unwrap();
    }
    db.add_region("P", Polygon::rectangle(10.0, -10.0, 200.0, 10.0));
    let faulty = db
        .register_continuous(Query::parse(&format!("RETRIEVE o WHERE o.{BOOM} <= 100")).unwrap())
        .unwrap();
    let healthy = db
        .register_continuous(
            Query::parse("RETRIEVE o WHERE Eventually within 200 INSIDE(o, P)").unwrap(),
        )
        .unwrap();
    db.set_eval_fault(Some(BOOM.into()));
    (db, faulty, healthy)
}

/// A batch of motion updates plus one `BOOM` write, so dependency
/// filtering refreshes both the spatial CQ and the attribute-reading
/// (faulty) CQ.
fn motion_batch(n: u64) -> Vec<UpdateOp> {
    let mut ops: Vec<UpdateOp> = (0..n)
        .map(|i| UpdateOp::Motion { id: i + 1, velocity: Velocity::new(2.0, 0.0) })
        .collect();
    ops.push(UpdateOp::Static {
        id: 1,
        attr: BOOM.into(),
        value: most_dbms::value::Value::from(2.0),
    });
    ops
}

#[test]
fn panicking_evaluation_fails_only_that_query() {
    for workers in [1, 4] {
        let (mut db, faulty, healthy) = armed_db(8, workers);
        let healthy_before = db.continuous_answer(healthy).unwrap().clone();

        // The refresh pass must survive the panic and report it as an error.
        let err = db.apply_updates(&motion_batch(8)).unwrap_err();
        assert!(
            matches!(err, CoreError::EvalPanic(_)),
            "workers={workers}: expected EvalPanic, got {err:?}"
        );

        // The mutations stayed applied and the healthy CQ refreshed.
        let now = db.now();
        assert_eq!(
            db.object(1).unwrap().velocity_at(now),
            Some(Velocity::new(2.0, 0.0))
        );
        let healthy_after = db.continuous_answer(healthy).unwrap();
        assert_ne!(
            healthy_before, *healthy_after,
            "workers={workers}: healthy CQ must refresh past the panic"
        );
        // The faulty CQ still serves its pre-batch materialized answer.
        assert!(db.continuous_answer(faulty).is_ok());

        // The database is not wedged: disarm and mutate again cleanly.
        db.set_eval_fault(None);
        db.apply_updates(&motion_batch(8)).unwrap();
    }
}

#[test]
fn panicking_evaluation_is_counted_and_survives_under_incremental_mode() {
    let (mut db, _faulty, _healthy) = armed_db(4, 1);
    db.set_refresh_mode(most_core::RefreshMode::Incremental);
    let before = most_obs::counter_value("refresh.worker_panics");
    let err = db.apply_updates(&motion_batch(4)).unwrap_err();
    assert!(matches!(err, CoreError::EvalPanic(_)));
    if cfg!(feature = "obs") {
        assert!(
            most_obs::counter_value("refresh.worker_panics") > before,
            "panic must be counted in refresh.worker_panics"
        );
    }
    db.set_eval_fault(None);
    db.apply_updates(&motion_batch(4)).unwrap();
}

#[test]
fn shared_database_survives_panicking_refresh() {
    // The epoch-writer path: before the fix the panic unwound through
    // `EpochDb::write` and poisoned the writer lock; every later mutation
    // then panicked on `.expect("epoch writer lock poisoned")`.
    let (db, _faulty, healthy) = armed_db(6, 4);
    let shared = SharedDatabase::new(db);
    let err = shared.apply_updates(&motion_batch(6)).unwrap_err();
    assert!(matches!(err, CoreError::EvalPanic(_)));

    // Readers still work and see the applied batch.
    let pin = shared.pin();
    let now = pin.now();
    assert_eq!(
        pin.object(1).unwrap().velocity_at(now),
        Some(Velocity::new(2.0, 0.0))
    );
    assert!(pin.continuous_answer(healthy).is_ok());

    // The writer lock is not poisoned: disarm and keep mutating.
    shared.write(|db| db.set_eval_fault(None));
    shared.apply_updates(&motion_batch(6)).unwrap();
    shared.advance_clock(1);
}
