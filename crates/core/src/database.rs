//! The MOST database: object classes, moving objects, regions, the tick
//! clock, and the three query types.

use crate::class::{AttrKind, ClassDef};
use crate::continuous::ContinuousRegistry;
use crate::deps::{DepSet, UpdateKind};
use crate::dynamic::AttrFunction;
use crate::error::{CoreError, CoreResult};
use crate::object::MovingObject;
use crate::snapshot::{ContextMode, DbContext};
use crate::trigger::{TriggerEvent, TriggerRegistry};
use most_dbms::value::Value;
use most_ftl::answer::{Answer, AnswerTuple};
use most_ftl::plan::{AtomCache, CompiledPlan};
use most_ftl::{evaluate_query, Query};
use most_index::{DynamicAttributeIndex, IndexKind, MovingObjectIndex2D};
use most_spatial::{Point, Polygon, Rect, Velocity};
use most_temporal::{Duration, IntervalSet, Tick};
use std::collections::BTreeMap;

/// A position/velocity report from a sensor (e.g. GPS), applied as one
/// explicit update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionUpdate {
    /// New position.
    pub position: Point,
    /// New motion vector.
    pub velocity: Velocity,
}

/// One explicit update, for batched application via
/// [`Database::apply_updates`]: a whole batch shares a single refresh pass
/// (and, through [`crate::shared::SharedDatabase::apply_updates`], a single
/// lock acquisition).
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Change an object's motion vector (position continues).
    Motion {
        /// Target object.
        id: u64,
        /// New motion vector.
        velocity: Velocity,
    },
    /// Full sensor report: position and motion vector.
    Position {
        /// Target object.
        id: u64,
        /// The report.
        update: MotionUpdate,
    },
    /// Set a static attribute.
    Static {
        /// Target object.
        id: u64,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
    },
    /// Set / update a scalar dynamic attribute's sub-attributes.
    DynamicScalar {
        /// Target object.
        id: u64,
        /// Attribute name.
        attr: String,
        /// New `value` sub-attribute (kept when `None`).
        value: Option<f64>,
        /// New `function` sub-attribute (kept when `None`).
        function: Option<AttrFunction>,
    },
}

/// How continuous queries are kept fresh on explicit updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshMode {
    /// Re-evaluate every registered query in full (the paper's literal
    /// "reevaluated when an update occurs").
    #[default]
    Full,
    /// Re-evaluate only the instantiations involving the changed object —
    /// sound because an instantiation's satisfaction depends solely on the
    /// objects it binds; formulas that mention fixed object ids fall back
    /// to a full refresh (see `continuous::merge_incremental`).
    Incremental,
}

/// Cumulative database statistics (cost accounting for the experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Explicit updates applied (motion + attribute).
    pub updates: u64,
    /// Instantaneous query evaluations.
    pub instantaneous_queries: u64,
}

/// The MOST database.
///
/// Serializable for snapshot/restore (`mostql` SAVE/LOAD); the optional
/// spatial index is skipped and must be re-enabled after loading.
///
/// ```
/// use most_core::Database;
/// use most_ftl::Query;
/// use most_spatial::{Point, Polygon, Velocity};
///
/// let mut db = Database::new(1_000);
/// let car = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
/// db.add_region("P", Polygon::rectangle(90.0, -10.0, 110.0, 10.0));
///
/// // Continuous query: evaluated once, displayed from the materialized
/// // Answer(CQ) as time passes.
/// let cq = db.register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap()).unwrap();
/// assert!(db.continuous_display(cq, 0).unwrap().is_empty());
/// assert_eq!(
///     db.continuous_display(cq, 100).unwrap(),
///     vec![vec![most_dbms::value::Value::Id(car)]],
/// );
/// assert_eq!(db.continuous_evaluations(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    expiration: Duration,
    clock: Tick,
    next_id: u64,
    classes: BTreeMap<String, ClassDef>,
    objects: BTreeMap<u64, MovingObject>,
    regions: BTreeMap<String, Polygon>,
    continuous: ContinuousRegistry,
    refresh_mode: RefreshMode,
    triggers: TriggerRegistry,
    spatial_index: Option<SpatialIndexState>,
    /// Cost counters.
    pub stats: DbStats,
    // Refresh-engine knobs (runtime tuning, not part of the persisted
    // state: a loaded database starts at the defaults).
    refresh_filtering: bool,
    refresh_workers: usize,
    eval_workers: usize,
    // Compiled-plan machinery (derived acceleration state, not part of the
    // persisted snapshot: plans recompile lazily after loading).
    compiled_plans: bool,
    plans: BTreeMap<u64, PlanState>,
    plan_generation: u64,
    attr_index: Option<AttrIndexState>,
    // Fault injection for panic-safety tests (not persisted): when set,
    // evaluating any query that reads this attribute panics at evaluation
    // entry.  See `set_eval_fault`.
    eval_fault: Option<String>,
}

most_testkit::json_enum!(RefreshMode { Full, Incremental });
most_testkit::json_struct!(DbStats { updates, instantaneous_queries });
most_testkit::json_struct!(MotionUpdate { position, velocity });
most_testkit::json_enum!(UpdateOp {
    Motion { id, velocity },
    Position { id, update },
    Static { id, attr, value },
    DynamicScalar { id, attr, value, function },
});

impl most_testkit::ser::ToJson for Database {
    fn to_json(&self) -> most_testkit::ser::Json {
        // The spatial index is a derived acceleration structure; it is
        // rebuilt on demand after loading rather than serialized.
        most_testkit::ser::Json::Obj(vec![
            ("expiration".to_owned(), self.expiration.to_json()),
            ("clock".to_owned(), self.clock.to_json()),
            ("next_id".to_owned(), self.next_id.to_json()),
            ("classes".to_owned(), self.classes.to_json()),
            ("objects".to_owned(), self.objects.to_json()),
            ("regions".to_owned(), self.regions.to_json()),
            ("continuous".to_owned(), self.continuous.to_json()),
            ("refresh_mode".to_owned(), self.refresh_mode.to_json()),
            ("triggers".to_owned(), self.triggers.to_json()),
            ("stats".to_owned(), self.stats.to_json()),
        ])
    }
}

impl most_testkit::ser::FromJson for Database {
    fn from_json(j: &most_testkit::ser::Json) -> Result<Self, most_testkit::ser::JsonError> {
        Ok(Database {
            expiration: most_testkit::ser::FromJson::from_json(j.field("expiration")?)?,
            clock: most_testkit::ser::FromJson::from_json(j.field("clock")?)?,
            next_id: most_testkit::ser::FromJson::from_json(j.field("next_id")?)?,
            classes: most_testkit::ser::FromJson::from_json(j.field("classes")?)?,
            objects: most_testkit::ser::FromJson::from_json(j.field("objects")?)?,
            regions: most_testkit::ser::FromJson::from_json(j.field("regions")?)?,
            continuous: most_testkit::ser::FromJson::from_json(j.field("continuous")?)?,
            refresh_mode: most_testkit::ser::FromJson::from_json(j.field("refresh_mode")?)?,
            triggers: most_testkit::ser::FromJson::from_json(j.field("triggers")?)?,
            spatial_index: None,
            stats: most_testkit::ser::FromJson::from_json(j.field("stats")?)?,
            refresh_filtering: true,
            refresh_workers: 1,
            eval_workers: 1,
            compiled_plans: true,
            plans: BTreeMap::new(),
            plan_generation: 0,
            attr_index: None,
            eval_fault: None,
        })
    }
}

#[derive(Debug, Clone)]
struct SpatialIndexState {
    index: MovingObjectIndex2D,
    space: Rect,
    epoch: Tick,
}

/// Compiled-plan state of one registered continuous query: the flat atom
/// plan built once at registration, each atom's statically-extracted
/// dependency set, and the cached atom relations surviving across refreshes
/// (see [`most_ftl::plan`]).
#[derive(Debug, Clone)]
pub(crate) struct PlanState {
    pub(crate) plan: CompiledPlan,
    atom_deps: Vec<(String, DepSet)>,
    pub(crate) cache: AtomCache,
}

impl PlanState {
    pub(crate) fn compile(q: &Query) -> PlanState {
        let plan = CompiledPlan::compile(q);
        let atom_deps = plan
            .atoms()
            .iter()
            .map(|a| (a.key.clone(), DepSet::of_formula(&a.formula)))
            .collect();
        PlanState { plan, atom_deps, cache: AtomCache::new() }
    }

    /// Stamps the cache to the current `(clock, generation)` and drops the
    /// entries this update batch can affect: exactly the atoms whose
    /// dependency set one of the change kinds touches (a `Domain` change
    /// touches every atom).  Unknown keys are dropped conservatively.
    fn invalidate_affected(&mut self, stamp: (u64, u64), changes: &[(u64, UpdateKind)]) {
        self.cache.ensure_stamp(stamp);
        let atom_deps = &self.atom_deps;
        self.cache.invalidate(|key| {
            atom_deps
                .iter()
                .find(|(k, _)| k == key)
                .is_none_or(|(_, deps)| {
                    changes.iter().any(|(_, kind)| deps.affected_by(kind))
                })
        });
    }
}

/// The Section 4 dynamic-attribute index wired into the refresh engine:
/// one attribute's value lines, so range atoms over that attribute fetch
/// index-pruned candidate sets.  Writes the line model cannot absorb
/// exactly (non-numeric values, quadratic functions, lines leaving the
/// declared value range, domain changes) set `dirty`: lookups return
/// `None` — falling back to full enumeration, so answers never depend on
/// index health — until the next epoch-boundary rebuild.
#[derive(Debug, Clone)]
struct AttrIndexState {
    attr: String,
    kind: IndexKind,
    index: DynamicAttributeIndex,
    epoch: Tick,
    dirty: bool,
}

/// How one object's attribute looks to the dynamic-attribute index at a
/// tick.  `Absent` covers both "no such attribute" and a non-numeric
/// value: neither can satisfy a numeric range atom while it holds, so the
/// object may be left out of the index.  `Quadratic` values vary in ways a
/// line cannot bound and force the index dirty instead.
enum AttrLine {
    Absent,
    Line(f64, f64),
    Quadratic,
}

fn attr_line(obj: &MovingObject, attr: &str, now: Tick) -> AttrLine {
    // A scalar dynamic attribute takes precedence over a static one of the
    // same name, matching evaluation order (`EvalContext::dynamic_series`
    // is consulted before `attr_series`).
    if let Some(state) = obj.dynamic_at(attr, now) {
        return match state.function {
            AttrFunction::Linear(slope) => {
                let value = state.value + slope * (now as f64 - state.updatetime as f64);
                AttrLine::Line(value, slope)
            }
            AttrFunction::Quadratic { .. } => AttrLine::Quadratic,
        };
    }
    match obj.static_at(attr, now).and_then(Value::as_f64) {
        Some(value) => AttrLine::Line(value, 0.0),
        None => AttrLine::Absent,
    }
}

/// Whether a line starting at `value` with `slope` stays inside the
/// declared value range for `span` ticks (linear, so the extremes are at
/// the endpoints) — the structure's bounds only cover that range.
fn line_in_range(value: f64, slope: f64, span: Tick, range: (f64, f64)) -> bool {
    let end = value + slope * span as f64;
    range.0 <= value && value <= range.1 && range.0 <= end && end <= range.1
}

impl Database {
    /// Creates a database whose queries expire `expiration` ticks after
    /// entry (the finite stand-in for the infinite future history; see
    /// Section 2.3).  The clock starts at tick 0.
    pub fn new(expiration: Duration) -> Self {
        Database {
            expiration,
            clock: 0,
            next_id: 1,
            classes: BTreeMap::new(),
            objects: BTreeMap::new(),
            regions: BTreeMap::new(),
            continuous: ContinuousRegistry::new(),
            refresh_mode: RefreshMode::default(),
            triggers: TriggerRegistry::new(),
            spatial_index: None,
            stats: DbStats::default(),
            refresh_filtering: true,
            refresh_workers: 1,
            eval_workers: 1,
            compiled_plans: true,
            plans: BTreeMap::new(),
            plan_generation: 0,
            attr_index: None,
            eval_fault: None,
        }
    }

    // ------------------------------------------------------------------
    // Clock
    // ------------------------------------------------------------------

    /// The current clock tick (the paper's `time` object).
    pub fn now(&self) -> Tick {
        self.clock
    }

    /// Query expiration (horizon length).
    pub fn expiration(&self) -> Duration {
        self.expiration
    }

    /// Advances the clock.  No re-evaluation happens: the whole point of
    /// the MOST model is that answers change with time *without* updates.
    pub fn advance_clock(&mut self, ticks: Duration) {
        self.clock += ticks;
    }

    /// Selects how continuous queries are refreshed on updates.
    pub fn set_refresh_mode(&mut self, mode: RefreshMode) {
        self.refresh_mode = mode;
    }

    /// The current refresh mode.
    pub fn refresh_mode(&self) -> RefreshMode {
        self.refresh_mode
    }

    /// Enables/disables dependency-set filtering of refreshes (on by
    /// default).  With filtering off, every explicit update re-evaluates
    /// every registered query — the paper's literal reading.
    pub fn set_refresh_filtering(&mut self, on: bool) {
        self.refresh_filtering = on;
    }

    /// Whether dependency-set filtering is enabled.
    pub fn refresh_filtering(&self) -> bool {
        self.refresh_filtering
    }

    /// Sets how many worker threads a refresh pass may use to re-evaluate
    /// queries concurrently (1 = serial, the default).
    pub fn set_refresh_workers(&mut self, workers: usize) {
        self.refresh_workers = workers.max(1);
    }

    /// The refresh worker count.
    pub fn refresh_workers(&self) -> usize {
        self.refresh_workers
    }

    /// Sets how many worker threads a *single* evaluation may use to shard
    /// its per-object candidate loops (1 = serial, the default).  Refresh
    /// passes that already shard across queries evaluate each query
    /// serially to avoid nested thread pools.
    pub fn set_eval_workers(&mut self, workers: usize) {
        self.eval_workers = workers.max(1);
    }

    /// The per-evaluation worker count.
    pub fn eval_workers(&self) -> usize {
        self.eval_workers
    }

    /// Enables/disables compiled query plans for continuous queries (on by
    /// default).  With plans on, each registered query is lowered once into
    /// a flat atom plan whose per-atom interval relations are cached across
    /// refreshes and invalidated per dependency set.  Disabling drops every
    /// plan and cache; refreshes fall back to interpreting the AST.
    pub fn set_compiled_plans(&mut self, on: bool) {
        self.compiled_plans = on;
        if !on {
            self.plans.clear();
        }
    }

    /// Whether compiled plans are enabled.
    pub fn compiled_plans(&self) -> bool {
        self.compiled_plans
    }

    // ------------------------------------------------------------------
    // Schema & objects
    // ------------------------------------------------------------------

    /// Declares (or replaces) an object class.
    pub fn define_class(&mut self, class: ClassDef) {
        self.classes.insert(class.name.clone(), class);
    }

    /// Inserts a spatial object of `class` at the current tick.  An
    /// undeclared class is auto-created as an open spatial class.
    pub fn insert_moving_object(
        &mut self,
        class: impl Into<String>,
        position: Point,
        velocity: Velocity,
    ) -> u64 {
        let id = self.next_id;
        self.insert_moving_object_with_id(id, class, position, velocity)
            .expect("next_id is never taken");
        id
    }

    /// Inserts a spatial object under an explicit, caller-chosen id.  The
    /// sharded engine routes objects to per-shard databases by a global id
    /// — shards must not assign their own (colliding) local ids, and the
    /// sharded world must be byte-identical to a single-shard reference
    /// holding the same ids.
    ///
    /// Errors with [`CoreError::DuplicateObject`] if the id already exists;
    /// `next_id` advances past `id` so implicit inserts never collide.
    pub fn insert_moving_object_with_id(
        &mut self,
        id: u64,
        class: impl Into<String>,
        position: Point,
        velocity: Velocity,
    ) -> CoreResult<()> {
        if self.objects.contains_key(&id) {
            return Err(CoreError::DuplicateObject(id));
        }
        let class = class.into();
        self.classes
            .entry(class.clone())
            .or_insert_with(|| ClassDef::spatial(class.clone()));
        self.next_id = self.next_id.max(id + 1);
        let obj = MovingObject::spatial(id, class, self.clock, position, velocity);
        if let Some(ix) = &mut self.spatial_index {
            ix.index.insert(id, self.clock - ix.epoch, position, velocity);
        }
        if let Some(ix) = &mut self.attr_index {
            // The newcomer may acquire the indexed attribute later; rebuild
            // at the next epoch boundary rather than tracking it piecemeal.
            ix.dirty = true;
        }
        self.objects.insert(id, obj);
        if !self.continuous.is_empty() {
            // An insertion is an explicit update: refresh materialized
            // answers.  Evaluation cannot newly fail here — the queries
            // evaluated successfully at registration and the domain only
            // gained an object.
            self.after_updates(&[(id, UpdateKind::Domain)])
                .expect("continuous refresh after insert");
            self.stats.updates -= 1; // inserts are not counted as updates
        }
        Ok(())
    }

    /// Inserts a non-spatial object of `class` (auto-created as open).
    pub fn insert_plain_object(&mut self, class: impl Into<String>) -> u64 {
        let class = class.into();
        self.classes
            .entry(class.clone())
            .or_insert_with(|| ClassDef::plain(class.clone()));
        let id = self.next_id;
        self.next_id += 1;
        self.objects.insert(id, MovingObject::plain(id, class));
        if let Some(ix) = &mut self.attr_index {
            ix.dirty = true;
        }
        if !self.continuous.is_empty() {
            self.after_updates(&[(id, UpdateKind::Domain)])
                .expect("continuous refresh after insert");
            self.stats.updates -= 1; // inserts are not counted as updates
        }
        id
    }

    /// Immutable object access.
    pub fn object(&self, id: u64) -> CoreResult<&MovingObject> {
        self.objects.get(&id).ok_or(CoreError::UnknownObject(id))
    }

    /// All object ids, ascending.
    pub fn object_ids(&self) -> Vec<u64> {
        self.objects.keys().copied().collect()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the database holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Removes an object (e.g. a vehicle leaving the monitored fleet).
    /// Continuous queries are refreshed, exactly as for any other explicit
    /// update.
    pub fn remove_object(&mut self, id: u64) -> CoreResult<()> {
        if self.objects.remove(&id).is_none() {
            return Err(CoreError::UnknownObject(id));
        }
        if let Some(ix) = &mut self.spatial_index {
            ix.index.remove(id);
        }
        if let Some(ix) = &mut self.attr_index {
            ix.dirty = true;
        }
        self.after_updates(&[(id, UpdateKind::Domain)])
    }

    /// Registers a named region (polygon) for `INSIDE` / `OUTSIDE`.
    pub fn add_region(&mut self, name: impl Into<String>, poly: Polygon) {
        self.regions.insert(name.into(), poly);
        // Region (re)definitions bypass the update classifier; bumping the
        // generation flushes every compiled-plan cache at its next use.
        self.plan_generation += 1;
    }

    /// The paper's opening query — "How far is the car with license plate
    /// RWW860 from the nearest hospital?": the nearest *other* object to
    /// `from` at the current tick, optionally restricted to a class,
    /// together with its distance.  `None` when no candidate exists.
    pub fn nearest_object(
        &self,
        from: u64,
        class: Option<&str>,
    ) -> CoreResult<Option<(u64, f64)>> {
        let now = self.clock;
        let origin = self
            .object(from)?
            .position_at(now)
            .ok_or_else(|| CoreError::AttributeKind {
                attr: "POSITION".into(),
                detail: "nearest_object from a non-spatial object".into(),
            })?;
        Ok(self
            .objects
            .values()
            .filter(|o| o.id != from)
            .filter(|o| class.is_none_or(|c| o.class == c))
            .filter_map(|o| o.position_at(now).map(|p| (o.id, origin.dist(p))))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))))
    }

    /// Looks up a region.
    pub fn region(&self, name: &str) -> Option<&Polygon> {
        self.regions.get(name)
    }

    /// Iterates all named regions in name order.
    pub fn regions_iter(&self) -> impl Iterator<Item = (&str, &Polygon)> {
        self.regions.iter().map(|(name, poly)| (name.as_str(), poly))
    }

    // ------------------------------------------------------------------
    // Updates (all stamped with the current clock tick; the paper assumes
    // valid-time == transaction-time)
    // ------------------------------------------------------------------

    /// Updates an object's motion vector; the position continues from the
    /// current trajectory ("the computer can automatically update the
    /// motion vector when it senses a change in speed or direction").
    pub fn update_motion(&mut self, id: u64, velocity: Velocity) -> CoreResult<()> {
        self.apply_motion(id, velocity)?;
        self.after_updates(&[(id, UpdateKind::Motion)])
    }

    /// Explicitly sets both position and motion vector (a full sensor
    /// report).
    pub fn update_position(&mut self, id: u64, update: MotionUpdate) -> CoreResult<()> {
        self.apply_position(id, update)?;
        self.after_updates(&[(id, UpdateKind::Motion)])
    }

    /// Sets a static attribute.
    pub fn set_static(&mut self, id: u64, name: &str, value: Value) -> CoreResult<()> {
        self.apply_static(id, name, value)?;
        self.after_updates(&[(id, UpdateKind::Attr(name.to_owned()))])
    }

    /// Sets / updates a scalar dynamic attribute (e.g. FUEL): either
    /// sub-attribute may be changed, per Section 2.1.
    pub fn set_dynamic_scalar(
        &mut self,
        id: u64,
        name: &str,
        value: Option<f64>,
        function: Option<AttrFunction>,
    ) -> CoreResult<()> {
        self.apply_dynamic_scalar(id, name, value, function)?;
        self.after_updates(&[(id, UpdateKind::Attr(name.to_owned()))])
    }

    /// Applies a whole batch of explicit updates under **one** refresh
    /// pass: the batch mutates first, then continuous queries refresh once
    /// against the final state — equivalent to per-update refreshes at the
    /// same clock tick (every refresh merges at the same boundary, and the
    /// last merge of a sequence at one boundary wins), but paying one
    /// dependency-filter walk and one (possibly parallel) evaluation sweep.
    ///
    /// On an invalid op the batch stops at the first error: prior ops stay
    /// applied (matching their individual-call semantics), a refresh runs
    /// for them, and the first error is returned.
    pub fn apply_updates(&mut self, ops: &[UpdateOp]) -> CoreResult<()> {
        let mut applied: Vec<(u64, UpdateKind)> = Vec::with_capacity(ops.len());
        let mut first_err = None;
        for op in ops {
            let changed = match op {
                UpdateOp::Motion { id, velocity } => self
                    .apply_motion(*id, *velocity)
                    .map(|()| (*id, UpdateKind::Motion)),
                UpdateOp::Position { id, update } => self
                    .apply_position(*id, *update)
                    .map(|()| (*id, UpdateKind::Motion)),
                UpdateOp::Static { id, attr, value } => self
                    .apply_static(*id, attr, value.clone())
                    .map(|()| (*id, UpdateKind::Attr(attr.clone()))),
                UpdateOp::DynamicScalar { id, attr, value, function } => self
                    .apply_dynamic_scalar(*id, attr, *value, *function)
                    .map(|()| (*id, UpdateKind::Attr(attr.clone()))),
            };
            match changed {
                Ok(change) => applied.push(change),
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        let refreshed = self.after_updates(&applied);
        match first_err {
            Some(e) => Err(e),
            None => refreshed,
        }
    }

    /// Motion-vector mutation without the refresh hook.
    fn apply_motion(&mut self, id: u64, velocity: Velocity) -> CoreResult<()> {
        let now = self.clock;
        let obj = self.objects.get_mut(&id).ok_or(CoreError::UnknownObject(id))?;
        let position = obj
            .position_at(now)
            .ok_or_else(|| CoreError::AttributeKind {
                attr: "POSITION".into(),
                detail: "motion update on a non-spatial object".into(),
            })?;
        obj.update_velocity(now, velocity);
        if let Some(ix) = &mut self.spatial_index {
            ix.index.update(id, now - ix.epoch, position, velocity);
        }
        Ok(())
    }

    /// Position-report mutation without the refresh hook.
    fn apply_position(&mut self, id: u64, update: MotionUpdate) -> CoreResult<()> {
        let now = self.clock;
        let obj = self.objects.get_mut(&id).ok_or(CoreError::UnknownObject(id))?;
        if obj.trajectory().is_none() {
            return Err(CoreError::AttributeKind {
                attr: "POSITION".into(),
                detail: "position update on a non-spatial object".into(),
            });
        }
        obj.update_position(now, update.position, update.velocity);
        if let Some(ix) = &mut self.spatial_index {
            ix.index
                .update(id, now - ix.epoch, update.position, update.velocity);
        }
        Ok(())
    }

    /// Static-attribute mutation without the refresh hook.
    fn apply_static(&mut self, id: u64, name: &str, value: Value) -> CoreResult<()> {
        let now = self.clock;
        let obj = self.objects.get_mut(&id).ok_or(CoreError::UnknownObject(id))?;
        let class = self
            .classes
            .get(&obj.class)
            .ok_or_else(|| CoreError::UnknownClass(obj.class.clone()))?;
        if !class.admits(name, AttrKind::Static) {
            return Err(CoreError::UndeclaredAttribute {
                class: class.name.clone(),
                attr: name.to_owned(),
            });
        }
        obj.set_static(now, name, value);
        self.attr_index_on_write(id, name);
        Ok(())
    }

    /// Dynamic-attribute mutation without the refresh hook.
    fn apply_dynamic_scalar(
        &mut self,
        id: u64,
        name: &str,
        value: Option<f64>,
        function: Option<AttrFunction>,
    ) -> CoreResult<()> {
        let now = self.clock;
        let obj = self.objects.get_mut(&id).ok_or(CoreError::UnknownObject(id))?;
        let class = self
            .classes
            .get(&obj.class)
            .ok_or_else(|| CoreError::UnknownClass(obj.class.clone()))?;
        if !class.admits(name, AttrKind::Dynamic) {
            return Err(CoreError::UndeclaredAttribute {
                class: class.name.clone(),
                attr: name.to_owned(),
            });
        }
        obj.set_dynamic(now, name, value, function);
        self.attr_index_on_write(id, name);
        Ok(())
    }

    /// Absorbs one attribute write into the dynamic-attribute index — the
    /// paper's model: an update replaces the tail of the object's value
    /// line from the current tick onwards — or marks the index dirty when
    /// the new state cannot be represented as an in-range line.
    fn attr_index_on_write(&mut self, id: u64, name: &str) {
        let now = self.clock;
        let (rel, lifetime, range) = match &self.attr_index {
            Some(ix) if ix.attr == name && !ix.dirty && now - ix.epoch <= ix.index.lifetime() => {
                (now - ix.epoch, ix.index.lifetime(), ix.index.value_range())
            }
            Some(ix) if ix.attr == name && !ix.dirty => {
                // The clock has outrun the index lifetime; leave the rebuild
                // to the next epoch boundary.
                self.attr_index.as_mut().expect("matched Some").dirty = true;
                return;
            }
            _ => return,
        };
        let line = self.objects.get(&id).map(|o| attr_line(o, name, now));
        let ix = self.attr_index.as_mut().expect("checked above");
        match line {
            Some(AttrLine::Line(value, slope))
                if line_in_range(value, slope, lifetime - rel, range) =>
            {
                if ix.index.contains(id) {
                    ix.index.update(id, rel, value, slope);
                } else {
                    ix.index.insert(id, rel, value, slope);
                }
            }
            // A value no numeric line represents: sound to leave the object
            // unindexed, but an already-indexed line would go stale.
            Some(AttrLine::Absent) if !ix.index.contains(id) => {}
            _ => ix.dirty = true,
        }
    }

    /// Refresh hook run after every explicit update batch: continuous
    /// queries are the materialized views that may now be stale
    /// (Section 2.3).  Each change names the updated/inserted/removed
    /// object and the [`UpdateKind`] the dependency filter tests.
    ///
    /// The pass runs in three steps: (1) dependency filtering — queries
    /// whose [`DepSet`](crate::deps::DepSet) no change can affect are
    /// skipped outright (`skipped_refreshes`); (2) evaluation — the
    /// remaining queries re-evaluate, sharded over
    /// [`Database::refresh_workers`] threads in [`RefreshMode::Full`];
    /// (3) merge — answers merge serially at the clock-tick boundary.
    fn after_updates(&mut self, changes: &[(u64, UpdateKind)]) -> CoreResult<()> {
        self.stats.updates += changes.len() as u64;
        if changes.is_empty() || self.continuous.is_empty() {
            return Ok(());
        }
        let boundary = self.clock;
        most_obs::span!("refresh.eval");
        // Step 0: compiled-plan bookkeeping.  Ensure every registered query
        // has a plan (lazy compilation covers freshly-loaded databases),
        // then stamp each cache to the current tick/generation and drop
        // exactly the cached atoms this batch can affect.
        if self.compiled_plans {
            for id in self.continuous.ids() {
                if !self.plans.contains_key(&id) {
                    let entry = self.continuous.get(id).expect("id from ids() snapshot");
                    self.plans.insert(id, PlanState::compile(&entry.query));
                }
            }
        }
        let stamp = (self.clock, self.plan_generation);
        for state in self.plans.values_mut() {
            state.invalidate_affected(stamp, changes);
        }
        // Step 1: dependency filtering.
        let mut to_refresh: Vec<(u64, Query)> = Vec::new();
        let mut skipped = 0u64;
        for id in self.continuous.ids() {
            let relevant = {
                let entry = self.continuous.get(id).expect("id from ids() snapshot");
                !self.refresh_filtering
                    || changes.iter().any(|(_, kind)| entry.deps.affected_by(kind))
            };
            if relevant {
                let query = self
                    .continuous
                    .get(id)
                    .expect("id from ids() snapshot")
                    .query
                    .clone();
                to_refresh.push((id, query));
            } else {
                self.continuous.note_skipped(id);
                skipped += 1;
            }
        }
        most_obs::add("refresh.total", to_refresh.len() as u64 + skipped);
        most_obs::add("refresh.skipped", skipped);
        most_obs::add("refresh.evaluated", to_refresh.len() as u64);
        // Step 2/3 for the incremental mode: per changed object, restricted
        // re-evaluation against the final batch state (each pinned
        // evaluation sees all mutations, so the per-object merges commute).
        // A failing (or panicking) evaluation must fail only the offending
        // query's refresh: every other query still refreshes, and the first
        // error is reported to the caller after the pass completes.
        let mut first_err: Option<CoreError> = None;
        let mut full: Vec<(u64, Query)> = Vec::new();
        for (id, query) in to_refresh {
            if self.refresh_mode == RefreshMode::Incremental
                && !formula_mentions_fixed_objects(&query.formula)
            {
                let mut ids: Vec<u64> = changes.iter().map(|(oid, _)| *oid).collect();
                ids.sort_unstable();
                ids.dedup();
                for oid in ids {
                    let start = std::time::Instant::now();
                    let fresh = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || self.evaluate_pinned(&query, oid),
                    ))
                    .unwrap_or_else(|payload| {
                        most_obs::inc("refresh.worker_panics");
                        Err(CoreError::EvalPanic(crate::refresh::panic_message(
                            &payload,
                        )))
                    });
                    let fresh = match fresh {
                        Ok(fresh) => fresh,
                        Err(e) => {
                            first_err.get_or_insert(e);
                            break; // this query keeps its pre-batch answer
                        }
                    };
                    let nanos = start.elapsed().as_nanos() as u64;
                    most_obs::inc("refresh.incremental");
                    most_obs::observe("refresh.query_nanos", nanos);
                    self.continuous
                        .refresh_incremental(id, boundary, &Value::Id(oid), fresh, nanos);
                }
            } else {
                full.push((id, query));
            }
        }
        // Step 2/3 for full refreshes: evaluate (possibly in parallel),
        // then merge serially.  Plan states travel with their queries so
        // worker threads can replay and refill the atom caches; every state
        // is reinserted before any result is inspected, so an evaluation
        // error cannot leak plans.
        let plan_states: Vec<Option<PlanState>> =
            full.iter().map(|(id, _)| self.plans.remove(id)).collect();
        let results = crate::refresh::evaluate_refresh_set(
            self,
            &full,
            plan_states,
            self.refresh_workers,
            self.eval_workers,
        );
        let mut merged = Vec::with_capacity(results.len());
        for (id, result, nanos, state) in results {
            if let Some(state) = state {
                self.plans.insert(id, state);
            }
            merged.push((id, result, nanos));
        }
        for (id, result, nanos) in merged {
            match result {
                Ok(fresh) => self.continuous.refresh(id, boundary, fresh, nanos),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Evaluates `q` restricted to instantiations that bind `id` in at
    /// least one target variable.  For each target `v`, the variable is
    /// *substituted* by the constant object (`Formula::pin`), so every atom
    /// mentioning `v` evaluates once for that object instead of being
    /// enumerated over the whole domain — this is what makes the
    /// incremental refresh cheaper than a full one.
    fn evaluate_pinned(&self, q: &Query, id: u64) -> CoreResult<Answer> {
        let mut merged: std::collections::BTreeMap<Vec<Value>, IntervalSet> =
            std::collections::BTreeMap::new();
        let pin_value = Value::Id(id);
        for (pos, var) in q.targets.iter().enumerate() {
            let pinned_formula = q.formula.pin(var, &pin_value);
            let other_targets: Vec<String> = q
                .targets
                .iter()
                .filter(|t| *t != var)
                .cloned()
                .collect();
            let pinned = Query { targets: other_targets.clone(), formula: pinned_formula };
            let answer = self.evaluate_global(&pinned)?;
            for tup in answer.tuples {
                // Re-insert the pinned value at every position held by
                // `var` (duplicate target names share one column value).
                let mut values = Vec::with_capacity(q.targets.len());
                let mut it = tup.values.into_iter();
                for (i, t) in q.targets.iter().enumerate() {
                    if i == pos || t == var {
                        values.push(pin_value.clone());
                    } else {
                        values.push(it.next().expect("arity matches other_targets"));
                    }
                }
                merged
                    .entry(values)
                    .and_modify(|s| *s = s.union(&tup.intervals))
                    .or_insert(tup.intervals);
            }
        }
        Ok(Answer::new(
            q.targets.clone(),
            merged
                .into_iter()
                .map(|(values, intervals)| AnswerTuple { values, intervals })
                .collect(),
        ))
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The FTL evaluation context for the current state ("the database
    /// implicitly represents future states of the system being modeled").
    pub fn current_context(&self) -> DbContext<'_> {
        DbContext::new(self, self.clock, ContextMode::Current)
    }

    /// The recorded-history context from `origin` (persistent queries).
    pub fn recorded_context(&self, origin: Tick) -> DbContext<'_> {
        DbContext::new(self, origin, ContextMode::Recorded)
    }

    /// Evaluates a query on the implicit future history starting now and
    /// returns the answer in **global** clock ticks.
    fn evaluate_global(&self, q: &Query) -> CoreResult<Answer> {
        self.evaluate_global_with(q, self.eval_workers)
    }

    /// [`Database::evaluate_global`] with an explicit per-evaluation worker
    /// count — the refresh engine passes 1 when it already shards across
    /// queries, to avoid nested thread pools.
    pub(crate) fn evaluate_global_with(&self, q: &Query, eval_workers: usize) -> CoreResult<Answer> {
        if let Some(marker) = &self.eval_fault {
            if DepSet::of_query(q).attrs.contains(marker) {
                panic!("injected evaluation fault: attribute `{marker}`");
            }
        }
        let ctx = self.current_context().with_eval_workers(eval_workers);
        let local = evaluate_query(&ctx, q)?;
        Ok(shift_answer(local, self.clock))
    }

    /// Arms (or clears) evaluation fault injection: while set, evaluating
    /// any query that reads the named attribute panics at evaluation entry.
    /// This is the deterministic stand-in for "a query evaluation
    /// panicked" used by the panic-safety regression tests — the panic
    /// travels the exact production path (refresh workers, epoch writers,
    /// server sessions) without depending on an evaluator bug to trigger
    /// it.  Never set outside tests.
    pub fn set_eval_fault(&mut self, attr: Option<String>) {
        self.eval_fault = attr;
    }

    /// [`Database::evaluate_global_with`] through a compiled plan: cached
    /// atom relations are replayed verbatim, freshly computed ones are
    /// harvested back into the plan's cache for the next refresh.
    pub(crate) fn evaluate_global_with_plan(
        &self,
        state: &mut PlanState,
        eval_workers: usize,
    ) -> CoreResult<Answer> {
        if let Some(marker) = &self.eval_fault {
            if state.atom_deps.iter().any(|(_, d)| d.attrs.contains(marker)) {
                panic!("injected evaluation fault: attribute `{marker}`");
            }
        }
        let ctx = self.current_context().with_eval_workers(eval_workers);
        let local = most_ftl::evaluate_compiled(&ctx, &state.plan, &mut state.cache)?;
        Ok(shift_answer(local, self.clock))
    }

    /// Evaluates an instantaneous query without mutating statistics —
    /// the read-path used by [`crate::shared::SharedDatabase`] so that
    /// concurrent readers need no write lock.
    pub fn instantaneous_readonly(&self, q: &Query) -> CoreResult<Answer> {
        self.evaluate_global(q)
    }

    /// Evaluates a **persistent query** anchored at `origin` without
    /// mutating any state: the query runs against the *recorded* history
    /// starting at `origin` (replayed updates up to the current clock,
    /// extrapolation beyond it) and the answer comes back in global ticks.
    ///
    /// This is the read-path equivalent of
    /// [`crate::persistent::PersistentQuery::answer`], usable under a
    /// shared read lock — the serving layer re-evaluates a client's
    /// persistent query on demand without tracking per-query state
    /// server-side (the anchor tick travels with each request).
    pub fn persistent_answer(&self, q: &Query, origin: Tick) -> CoreResult<Answer> {
        let ctx = self.recorded_context(origin);
        let local = evaluate_query(&ctx, q)?;
        Ok(shift_answer(local, origin))
    }

    /// An **instantaneous query** (Section 2.3): one evaluation on the
    /// history starting at the current tick.  The returned [`Answer`] is in
    /// global ticks; the set the user sees immediately is
    /// [`Answer::at_tick`] of the current tick.
    pub fn instantaneous(&mut self, q: &Query) -> CoreResult<Answer> {
        self.stats.instantaneous_queries += 1;
        self.evaluate_global(q)
    }

    /// The instantiations satisfied *right now* by an instantaneous query.
    pub fn instantaneous_now(&mut self, q: &Query) -> CoreResult<Vec<Vec<Value>>> {
        let now = self.clock;
        let answer = self.instantaneous(q)?;
        Ok(answer
            .at_tick(now)
            .into_iter()
            .map(|t| t.values.clone())
            .collect())
    }

    /// Registers a **continuous query**: evaluated once, materialized, and
    /// refreshed only on explicit updates.  Returns the query id.
    pub fn register_continuous(&mut self, q: Query) -> CoreResult<u64> {
        let answer = self.evaluate_global(&q)?;
        // Compile once at registration (the tentpole of the compiled-plan
        // engine): refreshes replay this plan instead of re-walking the AST.
        let plan = self.compiled_plans.then(|| PlanState::compile(&q));
        let id = self.continuous.register(q, self.clock, answer);
        if let Some(state) = plan {
            self.plans.insert(id, state);
        }
        Ok(id)
    }

    /// The materialized `Answer(CQ)` (global ticks).
    pub fn continuous_answer(&self, id: u64) -> CoreResult<&Answer> {
        self.continuous
            .get(id)
            .map(|e| &e.answer)
            .ok_or(CoreError::UnknownContinuousQuery(id))
    }

    /// The display of a continuous query at a clock tick.
    pub fn continuous_display(&self, id: u64, at: Tick) -> CoreResult<Vec<Vec<Value>>> {
        Ok(self
            .continuous_answer(id)?
            .at_tick(at)
            .into_iter()
            .map(|t| t.values.clone())
            .collect())
    }

    /// Cancels a continuous query.
    pub fn cancel_continuous(&mut self, id: u64) -> CoreResult<()> {
        self.plans.remove(&id);
        if self.continuous.cancel(id) {
            Ok(())
        } else {
            Err(CoreError::UnknownContinuousQuery(id))
        }
    }

    /// Total continuous-query evaluations performed so far (E3 metric).
    pub fn continuous_evaluations(&self) -> u64 {
        self.continuous.evaluations
    }

    /// Incremental (per-object) refreshes performed so far.
    pub fn incremental_refreshes(&self) -> u64 {
        self.continuous.incremental_refreshes
    }

    /// Refreshes skipped by dependency-set filtering so far.
    pub fn skipped_refreshes(&self) -> u64 {
        self.continuous.skipped_refreshes
    }

    /// Refresh evaluations that ran but did not change any answer.
    pub fn noop_refreshes(&self) -> u64 {
        self.continuous.noop_refreshes
    }

    /// Read access to the continuous registry (per-entry refresh stats).
    pub fn continuous_registry(&self) -> &ContinuousRegistry {
        &self.continuous
    }

    /// A stable 64-bit digest of the **logical** serialized state
    /// (canonical JSON hashed with FNV-1a).  Two databases with equal
    /// fingerprints hold identical persisted state — clock, objects,
    /// regions, continuous-query answers, triggers, counters.  Two
    /// things are deliberately excluded:
    ///
    /// * derived acceleration structures (spatial/attr indexes,
    ///   compiled plans), exactly as in
    ///   [`ToJson`](most_testkit::ser::ToJson) — a recovered or
    ///   replicated copy that rebuilds them on demand still
    ///   fingerprints equal;
    /// * wall-clock performance accounting (the per-CQ `refresh_nanos`
    ///   timing, zeroed at its one known location
    ///   `continuous.entries.<id>.refresh_nanos`), which is measured,
    ///   not replayed — the one serialized field two deterministic
    ///   replays of the same update sequence do *not* reproduce.  A
    ///   user attribute that merely shares the name still counts.
    ///
    /// This is the convergence check used by the WAL crash-recovery and
    /// replica oracles.
    pub fn fingerprint(&self) -> u64 {
        use most_testkit::ser::Json;
        fn field_mut<'a>(j: &'a mut Json, name: &str) -> Option<&'a mut Json> {
            match j {
                Json::Obj(fields) => {
                    fields.iter_mut().find(|(n, _)| n == name).map(|(_, v)| v)
                }
                _ => None,
            }
        }
        let mut j = most_testkit::ser::ToJson::to_json(self);
        if let Some(Json::Obj(entries)) =
            field_mut(&mut j, "continuous").and_then(|reg| field_mut(reg, "entries"))
        {
            for (_, entry) in entries.iter_mut() {
                if let Some(nanos) = field_mut(entry, "refresh_nanos") {
                    *nanos = Json::Int(0);
                }
            }
        }
        let text = j.render().expect("database state always renders");
        most_testkit::hash::fnv1a64(text.as_bytes())
    }

    // ------------------------------------------------------------------
    // Triggers
    // ------------------------------------------------------------------

    /// Creates a temporal trigger from a continuous query (Section 2.3:
    /// "such a trigger is simply one of these two types of queries, coupled
    /// with an action").  Fired events are collected via
    /// [`Database::take_trigger_events`].
    pub fn create_trigger(&mut self, name: impl Into<String>, q: Query) -> CoreResult<u64> {
        let cq = self.register_continuous(q)?;
        Ok(self.triggers.create(name, cq, self.clock))
    }

    /// Collects trigger firings whose satisfaction began in
    /// `(last poll, now]`.
    pub fn take_trigger_events(&mut self) -> Vec<TriggerEvent> {
        let now = self.clock;
        let mut events = Vec::new();
        for trig in self.triggers.iter_mut() {
            let Some(entry) = self.continuous.get(trig.continuous_id) else {
                continue;
            };
            for tup in &entry.answer.tuples {
                for iv in tup.intervals.intervals() {
                    if iv.begin() > trig.last_polled && iv.begin() <= now {
                        events.push(TriggerEvent {
                            trigger: trig.id,
                            name: trig.name.clone(),
                            values: tup.values.clone(),
                            at: iv.begin(),
                        });
                    }
                }
            }
            trig.last_polled = now;
        }
        events.sort_by_key(|a| (a.at, a.trigger));
        events
    }

    // ------------------------------------------------------------------
    // Spatial index (Section 4 integration)
    // ------------------------------------------------------------------

    /// Enables maintenance of the Section 4 position index over the given
    /// spatial extent.  Existing objects are bulk-inserted.
    pub fn enable_spatial_index(&mut self, space: Rect) {
        // Lifetime 2× the query horizon so a query window [now, now + H]
        // always fits inside the current epoch (the epoch rolls once the
        // clock is more than H past its start).
        let mut index = MovingObjectIndex2D::new(self.expiration * 2, space);
        let now = self.clock;
        for (id, obj) in &self.objects {
            if let (Some(p), Some(v)) = (obj.position_at(now), obj.velocity_at(now)) {
                index.insert(*id, 0, p, v);
            }
        }
        self.spatial_index = Some(SpatialIndexState { index, space, epoch: now });
    }

    /// Whether the position index is maintained.
    pub fn has_spatial_index(&self) -> bool {
        self.spatial_index.is_some()
    }

    /// Index-assisted candidate lookup: ids of objects whose indexed motion
    /// intersects `bbox` during the *global* tick window `[from, to]`.
    /// `None` when no index is enabled or the window leaves the current
    /// epoch.
    pub(crate) fn index_window_candidates(
        &self,
        from: Tick,
        to: Tick,
        bbox: &Rect,
    ) -> Option<Vec<u64>> {
        let ix = self.spatial_index.as_ref()?;
        if from < ix.epoch || to - ix.epoch > ix.index.lifetime() {
            return None;
        }
        let (rows, _) = ix.index.query_window(from - ix.epoch, to - ix.epoch, bbox);
        Some(rows.into_iter().map(|(id, _)| id).collect())
    }

    /// Rolls the position index to a fresh epoch when the clock has
    /// outrun it ("the index needs to be reconstructed every T time
    /// units").  Returns whether a reconstruction happened.
    ///
    /// The epoch engine ([`crate::epoch::EpochDb::advance_epoch`]) calls
    /// this on the writer's copy before publishing, so reconstruction is
    /// paid at epoch boundaries and a published snapshot's index is
    /// always fresh enough for [`Database::objects_in_rect_at`].
    pub fn maintain_spatial_index(&mut self) -> bool {
        if let Some(ix) = &self.spatial_index {
            if self.clock - ix.epoch > self.expiration {
                let space = ix.space;
                self.enable_spatial_index(space);
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Dynamic-attribute index (Section 4 integration for range atoms)
    // ------------------------------------------------------------------

    /// Enables maintenance of the Section 4 dynamic-attribute index over
    /// `attr` with the given value range.  Existing objects' current states
    /// are bulk-indexed; attribute range atoms over `attr` (`o.PRICE <= c`
    /// and friends) then fetch index-pruned candidate sets instead of
    /// enumerating the whole domain.  Writes the index cannot absorb
    /// exactly mark it dirty — lookups fall back to full enumeration until
    /// [`Database::maintain_attr_index`] rebuilds it at the next epoch
    /// boundary — so answers never depend on index health.
    pub fn enable_attr_index(
        &mut self,
        attr: impl Into<String>,
        kind: IndexKind,
        value_range: (f64, f64),
    ) {
        let attr = attr.into();
        self.attr_index = Some(self.build_attr_index(attr, kind, value_range));
    }

    /// Whether a dynamic-attribute index is maintained (dirty or not).
    pub fn has_attr_index(&self) -> bool {
        self.attr_index.is_some()
    }

    fn build_attr_index(
        &self,
        attr: String,
        kind: IndexKind,
        value_range: (f64, f64),
    ) -> AttrIndexState {
        // Lifetime 2× the query horizon, mirroring the position index: a
        // query window [now, now + H] always fits until the epoch rolls.
        let lifetime = self.expiration * 2;
        let now = self.clock;
        let mut index = DynamicAttributeIndex::new(kind, lifetime, value_range);
        let mut dirty = false;
        for (id, obj) in &self.objects {
            match attr_line(obj, &attr, now) {
                AttrLine::Absent => {}
                AttrLine::Line(value, slope) => {
                    if line_in_range(value, slope, lifetime, value_range) {
                        index.insert(*id, 0, value, slope);
                    } else {
                        dirty = true;
                    }
                }
                AttrLine::Quadratic => dirty = true,
            }
        }
        AttrIndexState { attr, kind, index, epoch: now, dirty }
    }

    /// Index-assisted candidate lookup for attribute range atoms: ids whose
    /// indexed `attr` line can pass through `[lo, hi]` during the *global*
    /// tick window `[from, to]`.  `None` when no usable index covers the
    /// window (none enabled, different attribute, dirty, or the window
    /// leaves the current epoch).
    pub(crate) fn attr_index_range_candidates(
        &self,
        attr: &str,
        from: Tick,
        to: Tick,
        lo: f64,
        hi: f64,
    ) -> Option<Vec<u64>> {
        let ix = self.attr_index.as_ref()?;
        if ix.dirty || ix.attr != attr {
            return None;
        }
        if from < ix.epoch || to - ix.epoch > ix.index.lifetime() {
            return None;
        }
        Some(ix.index.range_candidates(from - ix.epoch, to - ix.epoch, lo, hi))
    }

    /// Rolls the dynamic-attribute index to a fresh epoch when a write
    /// marked it dirty or the clock has outrun it — same cadence and
    /// caller ([`crate::epoch::EpochDb::advance_epoch`]) as
    /// [`Database::maintain_spatial_index`].  Returns whether a
    /// reconstruction happened.
    pub fn maintain_attr_index(&mut self) -> bool {
        if let Some(ix) = &self.attr_index {
            if ix.dirty || self.clock - ix.epoch > self.expiration {
                let attr = ix.attr.clone();
                let kind = ix.kind;
                let range = ix.index.value_range();
                self.attr_index = Some(self.build_attr_index(attr, kind, range));
                most_obs::inc("index.attr_rebuilds");
                return true;
            }
        }
        false
    }

    /// Objects currently inside the rectangle, answered from the index when
    /// enabled (O(log n) access), otherwise by scanning all objects.
    /// Returns the ids and whether the index was used.
    pub fn objects_in_rect(&mut self, rect: &Rect) -> (Vec<u64>, bool) {
        self.maintain_spatial_index();
        self.objects_in_rect_at(rect)
    }

    /// Read-only variant of [`Database::objects_in_rect`] for pinned
    /// epoch snapshots, which must never mutate: a stale index (clock
    /// past the epoch's horizon) falls back to the linear scan instead of
    /// reconstructing in place.
    pub fn objects_in_rect_at(&self, rect: &Rect) -> (Vec<u64>, bool) {
        let now = self.clock;
        match &self.spatial_index {
            Some(ix) if now - ix.epoch <= self.expiration => {
                let (ids, _) = ix.index.query_at(now - ix.epoch, rect);
                (ids, true)
            }
            _ => {
                let ids = self
                    .objects
                    .iter()
                    .filter(|(_, o)| {
                        o.position_at(now).is_some_and(|p| rect.contains(p))
                    })
                    .map(|(id, _)| *id)
                    .collect();
                (ids, false)
            }
        }
    }
}

/// Whether a formula references a fixed object id through a constant term
/// (only constructible programmatically; the FTL grammar has no id
/// literals).  Such formulas make rows independent of their own bindings
/// impossible to guarantee, so incremental refresh must not be used.
pub(crate) fn formula_mentions_fixed_objects(f: &most_ftl::Formula) -> bool {
    use most_ftl::ast::{Formula, Term};
    fn term_has_id(t: &Term) -> bool {
        match t {
            Term::Const(Value::Id(_)) => true,
            Term::Var(_) | Term::Const(_) | Term::Time | Term::Point(..) => false,
            Term::Attr(b, _) => term_has_id(b),
            Term::Dist(a, b) | Term::Arith(_, a, b) => term_has_id(a) || term_has_id(b),
        }
    }
    match f {
        Formula::Bool(_) => false,
        Formula::Cmp(_, a, b) => term_has_id(a) || term_has_id(b),
        Formula::Inside(t, _) | Formula::Outside(t, _) => term_has_id(t),
        Formula::InsideMoving(t, _, a) | Formula::OutsideMoving(t, _, a) => {
            term_has_id(t) || term_has_id(a)
        }
        Formula::WithinSphere(_, ts) => ts.iter().any(term_has_id),
        Formula::And(a, b)
        | Formula::Or(a, b)
        | Formula::Until(a, b)
        | Formula::UntilWithin(_, a, b) => {
            formula_mentions_fixed_objects(a) || formula_mentions_fixed_objects(b)
        }
        Formula::Not(a)
        | Formula::Nexttime(a)
        | Formula::Eventually(a)
        | Formula::Always(a)
        | Formula::EventuallyWithin(_, a)
        | Formula::EventuallyAfter(_, a)
        | Formula::AlwaysFor(_, a) => formula_mentions_fixed_objects(a),
        Formula::Assign(_, term, body) => {
            term_has_id(term) || formula_mentions_fixed_objects(body)
        }
    }
}

/// Shifts a local-tick answer (tick 0 = evaluation time) to global ticks.
pub fn shift_answer(answer: Answer, origin: Tick) -> Answer {
    let tuples = answer
        .tuples
        .into_iter()
        .map(|t| AnswerTuple {
            values: t.values,
            intervals: IntervalSet::from_intervals(
                t.intervals.intervals().iter().map(|iv| iv.shift_up(origin)),
            ),
        })
        .collect();
    Answer::new(answer.vars, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn highway_db() -> Database {
        let mut db = Database::new(500);
        let a = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
        let b = db.insert_moving_object("cars", Point::new(200.0, 0.0), Velocity::new(-1.0, 0.0));
        db.set_static(a, "PRICE", Value::from(80.0)).unwrap();
        db.set_static(b, "PRICE", Value::from(150.0)).unwrap();
        db.add_region("P", Polygon::rectangle(90.0, -10.0, 110.0, 10.0));
        db
    }

    #[test]
    fn instantaneous_answers_in_global_ticks() {
        let mut db = highway_db();
        db.advance_clock(50); // car 1 at x=50
        let q = Query::parse("RETRIEVE o WHERE Eventually within 100 INSIDE(o, P)").unwrap();
        let a = db.instantaneous(&q).unwrap();
        // Car 1 enters P (x=90) at global tick 90; car 2 (x=150 now)
        // reaches x=110 at global tick 90 too.
        assert_eq!(a.ids(), vec![1, 2]);
        let s1 = a.intervals_for(&[Value::Id(1)]).unwrap();
        assert!(s1.contains(50), "satisfied at entry: {s1}");
        assert_eq!(db.stats.instantaneous_queries, 1);
    }

    #[test]
    fn answer_depends_on_entry_time_without_updates() {
        // The hallmark of MOST: same query, different times, different
        // answers, zero updates.
        let mut db = highway_db();
        let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
        assert!(db.instantaneous_now(&q).unwrap().is_empty());
        db.advance_clock(100); // car 1 at 100, car 2 at 100: both inside
        let now = db.instantaneous_now(&q).unwrap();
        assert_eq!(now.len(), 2);
    }

    #[test]
    fn continuous_query_single_evaluation_until_update() {
        let mut db = highway_db();
        let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
        let cq = db.register_continuous(q).unwrap();
        assert_eq!(db.continuous_evaluations(), 1);
        // Display changes over time with no re-evaluation.
        assert!(db.continuous_display(cq, 0).unwrap().is_empty());
        assert_eq!(db.continuous_display(cq, 95).unwrap().len(), 2);
        assert_eq!(db.continuous_evaluations(), 1);
        // An update triggers exactly one refresh per query.
        db.advance_clock(10);
        db.update_motion(1, Velocity::new(0.0, 1.0)).unwrap();
        assert_eq!(db.continuous_evaluations(), 2);
        // Car 1 now turns north at x=10 and never reaches P.
        let display = db.continuous_display(cq, 95).unwrap();
        assert_eq!(display, vec![vec![Value::Id(2)]]);
        db.cancel_continuous(cq).unwrap();
        assert!(db.continuous_display(cq, 95).is_err());
    }

    #[test]
    fn continuous_merge_preserves_served_past() {
        let mut db = highway_db();
        let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
        let cq = db.register_continuous(q).unwrap();
        // Serve some ticks, then update *after* car 2 passed through P.
        db.advance_clock(130);
        db.update_motion(2, Velocity::new(0.0, 1.0)).unwrap();
        // Car 2 was displayed during [90, 110]; that history must remain.
        let ans = db.continuous_answer(cq).unwrap();
        let s2 = ans.intervals_for(&[Value::Id(2)]).unwrap();
        assert!(s2.contains(95));
    }

    #[test]
    fn trigger_fires_on_entry() {
        let mut db = highway_db();
        let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
        db.create_trigger("entered_P", q).unwrap();
        assert!(db.take_trigger_events().is_empty());
        db.advance_clock(95); // both cars inside by now
        let events = db.take_trigger_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, 90);
        assert_eq!(events[0].name, "entered_P");
        // No repeat firing.
        assert!(db.take_trigger_events().is_empty());
    }

    #[test]
    fn class_validation() {
        let mut db = Database::new(100);
        db.define_class(ClassDef::plain("motels").with_static("PRICE"));
        let m = db.insert_plain_object("motels");
        assert!(db.set_static(m, "PRICE", Value::from(60.0)).is_ok());
        assert!(matches!(
            db.set_static(m, "NOPE", Value::from(1.0)),
            Err(CoreError::UndeclaredAttribute { .. })
        ));
        assert!(matches!(
            db.set_dynamic_scalar(m, "PRICE", Some(0.0), None),
            Err(CoreError::UndeclaredAttribute { .. })
        ));
    }

    #[test]
    fn motion_updates_on_plain_objects_fail() {
        let mut db = Database::new(100);
        let m = db.insert_plain_object("motels");
        assert!(db.update_motion(m, Velocity::zero()).is_err());
        assert!(db
            .update_position(m, MotionUpdate { position: Point::origin(), velocity: Velocity::zero() })
            .is_err());
        assert!(db.update_motion(99, Velocity::zero()).is_err());
    }

    #[test]
    fn spatial_index_agrees_with_scan() {
        let mut db = Database::new(1000);
        for i in 0..50 {
            db.insert_moving_object(
                "cars",
                Point::new(i as f64 * 10.0, 0.0),
                Velocity::new(0.5, 0.0),
            );
        }
        db.advance_clock(20);
        let rect = Rect::new(100.0, -5.0, 200.0, 5.0);
        let (scan_ids, used) = db.objects_in_rect(&rect);
        assert!(!used);
        db.enable_spatial_index(Rect::new(-100.0, -100.0, 2000.0, 100.0));
        let (idx_ids, used) = db.objects_in_rect(&rect);
        assert!(used);
        assert_eq!(scan_ids, idx_ids);
        // Updates keep the index in sync.
        db.update_motion(1, Velocity::new(5.0, 0.0)).unwrap();
        db.advance_clock(30);
        let (idx_ids, _) = db.objects_in_rect(&rect);
        let expected: Vec<u64> = db
            .object_ids()
            .into_iter()
            .filter(|&id| {
                db.object(id)
                    .unwrap()
                    .position_at(50)
                    .is_some_and(|p| rect.contains(p))
            })
            .collect();
        assert_eq!(idx_ids, expected);
    }

    #[test]
    fn spatial_index_reconstructs_after_lifetime() {
        let mut db = Database::new(100);
        db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
        db.enable_spatial_index(Rect::new(-10.0, -10.0, 10_000.0, 10.0));
        db.advance_clock(250); // well past the lifetime
        let (ids, used) = db.objects_in_rect(&Rect::new(240.0, -5.0, 260.0, 5.0));
        assert!(used);
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn remove_object_refreshes_queries() {
        let mut db = highway_db();
        let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
        let cq = db.register_continuous(q).unwrap();
        assert_eq!(db.continuous_answer(cq).unwrap().len(), 2);
        db.remove_object(2).unwrap();
        assert_eq!(db.continuous_answer(cq).unwrap().ids(), vec![1]);
        assert!(db.object(2).is_err());
        assert!(db.remove_object(2).is_err());
        // With a spatial index enabled, removal keeps it consistent.
        let mut db = highway_db();
        db.enable_spatial_index(Rect::new(-500.0, -500.0, 500.0, 500.0));
        db.remove_object(1).unwrap();
        db.advance_clock(95);
        let (ids, used) = db.objects_in_rect(&Rect::new(90.0, -10.0, 110.0, 10.0));
        assert!(used);
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn nearest_object_answers_the_opening_query() {
        let mut db = Database::new(100);
        let car = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
        let h1 = db.insert_moving_object("hospitals", Point::new(50.0, 0.0), Velocity::zero());
        let h2 = db.insert_moving_object("hospitals", Point::new(10.0, 10.0), Velocity::zero());
        let other = db.insert_moving_object("cars", Point::new(1.0, 0.0), Velocity::zero());
        // Nearest of any class is the other car.
        assert_eq!(db.nearest_object(car, None).unwrap(), Some((other, 1.0)));
        // Nearest hospital right now is h2 (sqrt(200) < 50).
        let (id, d) = db.nearest_object(car, Some("hospitals")).unwrap().unwrap();
        assert_eq!(id, h2);
        assert!((d - 200f64.sqrt()).abs() < 1e-9);
        // The answer changes as the car moves — no updates needed.
        db.advance_clock(49);
        let (id, d) = db.nearest_object(car, Some("hospitals")).unwrap().unwrap();
        assert_eq!(id, h1);
        assert!((d - 1.0).abs() < 1e-9);
        assert_eq!(db.nearest_object(car, Some("nope")).unwrap(), None);
        let _ = h1;
    }

    #[test]
    fn update_counters() {
        let mut db = highway_db();
        assert_eq!(db.stats.updates, 2); // the two PRICE sets
        db.update_motion(1, Velocity::zero()).unwrap();
        assert_eq!(db.stats.updates, 3);
    }

    /// Runs the same mixed workload against two databases and asserts every
    /// continuous answer stays identical tick for tick.
    fn assert_twin_answers(mut fast: Database, mut slow: Database) {
        let queries = [
            "RETRIEVE o WHERE INSIDE(o, P)",
            "RETRIEVE o WHERE o.PRICE <= 100",
            "RETRIEVE o WHERE Eventually within 200 (INSIDE(o, P) AND o.PRICE <= 100)",
        ];
        let mut cqs = Vec::new();
        for text in queries {
            let q = Query::parse(text).unwrap();
            let f = fast.register_continuous(q.clone()).unwrap();
            let s = slow.register_continuous(q).unwrap();
            cqs.push((f, s));
        }
        type Step<'a> = (u64, &'a dyn Fn(&mut Database));
        let steps: &[Step] = &[
            (10, &|db| db.set_static(1, "PRICE", Value::from(60.0)).unwrap()),
            (5, &|db| db.update_motion(2, Velocity::new(-2.0, 0.0)).unwrap()),
            (0, &|db| db.set_static(2, "PRICE", Value::from(90.0)).unwrap()),
            (20, &|db| db.set_static(1, "PRICE", Value::from(140.0)).unwrap()),
            (1, &|db| db.update_motion(1, Velocity::new(2.0, 0.0)).unwrap()),
        ];
        for (ticks, step) in steps {
            fast.advance_clock(*ticks);
            slow.advance_clock(*ticks);
            step(&mut fast);
            step(&mut slow);
            let now = fast.now();
            for (f, s) in &cqs {
                assert_eq!(
                    fast.continuous_answer(*f).unwrap(),
                    slow.continuous_answer(*s).unwrap(),
                    "answers diverged at tick {now}"
                );
            }
        }
    }

    #[test]
    fn compiled_plans_match_interpreter_refreshes() {
        let fast = highway_db();
        let mut slow = highway_db();
        slow.set_compiled_plans(false);
        assert!(fast.compiled_plans() && !slow.compiled_plans());
        assert_twin_answers(fast, slow);
    }

    #[test]
    fn attr_index_matches_unindexed_refreshes() {
        let mut fast = highway_db();
        fast.enable_attr_index("PRICE", IndexKind::RTree, (0.0, 1000.0));
        assert!(fast.has_attr_index());
        let slow = highway_db();
        assert_twin_answers(fast, slow);
    }

    #[test]
    fn attr_index_prunes_and_recovers_from_dirt() {
        let mut db = Database::new(100);
        for i in 0..10 {
            let id = db.insert_moving_object("cars", Point::origin(), Velocity::zero());
            db.set_static(id, "PRICE", Value::from(i as f64 * 10.0)).unwrap();
        }
        db.enable_attr_index("PRICE", IndexKind::RTree, (0.0, 1000.0));
        let pruned = db
            .attr_index_range_candidates("PRICE", 0, 100, f64::NEG_INFINITY, 25.0)
            .expect("fresh index must serve lookups");
        assert_eq!(pruned, vec![1, 2, 3], "static prices 0/10/20 pass <= 25");
        // Other attributes and out-of-epoch windows are not served.
        assert!(db.attr_index_range_candidates("SPEED", 0, 100, 0.0, 1.0).is_none());
        assert!(db
            .attr_index_range_candidates("PRICE", 0, 10_000, 0.0, 1.0)
            .is_none());
        // A non-numeric write dirties the index: lookups fall back...
        db.set_static(1, "PRICE", Value::Str("n/a".into())).unwrap();
        assert!(db.attr_index_range_candidates("PRICE", 0, 100, 0.0, 25.0).is_none());
        // ...until the epoch boundary rebuilds it.
        assert!(db.maintain_attr_index());
        let pruned = db
            .attr_index_range_candidates("PRICE", 0, 100, f64::NEG_INFINITY, 25.0)
            .expect("rebuilt index must serve lookups again");
        assert_eq!(pruned, vec![2, 3], "object 1 no longer has a numeric price");
        assert!(!db.maintain_attr_index(), "clean index within its epoch stays put");
    }

    #[test]
    fn attr_index_tracks_linear_dynamic_attributes() {
        let mut db = Database::new(100);
        let id = db.insert_moving_object("cars", Point::origin(), Velocity::zero());
        db.set_dynamic_scalar(id, "FUEL", Some(50.0), Some(AttrFunction::Linear(-1.0)))
            .unwrap();
        db.enable_attr_index("FUEL", IndexKind::RTree, (-1000.0, 1000.0));
        // FUEL hits 10 at tick 40: a window before that must prune the car
        // out, a later one must keep it.
        assert_eq!(
            db.attr_index_range_candidates("FUEL", 0, 30, f64::NEG_INFINITY, 10.0),
            Some(vec![])
        );
        assert_eq!(
            db.attr_index_range_candidates("FUEL", 0, 60, f64::NEG_INFINITY, 10.0),
            Some(vec![id])
        );
        // An update at a later tick replaces the line's tail exactly.
        db.advance_clock(20); // FUEL = 30 now
        db.set_dynamic_scalar(id, "FUEL", Some(30.0), Some(AttrFunction::Linear(0.0)))
            .unwrap();
        assert_eq!(
            db.attr_index_range_candidates("FUEL", 20, 90, f64::NEG_INFINITY, 10.0),
            Some(vec![]),
            "refuelled-flat line never reaches 10"
        );
        // A quadratic function cannot be a line: the index goes dirty.
        db.set_dynamic_scalar(
            id,
            "FUEL",
            Some(30.0),
            Some(AttrFunction::Quadratic { accel: -0.1, slope: 0.0 }),
        )
        .unwrap();
        assert!(db.attr_index_range_candidates("FUEL", 20, 90, 0.0, 10.0).is_none());
    }
}
