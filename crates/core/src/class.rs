//! Object classes: "a database is a set of object-classes ... an
//! object-class is a set of attributes" (Section 2).


/// The kind of an attribute (Section 2.1: "each attribute of an
/// object-class is either static or dynamic").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// Changes only on explicit update.
    Static,
    /// Changes continuously per its function sub-attribute.
    Dynamic,
}

/// A declared attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Static or dynamic.
    pub kind: AttrKind,
}

/// An object-class definition.
///
/// Spatial classes implicitly carry the dynamic position attributes
/// (`X.POSITION`, `Y.POSITION` — exposed to FTL as `X` / `Y`, with the
/// motion-vector sub-attributes `VX` / `VY` / `SPEED`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Whether the class is spatial (has positions).
    pub spatial: bool,
    /// Declared attributes.  An empty list means the class is open: any
    /// attribute may be set (schema-on-write is optional, mirroring how the
    /// paper leaves class definitions abstract).
    pub attrs: Vec<AttrDecl>,
}

impl ClassDef {
    /// An open spatial class (any attributes allowed).
    pub fn spatial(name: impl Into<String>) -> Self {
        ClassDef { name: name.into(), spatial: true, attrs: Vec::new() }
    }

    /// An open non-spatial class.
    pub fn plain(name: impl Into<String>) -> Self {
        ClassDef { name: name.into(), spatial: false, attrs: Vec::new() }
    }

    /// Declares a static attribute.
    pub fn with_static(mut self, name: impl Into<String>) -> Self {
        self.attrs.push(AttrDecl { name: name.into(), kind: AttrKind::Static });
        self
    }

    /// Declares a dynamic scalar attribute.
    pub fn with_dynamic(mut self, name: impl Into<String>) -> Self {
        self.attrs.push(AttrDecl { name: name.into(), kind: AttrKind::Dynamic });
        self
    }

    /// Whether the class is open (no declared attribute list).
    pub fn is_open(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Looks up a declared attribute.
    pub fn attr(&self, name: &str) -> Option<&AttrDecl> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Whether setting `name` with kind `kind` is admissible.
    pub fn admits(&self, name: &str, kind: AttrKind) -> bool {
        if self.is_open() {
            return true;
        }
        self.attr(name).is_some_and(|a| a.kind == kind)
    }
}

most_testkit::json_enum!(AttrKind { Static, Dynamic });
most_testkit::json_struct!(AttrDecl { name, kind });
most_testkit::json_struct!(ClassDef { name, spatial, attrs });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_class_admits_anything() {
        let c = ClassDef::spatial("cars");
        assert!(c.is_open());
        assert!(c.admits("PRICE", AttrKind::Static));
        assert!(c.admits("FUEL", AttrKind::Dynamic));
        assert!(c.spatial);
    }

    #[test]
    fn declared_class_checks_kinds() {
        let c = ClassDef::plain("motels")
            .with_static("PRICE")
            .with_dynamic("OCCUPANCY");
        assert!(!c.is_open());
        assert!(c.admits("PRICE", AttrKind::Static));
        assert!(!c.admits("PRICE", AttrKind::Dynamic));
        assert!(c.admits("OCCUPANCY", AttrKind::Dynamic));
        assert!(!c.admits("NOPE", AttrKind::Static));
        assert_eq!(c.attr("PRICE").unwrap().kind, AttrKind::Static);
        assert!(!c.spatial);
    }
}
