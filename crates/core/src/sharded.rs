//! Partitioned scatter-gather engine: N independent per-shard [`EpochDb`]
//! instances behind one cross-shard consistency cut.
//!
//! The ROADMAP north-star is serving millions of objects, but a single
//! [`EpochDb`] serializes every mutation — and the continuous-query
//! refresh pass the mutation triggers — through one writer publishing one
//! epoch stream.  Following MOIST's partitioned-indexing blueprint
//! (PAPERS.md), [`ShardedDb`] splits the object universe across N shards:
//!
//! * **Routing.**  Each object lives on exactly one shard, chosen at
//!   insert time — by a hash of its id ([`ShardRouting::HashId`], the
//!   default) or by the spatial band of its insert position
//!   ([`ShardRouting::SpatialBands`], which keeps geographically-close
//!   objects together so region-local queries touch few shards).  The
//!   assignment is stable for the object's lifetime; updates route to the
//!   owning shard.
//! * **Parallel updates.**  [`ShardedDb::apply_updates`] partitions a
//!   batch by owning shard (preserving the batch's per-object order) and
//!   applies the sub-batches **in parallel**, one scoped thread per
//!   shard.  Each shard runs its own continuous-query refresh over its
//!   own objects and publishes its own epoch — the per-batch refresh
//!   cost, the dominant term, divides by the shard count.
//! * **The cut.**  Readers never see shard A post-batch and shard B
//!   pre-batch: every global mutation ends by publishing a *cut* — a
//!   vector of freshly-pinned shard epochs swapped in atomically.
//!   [`ShardedDb::pin`] hands out the whole vector ([`CutPin`]); the pins
//!   keep all member epochs alive for as long as the reader holds the
//!   cut, exactly like a single [`EpochPin`].
//! * **Scatter-gather queries.**  Instantaneous, persistent and
//!   continuous answers are evaluated per shard against the pinned cut
//!   and combined with [`combine_shard_answers`] — a deterministic,
//!   order-independent union (rows collect into a `BTreeMap`,
//!   `IntervalSet::union` per duplicate instantiation), so a sharded
//!   answer is byte-identical to the single-shard reference.
//!
//! **Shardability.**  Per-shard evaluation is sound exactly when every
//! instantiation's satisfaction depends only on shard-local state: the
//! query has one target variable, no other free variables, and no fixed
//! object ids (a fixed object may live on another shard).  Everything
//! else — multi-variable joins would need cross-shard pairs — is rejected
//! with [`CoreError::Unshardable`] rather than answered wrongly.
//!
//! Continuous queries are registered on **every** shard (each maintains
//! the materialized sub-answer for its own objects); the registration
//! sequence is identical on all shards, so the per-shard ids coincide and
//! the global CQ id is that common id.

use crate::continuous::combine_shard_answers;
use crate::database::{formula_mentions_fixed_objects, Database, UpdateOp};
use crate::epoch::{EpochDb, EpochPin, EpochStats};
use crate::error::{CoreError, CoreResult};
use most_dbms::value::Value;
use most_ftl::answer::Answer;
use most_ftl::Query;
use most_spatial::{Point, Polygon, Rect, Velocity};
use most_temporal::{Duration, Tick};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// How objects map to shards.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardRouting {
    /// SplitMix64 hash of the object id, modulo the shard count.  Load
    /// balances uniformly regardless of id assignment order.
    HashId,
    /// Vertical spatial bands over `[min_x, max_x)`: an object joins the
    /// shard owning the band of its **insert** position and stays there
    /// (routing must be stable under motion, so later movement does not
    /// re-home it).  Keeps geographically-close objects on the same shard.
    SpatialBands {
        /// Left edge of the banded space.
        min_x: f64,
        /// Right edge of the banded space.
        max_x: f64,
    },
}

impl ShardRouting {
    /// The shard for a fresh insert.  `None` routing decisions never
    /// happen: hash covers every id, bands clamp out-of-range positions
    /// to the edge bands.
    fn route_insert(&self, id: u64, position: Point, shards: usize) -> usize {
        match self {
            ShardRouting::HashId => {
                (most_testkit::rng::SplitMix64::new(id).next_u64() % shards as u64) as usize
            }
            ShardRouting::SpatialBands { min_x, max_x } => {
                let width = (max_x - min_x).max(f64::MIN_POSITIVE);
                let frac = ((position.x - min_x) / width).clamp(0.0, 1.0);
                ((frac * shards as f64) as usize).min(shards - 1)
            }
        }
    }
}

/// Serialized writer-side state: global id allocation and, for spatial
/// routing, the stable object→shard assignment.
#[derive(Debug)]
struct ShardWriter {
    next_id: u64,
    /// Populated only under [`ShardRouting::SpatialBands`] (hash routing
    /// is computable from the id alone).
    assignment: BTreeMap<u64, usize>,
    cut_seq: u64,
}

/// One published cross-shard cut: a consistent vector of shard epochs.
/// The pins keep every member epoch alive while any reader holds the cut.
#[derive(Debug)]
pub struct ShardCut {
    seq: u64,
    pins: Vec<EpochPin>,
}

impl ShardCut {
    /// Monotone cut sequence number (starts at 0).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The per-shard epoch numbers this cut pins.
    pub fn epochs(&self) -> Vec<u64> {
        self.pins.iter().map(|p| p.epoch()).collect()
    }
}

/// A reader's hold on one published cut.  Queries evaluate against the
/// pinned shard epochs with no lock held; cloning is an `Arc` clone.
#[derive(Debug, Clone)]
pub struct CutPin {
    cut: Arc<ShardCut>,
}

impl CutPin {
    /// The pinned cut's metadata.
    pub fn cut(&self) -> &ShardCut {
        &self.cut
    }

    /// Number of shards in the cut.
    pub fn shard_count(&self) -> usize {
        self.cut.pins.len()
    }

    /// The pinned database of one shard.
    pub fn shard(&self, i: usize) -> &Database {
        self.cut.pins[i].db()
    }

    /// The global clock (all shards tick in lockstep; asserted in debug).
    pub fn now(&self) -> Tick {
        let now = self.cut.pins[0].now();
        debug_assert!(
            self.cut.pins.iter().all(|p| p.now() == now),
            "shard clocks diverged within one cut"
        );
        now
    }

    /// Total objects across all shards.
    pub fn len(&self) -> usize {
        self.cut.pins.iter().map(|p| p.len()).sum()
    }

    /// Whether no shard holds any object.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard holding object `id`, or an error if no shard does.
    pub fn object_shard(&self, id: u64) -> CoreResult<&Database> {
        self.cut
            .pins
            .iter()
            .map(|p| p.db())
            .find(|db| db.object(id).is_ok())
            .ok_or(CoreError::UnknownObject(id))
    }

    /// Scatter-gather **instantaneous** query: evaluates shard-locally in
    /// parallel against the pinned cut and combines with
    /// [`combine_shard_answers`].
    pub fn instantaneous(&self, q: &Query) -> CoreResult<Answer> {
        ensure_shardable(q)?;
        most_obs::inc("shard.scatter_queries");
        let parts = self.scatter(|db| db.instantaneous_readonly(q))?;
        combine_shard_answers(&parts)
    }

    /// Scatter-gather **persistent** query anchored at `origin`.
    pub fn persistent_answer(&self, q: &Query, origin: Tick) -> CoreResult<Answer> {
        ensure_shardable(q)?;
        most_obs::inc("shard.scatter_queries");
        let parts = self.scatter(|db| db.persistent_answer(q, origin))?;
        combine_shard_answers(&parts)
    }

    /// The combined materialized answer of a continuous query (each shard
    /// maintains the sub-answer for its own objects).
    pub fn continuous_answer(&self, cq: u64) -> CoreResult<Answer> {
        let parts: Vec<Answer> = self
            .cut
            .pins
            .iter()
            .map(|p| p.continuous_answer(cq).cloned())
            .collect::<CoreResult<_>>()?;
        combine_shard_answers(&parts)
    }

    /// The display of continuous query `cq` at tick `at`: the sorted
    /// union of the per-shard displays (shards partition the objects, so
    /// rows are disjoint; sorting restores the global order).
    pub fn continuous_display(&self, cq: u64, at: Tick) -> CoreResult<Vec<Vec<Value>>> {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for pin in &self.cut.pins {
            rows.extend(pin.continuous_display(cq, at)?);
        }
        rows.sort();
        rows.dedup();
        Ok(rows)
    }

    /// Runs `f` against every pinned shard in parallel (scoped threads,
    /// one per shard), returning results in shard order.  Shard-level
    /// evaluation keeps `eval_workers = 1` semantics per shard: the
    /// cross-shard threads *are* the parallelism level.
    fn scatter<R: Send>(
        &self,
        f: impl Fn(&Database) -> CoreResult<R> + Sync,
    ) -> CoreResult<Vec<R>> {
        if self.cut.pins.len() == 1 {
            return Ok(vec![f(self.cut.pins[0].db())?]);
        }
        let results: Vec<CoreResult<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .cut
                .pins
                .iter()
                .map(|pin| scope.spawn(|| f(pin.db())))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(CoreError::EvalPanic(
                        crate::refresh::panic_message(&payload),
                    )),
                })
                .collect()
        });
        results.into_iter().collect()
    }
}

/// Builds a sharded world **before** wrapping shards in epoch machinery:
/// bulk inserts go straight into raw per-shard [`Database`]s (no
/// copy-on-write epoch clone per insert, which at 10⁶ objects would be
/// quadratic), and [`finish`](ShardedDbBuilder::finish) publishes every
/// shard's epoch 0 plus the initial cut.
#[derive(Debug)]
pub struct ShardedDbBuilder {
    dbs: Vec<Database>,
    routing: ShardRouting,
    next_id: u64,
    assignment: BTreeMap<u64, usize>,
}

impl ShardedDbBuilder {
    /// `shards` empty databases with the given query expiration.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, expiration: Duration) -> Self {
        assert!(shards > 0, "a sharded database needs at least one shard");
        ShardedDbBuilder {
            dbs: (0..shards).map(|_| Database::new(expiration)).collect(),
            routing: ShardRouting::HashId,
            next_id: 1,
            assignment: BTreeMap::new(),
        }
    }

    /// Selects the routing policy (default: [`ShardRouting::HashId`]).
    pub fn with_routing(mut self, routing: ShardRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Declares a named region on **every** shard (regions are reference
    /// data, not objects; each shard needs them to evaluate).
    pub fn add_region(&mut self, name: &str, poly: Polygon) {
        for db in &mut self.dbs {
            db.add_region(name, poly.clone());
        }
    }

    /// Enables the spatial index on every shard over the same space.
    pub fn enable_spatial_index(&mut self, space: Rect) {
        for db in &mut self.dbs {
            db.enable_spatial_index(space);
        }
    }

    /// Inserts a moving object, routed by the builder's policy, under a
    /// globally-unique id.
    pub fn insert_moving_object(
        &mut self,
        class: &str,
        position: Point,
        velocity: Velocity,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let shard = self.routing.route_insert(id, position, self.dbs.len());
        self.dbs[shard]
            .insert_moving_object_with_id(id, class, position, velocity)
            .expect("builder ids are unique");
        if matches!(self.routing, ShardRouting::SpatialBands { .. }) {
            self.assignment.insert(id, shard);
        }
        id
    }

    /// Sets a static attribute on the owning shard.
    pub fn set_static(&mut self, id: u64, attr: &str, value: Value) -> CoreResult<()> {
        let shard = self.shard_of(id)?;
        self.dbs[shard].set_static(id, attr, value)
    }

    fn shard_of(&self, id: u64) -> CoreResult<usize> {
        let shard = match &self.routing {
            ShardRouting::HashId => {
                self.routing.route_insert(id, Point::origin(), self.dbs.len())
            }
            ShardRouting::SpatialBands { .. } => *self
                .assignment
                .get(&id)
                .ok_or(CoreError::UnknownObject(id))?,
        };
        Ok(shard)
    }

    /// Publishes every shard as epoch 0 and the initial cut (sequence 0).
    pub fn finish(mut self) -> ShardedDb {
        for db in &mut self.dbs {
            db.maintain_spatial_index();
            db.maintain_attr_index();
        }
        let shards: Vec<EpochDb> = self.dbs.into_iter().map(EpochDb::new).collect();
        let pins = shards.iter().map(|s| s.pin()).collect();
        most_obs::gauge_set("shard.count", shards.len() as u64);
        ShardedDb {
            shards,
            routing: self.routing,
            cut: RwLock::new(Arc::new(ShardCut { seq: 0, pins })),
            writer: Mutex::new(ShardWriter {
                next_id: self.next_id,
                assignment: self.assignment,
                cut_seq: 0,
            }),
        }
    }
}

/// A partitioned MOST database: N per-shard [`EpochDb`]s, one published
/// cross-shard cut.  See the module docs for the architecture.  Cloning
/// the handle shares all state.
#[derive(Debug)]
pub struct ShardedDb {
    shards: Vec<EpochDb>,
    routing: ShardRouting,
    cut: RwLock<Arc<ShardCut>>,
    writer: Mutex<ShardWriter>,
}

/// Recovers a lock from a poisoned state: every structure guarded here
/// (cut pointer, writer bookkeeping) is a plain value left consistent at
/// each await-free step, so a panic mid-critical-section (e.g. an
/// injected evaluation fault) must not wedge the engine.
fn lock_clean<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ShardedDb {
    /// An empty sharded database (bulk construction goes through
    /// [`ShardedDbBuilder`]).
    pub fn new(shards: usize, expiration: Duration) -> Self {
        ShardedDbBuilder::new(shards, expiration).finish()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pins the currently published cut.  Cost: one `Arc` clone under a
    /// briefly-held read lock, exactly like [`EpochDb::pin`].
    pub fn pin(&self) -> CutPin {
        let guard = self
            .cut
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        CutPin { cut: Arc::clone(&guard) }
    }

    /// Per-shard epoch accounting.
    pub fn shard_stats(&self) -> Vec<EpochStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Installs the same publish observer on **every** shard's epoch
    /// engine (see [`EpochDb::set_publish_observer`]).  Shards publish in
    /// parallel, so the observer fires concurrently from different shard
    /// threads and must synchronize any shared state itself; per shard
    /// the per-epoch ordering guarantee still holds.
    pub fn set_publish_observer(&self, observer: Option<crate::epoch::PublishObserver>) {
        for shard in &self.shards {
            shard.set_publish_observer(observer.clone());
        }
    }

    /// Applies one update batch: ops partition by owning shard (batch
    /// order preserved within each shard), sub-batches apply **in
    /// parallel** (one epoch per touched shard, including that shard's
    /// continuous-query refresh), and one new cut publishes the whole
    /// batch atomically.
    ///
    /// On error the sharded semantics are *per-shard prefix*: each shard
    /// applies its sub-batch up to its first failing op (the documented
    /// [`Database::apply_updates`] behavior), other shards are unaffected,
    /// and the first error in shard order is returned.  The cut publishes
    /// either way, exactly like [`EpochDb::apply_updates`].
    pub fn apply_updates(&self, ops: &[UpdateOp]) -> CoreResult<()> {
        let writer = lock_clean(&self.writer);
        let mut parts: Vec<Vec<UpdateOp>> = vec![Vec::new(); self.shards.len()];
        for op in ops {
            let shard = self.shard_of_locked(&writer, op_id(op))?;
            parts[shard].push(op.clone());
        }
        let result = self.parallel_shards(|i, shard| {
            if parts[i].is_empty() {
                Ok(())
            } else {
                shard.apply_updates(&parts[i])
            }
        });
        most_obs::inc("shard.batches");
        self.publish_cut(writer);
        result
    }

    /// Advances the global clock on every shard and publishes a cut.
    pub fn advance_clock(&self, ticks: Duration) {
        let writer = lock_clean(&self.writer);
        let _ = self.parallel_shards(|_, shard| {
            shard.commit(|db| db.advance_clock(ticks));
            Ok(())
        });
        self.publish_cut(writer);
    }

    /// Registers a continuous query on **every** shard and publishes a
    /// cut.  The per-shard registries assign ids in lockstep (identical
    /// registration sequences), so the common id is returned as the
    /// global CQ id.  Rejects unshardable queries up front.
    pub fn register_continuous(&self, q: &Query) -> CoreResult<u64> {
        ensure_shardable(q)?;
        let writer = lock_clean(&self.writer);
        let ids = self.parallel_shards_collect(|_, shard| {
            shard.commit(|db| db.register_continuous(q.clone()))
        });
        self.publish_cut(writer);
        let ids: Vec<u64> = ids.into_iter().collect::<CoreResult<_>>()?;
        let id = ids[0];
        assert!(
            ids.iter().all(|&i| i == id),
            "per-shard CQ registries diverged: {ids:?}"
        );
        Ok(id)
    }

    /// Cancels a continuous query on every shard and publishes a cut.
    pub fn cancel_continuous(&self, cq: u64) -> CoreResult<()> {
        let writer = lock_clean(&self.writer);
        let results = self.parallel_shards_collect(|_, shard| {
            shard.commit(|db| {
                db.cancel_continuous(cq)
            })
        });
        self.publish_cut(writer);
        results.into_iter().collect::<CoreResult<Vec<()>>>()?;
        Ok(())
    }

    /// Inserts a moving object at runtime, routed by policy, under a
    /// globally-unique id; publishes a cut.
    pub fn insert_moving_object(
        &self,
        class: &str,
        position: Point,
        velocity: Velocity,
    ) -> u64 {
        let mut writer = lock_clean(&self.writer);
        let id = writer.next_id;
        writer.next_id += 1;
        let shard = self.routing.route_insert(id, position, self.shards.len());
        if matches!(self.routing, ShardRouting::SpatialBands { .. }) {
            writer.assignment.insert(id, shard);
        }
        self.shards[shard]
            .commit(|db| db.insert_moving_object_with_id(id, class, position, velocity))
            .expect("sharded ids are unique");
        self.publish_cut(writer);
        id
    }

    /// Declares a region on every shard; publishes a cut.
    pub fn add_region(&self, name: &str, poly: Polygon) {
        let writer = lock_clean(&self.writer);
        let _ = self.parallel_shards(|_, shard| {
            shard.commit(|db| db.add_region(name, poly.clone()));
            Ok(())
        });
        self.publish_cut(writer);
    }

    /// The shard index owning object `id` (routing lookup only; the
    /// object may not exist).
    fn shard_of_locked(&self, writer: &ShardWriter, id: u64) -> CoreResult<usize> {
        match &self.routing {
            ShardRouting::HashId => {
                Ok(self.routing.route_insert(id, Point::origin(), self.shards.len()))
            }
            ShardRouting::SpatialBands { .. } => writer
                .assignment
                .get(&id)
                .copied()
                .ok_or(CoreError::UnknownObject(id)),
        }
    }

    /// Re-pins every shard and atomically publishes the vector as the
    /// next cut.  Callers hold the writer lock (passed by value so the
    /// sequence bump and the swap happen under it).
    fn publish_cut(&self, mut writer: MutexGuard<'_, ShardWriter>) {
        writer.cut_seq += 1;
        let cut = Arc::new(ShardCut {
            seq: writer.cut_seq,
            pins: self.shards.iter().map(|s| s.pin()).collect(),
        });
        {
            let mut slot = self.cut.write().unwrap_or_else(PoisonError::into_inner);
            *slot = cut;
        }
        most_obs::inc("shard.cut_publishes");
    }

    /// Runs `f` over every shard in parallel, returning the first error
    /// in shard order.
    fn parallel_shards(
        &self,
        f: impl Fn(usize, &EpochDb) -> CoreResult<()> + Sync,
    ) -> CoreResult<()> {
        self.parallel_shards_collect(f).into_iter().collect::<CoreResult<Vec<()>>>()?;
        Ok(())
    }

    /// Runs `f` over every shard in parallel, collecting per-shard
    /// results in shard order.  A panicking shard closure becomes an
    /// [`CoreError::EvalPanic`] for that shard instead of unwinding into
    /// the caller (panic-safety invariant of this PR).
    fn parallel_shards_collect<R: Send>(
        &self,
        f: impl Fn(usize, &EpochDb) -> CoreResult<R> + Sync,
    ) -> Vec<CoreResult<R>> {
        if self.shards.len() == 1 {
            return vec![f(0, &self.shards[0])];
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, shard)| scope.spawn(move || f(i, shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(CoreError::EvalPanic(
                        crate::refresh::panic_message(&payload),
                    )),
                })
                .collect()
        })
    }
}

/// The id an update op addresses.
fn op_id(op: &UpdateOp) -> u64 {
    match op {
        UpdateOp::Motion { id, .. }
        | UpdateOp::Position { id, .. }
        | UpdateOp::Static { id, .. }
        | UpdateOp::DynamicScalar { id, .. } => *id,
    }
}

/// Checks that per-shard evaluation + scatter-gather answers `q` exactly
/// (see the module docs): one target variable, no other free variables,
/// no fixed object ids.  Public so serving layers can reject unshardable
/// requests before scattering.
pub fn ensure_shardable(q: &Query) -> CoreResult<()> {
    if q.targets.len() != 1 {
        return Err(CoreError::Unshardable(format!(
            "{} target variables (cross-shard joins are not supported; shard-local \
             evaluation needs exactly one)",
            q.targets.len()
        )));
    }
    let free = q.formula.free_vars();
    if let Some(v) = free.iter().find(|v| !q.targets.contains(v)) {
        return Err(CoreError::Unshardable(format!(
            "free variable `{v}` is not the target"
        )));
    }
    if formula_mentions_fixed_objects(&q.formula) {
        return Err(CoreError::Unshardable(
            "formula references a fixed object id, which may live on another shard".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_testkit::rng::Rng;
    use most_testkit::ser::to_json_string;

    const WORLD: u64 = 24;

    /// Builds the same world twice: a single-shard reference `Database`
    /// and a `ShardedDb` with `shards` shards, holding identical object
    /// ids, positions, velocities and attributes.
    fn twin_worlds(shards: usize, routing: ShardRouting) -> (Database, ShardedDb) {
        let mut reference = Database::new(400);
        reference.add_region("P", Polygon::rectangle(40.0, -25.0, 120.0, 25.0));
        let mut builder = ShardedDbBuilder::new(shards, 400).with_routing(routing);
        builder.add_region("P", Polygon::rectangle(40.0, -25.0, 120.0, 25.0));
        let mut rng = Rng::seed_from_u64(0x5AAD);
        for i in 0..WORLD {
            let pos = Point::new(rng.random_range(0.0..200.0), rng.random_range(-20.0..20.0));
            let vel = Velocity::new(rng.random_range(-3.0..3.0), rng.random_range(-1.0..1.0));
            let price = rng.random_range(10.0..200.0);
            let id = reference.insert_moving_object("cars", pos, vel);
            assert_eq!(id, i + 1);
            reference.set_static(id, "PRICE", Value::from(price)).unwrap();
            let sid = builder.insert_moving_object("cars", pos, vel);
            assert_eq!(sid, id, "sharded ids must mirror the reference");
            builder.set_static(sid, "PRICE", Value::from(price)).unwrap();
        }
        (reference, builder.finish())
    }

    fn observe(reference: &Database, sharded: &ShardedDb, cq: u64) {
        let pin = sharded.pin();
        assert_eq!(pin.now(), reference.now());
        assert_eq!(pin.len(), reference.len());
        let inst = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
        assert_eq!(
            to_json_string(&pin.instantaneous(&inst).unwrap()).unwrap(),
            to_json_string(&reference.instantaneous_readonly(&inst).unwrap()).unwrap(),
            "instantaneous answers must be byte-identical"
        );
        let pers = Query::parse("RETRIEVE o WHERE o.PRICE <= 120").unwrap();
        assert_eq!(
            to_json_string(&pin.persistent_answer(&pers, 0).unwrap()).unwrap(),
            to_json_string(&reference.persistent_answer(&pers, 0).unwrap()).unwrap(),
            "persistent answers must be byte-identical"
        );
        assert_eq!(
            to_json_string(&pin.continuous_answer(cq).unwrap()).unwrap(),
            to_json_string(reference.continuous_answer(cq).unwrap()).unwrap(),
            "materialized continuous answers must be byte-identical"
        );
        assert_eq!(
            pin.continuous_display(cq, pin.now()).unwrap(),
            reference.continuous_display(cq, reference.now()).unwrap(),
            "continuous displays must be identical"
        );
    }

    #[test]
    fn sharded_answers_match_single_shard_reference() {
        let cq_src = "RETRIEVE o WHERE Eventually within 300 INSIDE(o, P)";
        for shards in [1, 2, 4] {
            for routing in [
                ShardRouting::HashId,
                ShardRouting::SpatialBands { min_x: 0.0, max_x: 200.0 },
            ] {
                let (mut reference, sharded) = twin_worlds(shards, routing.clone());
                let cq_r =
                    reference.register_continuous(Query::parse(cq_src).unwrap()).unwrap();
                let cq_s =
                    sharded.register_continuous(&Query::parse(cq_src).unwrap()).unwrap();
                assert_eq!(cq_r, cq_s, "global CQ ids must mirror the reference");
                observe(&reference, &sharded, cq_s);
                let mut rng = Rng::seed_from_u64(0xD1CE ^ shards as u64);
                for _step in 0..6 {
                    let batch: Vec<UpdateOp> = (0..8)
                        .map(|_| {
                            let id = rng.below(WORLD) + 1;
                            if rng.random_bool(0.75) {
                                UpdateOp::Motion {
                                    id,
                                    velocity: Velocity::new(
                                        rng.random_range(-4.0..4.0),
                                        rng.random_range(-1.0..1.0),
                                    ),
                                }
                            } else {
                                UpdateOp::Static {
                                    id,
                                    attr: "PRICE".into(),
                                    value: Value::from(rng.random_range(10.0..200.0)),
                                }
                            }
                        })
                        .collect();
                    reference.apply_updates(&batch).unwrap();
                    sharded.apply_updates(&batch).unwrap();
                    observe(&reference, &sharded, cq_s);
                    reference.advance_clock(3);
                    sharded.advance_clock(3);
                    observe(&reference, &sharded, cq_s);
                }
            }
        }
    }

    #[test]
    fn cut_pins_are_consistent_under_writes() {
        let (_, sharded) = twin_worlds(4, ShardRouting::HashId);
        let before = sharded.pin();
        let seq0 = before.cut().seq();
        let now0 = before.now();
        sharded.advance_clock(5);
        sharded
            .apply_updates(&[UpdateOp::Motion { id: 1, velocity: Velocity::new(9.0, 0.0) }])
            .unwrap();
        // The old cut still reads the old state on every shard.
        assert_eq!(before.now(), now0);
        assert_eq!(before.cut().seq(), seq0);
        // A fresh cut sees all shards advanced together.
        let after = sharded.pin();
        assert_eq!(after.now(), now0 + 5);
        assert!(after.cut().seq() > seq0);
        assert_eq!(after.cut().epochs().len(), 4);
    }

    #[test]
    fn unshardable_queries_are_rejected() {
        let (_, sharded) = twin_worlds(2, ShardRouting::HashId);
        let pin = sharded.pin();
        // Two target variables: a cross-shard join.
        let join = Query::parse("RETRIEVE o, p WHERE INSIDE(o, P) AND INSIDE(p, P)").unwrap();
        assert!(matches!(
            pin.instantaneous(&join),
            Err(CoreError::Unshardable(_))
        ));
        assert!(matches!(
            sharded.register_continuous(&join),
            Err(CoreError::Unshardable(_))
        ));
        // Single-variable queries pass the gate.
        let ok = Query::parse("RETRIEVE o WHERE OUTSIDE(o, P)").unwrap();
        assert!(pin.instantaneous(&ok).is_ok());
    }

    #[test]
    fn updates_for_unknown_objects_error_without_wedging() {
        let (_, sharded) = twin_worlds(2, ShardRouting::HashId);
        let err = sharded
            .apply_updates(&[UpdateOp::Motion { id: 9_999, velocity: Velocity::zero() }])
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownObject(9_999)));
        // The engine still serves and mutates.
        sharded
            .apply_updates(&[UpdateOp::Motion { id: 1, velocity: Velocity::new(1.0, 1.0) }])
            .unwrap();
        assert!(sharded.pin().object_shard(1).is_ok());
    }

    #[test]
    fn panicking_refresh_on_one_shard_fails_only_that_query() {
        let (_, sharded) = twin_worlds(2, ShardRouting::HashId);
        let cq = sharded
            .register_continuous(&Query::parse("RETRIEVE o WHERE o.PRICE <= 150").unwrap())
            .unwrap();
        // Arm the fault on every shard (the object distribution decides
        // which shard actually panics).
        for shard in &sharded.shards {
            shard.commit(|db| db.set_eval_fault(Some("PRICE".into())));
        }
        let err = sharded
            .apply_updates(&[UpdateOp::Static {
                id: 1,
                attr: "PRICE".into(),
                value: Value::from(5.0),
            }])
            .unwrap_err();
        assert!(matches!(err, CoreError::EvalPanic(_)));
        // The engine survives: disarm, mutate, query.
        for shard in &sharded.shards {
            shard.commit(|db| db.set_eval_fault(None));
        }
        sharded
            .apply_updates(&[UpdateOp::Static {
                id: 1,
                attr: "PRICE".into(),
                value: Value::from(7.0),
            }])
            .unwrap();
        assert!(sharded.pin().continuous_answer(cq).is_ok());
    }

    #[test]
    fn runtime_insert_routes_and_serves() {
        for routing in [
            ShardRouting::HashId,
            ShardRouting::SpatialBands { min_x: 0.0, max_x: 200.0 },
        ] {
            let (_, sharded) = twin_worlds(3, routing);
            let id = sharded.insert_moving_object(
                "cars",
                Point::new(150.0, 0.0),
                Velocity::new(1.0, 0.0),
            );
            assert_eq!(id, WORLD + 1);
            let pin = sharded.pin();
            assert_eq!(pin.len() as u64, WORLD + 1);
            assert!(pin.object_shard(id).is_ok());
            // Updates reach the owning shard.
            sharded
                .apply_updates(&[UpdateOp::Motion { id, velocity: Velocity::new(0.0, 2.0) }])
                .unwrap();
            let pin = sharded.pin();
            let db = pin.object_shard(id).unwrap();
            let now = db.now();
            assert_eq!(
                db.object(id).unwrap().velocity_at(now),
                Some(Velocity::new(0.0, 2.0))
            );
        }
    }

    #[test]
    fn spatial_bands_route_by_position() {
        let routing = ShardRouting::SpatialBands { min_x: 0.0, max_x: 100.0 };
        assert_eq!(routing.route_insert(1, Point::new(-50.0, 0.0), 4), 0);
        assert_eq!(routing.route_insert(1, Point::new(10.0, 0.0), 4), 0);
        assert_eq!(routing.route_insert(1, Point::new(30.0, 0.0), 4), 1);
        assert_eq!(routing.route_insert(1, Point::new(60.0, 0.0), 4), 2);
        assert_eq!(routing.route_insert(1, Point::new(99.0, 0.0), 4), 3);
        assert_eq!(routing.route_insert(1, Point::new(500.0, 0.0), 4), 3);
    }
}
