//! A thread-safe facade over [`Database`].
//!
//! The paper's deployment picture (Section 5) has many clients — moving
//! vehicles, an air-traffic console — querying one database while sensor
//! feeds apply motion-vector updates.  [`SharedDatabase`] supports that
//! shape on top of the epoch engine ([`crate::epoch`]): queries evaluate
//! against a **pinned immutable epoch** with no lock held (readers never
//! wait for writers or for continuous-query refresh), while each write
//! path buffers into the next epoch and publishes it atomically before
//! returning — so a completed write is immediately visible to subsequent
//! reads, exactly as under the old global `RwLock`.
//!
//! Instantaneous queries through this facade use
//! [`Database::instantaneous_readonly`], which does not bump the stats
//! counter — so readers never contend with each other.

use crate::database::{Database, UpdateOp};
use crate::epoch::{EpochDb, EpochPin, EpochStats};
use crate::error::CoreResult;
use most_dbms::value::Value;
use most_ftl::answer::Answer;
use most_ftl::Query;
use most_spatial::Velocity;
use most_temporal::{Duration, Tick};

/// A cloneable, thread-safe handle to a MOST database.
#[derive(Debug, Clone)]
pub struct SharedDatabase {
    epochs: EpochDb,
}

impl SharedDatabase {
    /// Wraps a database, publishing its state as epoch 0.
    pub fn new(db: Database) -> Self {
        SharedDatabase { epochs: EpochDb::new(db) }
    }

    /// Wraps an **existing** epoch engine, sharing its published state.
    /// This is how the durable server overlays the read-only facade on
    /// a [`crate::wal::DurableDb`]: reads go through this handle while
    /// mutations go through the WAL-backed path, both seeing the same
    /// epoch sequence.
    pub fn from_epochs(epochs: EpochDb) -> Self {
        SharedDatabase { epochs }
    }

    /// Pins the currently published epoch for lock-free reading.
    pub fn pin(&self) -> EpochPin {
        self.epochs.pin()
    }

    /// The underlying epoch engine (buffered writes, explicit publish,
    /// accounting).
    pub fn epochs(&self) -> &EpochDb {
        &self.epochs
    }

    /// Epoch accounting snapshot (`created == retired + live`).
    pub fn epoch_stats(&self) -> EpochStats {
        self.epochs.stats()
    }

    /// Runs a closure against the published epoch (lock-free snapshot
    /// read).
    pub fn read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        let pin = self.epochs.pin();
        f(pin.db())
    }

    /// Runs a mutating closure and publishes the result as a new epoch
    /// before returning (read-your-writes).
    pub fn write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        self.epochs.commit(f)
    }

    /// Evaluates an instantaneous query against the published epoch.
    pub fn instantaneous(&self, q: &Query) -> CoreResult<Answer> {
        self.epochs.pin().db().instantaneous_readonly(q)
    }

    /// The instantiations satisfied right now, on the published epoch.
    pub fn instantaneous_now(&self, q: &Query) -> CoreResult<Vec<Vec<Value>>> {
        let pin = self.epochs.pin();
        let now = pin.db().now();
        let answer = pin.db().instantaneous_readonly(q)?;
        Ok(answer
            .at_tick(now)
            .into_iter()
            .map(|t| t.values.clone())
            .collect())
    }

    /// Current clock tick (of the published epoch).
    pub fn now(&self) -> Tick {
        self.epochs.pin().db().now()
    }

    /// Advances the clock and publishes the new epoch.
    pub fn advance_clock(&self, ticks: Duration) {
        self.epochs.commit(|d| d.advance_clock(ticks));
    }

    /// Applies a motion-vector update (refreshes continuous queries as
    /// usual) and publishes the new epoch.
    pub fn update_motion(&self, id: u64, velocity: Velocity) -> CoreResult<()> {
        self.epochs.commit(|d| d.update_motion(id, velocity))
    }

    /// Applies a whole batch of updates as **one** epoch: one
    /// continuous-query refresh pass ([`Database::apply_updates`]) on the
    /// writer's copy, then one atomic publish.  With per-update calls, a
    /// batch of `n` sensor reports costs `n` refresh sweeps and `n`
    /// epochs; here it costs one of each — and a batch is never split
    /// across two epochs, even when it stops at an error (the applied
    /// prefix publishes in the same single epoch).
    pub fn apply_updates(&self, ops: &[UpdateOp]) -> CoreResult<()> {
        self.epochs.apply_updates(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::{Point, Polygon};
    use std::thread;

    fn shared() -> (SharedDatabase, u64) {
        let mut db = Database::new(10_000);
        let car = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
        db.add_region("P", Polygon::rectangle(100.0, -50.0, 300.0, 50.0));
        (SharedDatabase::new(db), car)
    }

    #[test]
    fn concurrent_readers_and_one_writer() {
        let (db, car) = shared();
        let q = Query::parse("RETRIEVE o WHERE Eventually within 500 INSIDE(o, P)").unwrap();
        let mut readers = Vec::new();
        for _ in 0..4 {
            let db = db.clone();
            let q = q.clone();
            readers.push(thread::spawn(move || {
                let mut non_empty = 0usize;
                for _ in 0..50 {
                    let a = db.instantaneous(&q).expect("query evaluates");
                    if !a.is_empty() {
                        non_empty += 1;
                    }
                }
                non_empty
            }));
        }
        let writer = {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..50 {
                    db.advance_clock(1);
                    if i % 10 == 0 {
                        db.update_motion(car, Velocity::new(1.0, 0.1 * (i % 3) as f64))
                            .expect("update applies");
                    }
                }
            })
        };
        writer.join().expect("writer thread");
        for r in readers {
            // The car heads towards P throughout: every evaluation finds it.
            assert_eq!(r.join().expect("reader thread"), 50);
        }
        assert_eq!(db.now(), 50);
        // Every write above published one epoch; with no pins held only
        // the published one stays alive.
        let s = db.epoch_stats();
        assert_eq!(s.created, s.retired + s.live);
        assert_eq!(s.live, 1);
    }

    #[test]
    fn handles_share_state() {
        let (db, car) = shared();
        let other = db.clone();
        other.advance_clock(10);
        assert_eq!(db.now(), 10);
        db.update_motion(car, Velocity::zero()).unwrap();
        other.read(|d| {
            assert_eq!(d.object(car).unwrap().velocity_at(10), Some(Velocity::zero()));
        });
        db.write(|d| {
            d.add_region("Q", Polygon::rectangle(0.0, 0.0, 1.0, 1.0));
        });
        assert!(other.read(|d| d.region("Q").is_some()));
    }

    #[test]
    fn batched_updates_take_one_refresh_pass() {
        let (db, car) = shared();
        let q = Query::parse("RETRIEVE o WHERE Eventually within 500 INSIDE(o, P)").unwrap();
        let cq = db.write(|d| d.register_continuous(q)).unwrap();
        let baseline = db.read(|d| d.continuous_evaluations());
        db.apply_updates(&[
            UpdateOp::Motion { id: car, velocity: Velocity::new(2.0, 0.0) },
            UpdateOp::Motion { id: car, velocity: Velocity::new(3.0, 0.0) },
            UpdateOp::Static { id: car, attr: "PRICE".into(), value: Value::from(9.0) },
        ])
        .unwrap();
        db.read(|d| {
            // One refresh pass for the whole batch: at most one evaluation
            // (answer-changing or not) on top of the baseline.
            assert!(d.continuous_evaluations() + d.noop_refreshes() <= baseline + 1);
            assert_eq!(d.stats.updates, 3);
            // The final velocity is the last one in the batch.
            let now = d.now();
            assert_eq!(d.object(car).unwrap().velocity_at(now), Some(Velocity::new(3.0, 0.0)));
        });
        let _ = cq;
    }

    #[test]
    fn batched_updates_stop_at_first_error() {
        let (db, car) = shared();
        let err = db
            .apply_updates(&[
                UpdateOp::Motion { id: car, velocity: Velocity::zero() },
                UpdateOp::Motion { id: 999, velocity: Velocity::zero() },
                UpdateOp::Motion { id: car, velocity: Velocity::new(5.0, 5.0) },
            ])
            .unwrap_err();
        assert!(matches!(err, crate::error::CoreError::UnknownObject(999)));
        db.read(|d| {
            // The first op applied; the one after the failure did not.
            assert_eq!(d.object(car).unwrap().velocity_at(d.now()), Some(Velocity::zero()));
            assert_eq!(d.stats.updates, 1);
        });
        // The failed batch still published exactly one epoch (its prefix
        // must not merge into a later batch's epoch).
        assert_eq!(db.epoch_stats().current, 1);
    }

    #[test]
    fn readonly_queries_do_not_bump_stats() {
        let (db, _) = shared();
        let q = Query::parse("RETRIEVE o WHERE true").unwrap();
        let _ = db.instantaneous(&q).unwrap();
        let _ = db.instantaneous_now(&q).unwrap();
        assert_eq!(db.read(|d| d.stats.instantaneous_queries), 0);
        // Reads publish nothing: still epoch 0.
        assert_eq!(db.epoch_stats().current, 0);
    }
}
