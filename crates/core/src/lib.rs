//! The MOST data model (Moving Objects Spatio-Temporal), Sections 2 and 5
//! of the paper.
//!
//! A [`Database`] holds object classes, moving objects with *dynamic
//! attributes* (position coordinates and scalar attributes represented as
//! `value` / `updatetime` / `function` sub-attribute triples), named
//! regions, and the special `time` object (the tick clock).  On top of it:
//!
//! * the three query types of Section 2.3 — [`Database::instantaneous`],
//!   [`Database::register_continuous`] (materialized `Answer(CQ)` with
//!   re-evaluation only on relevant updates) and
//!   [`persistent::PersistentQuery`] (evaluated over the *recorded* update
//!   history — the paper's future-work item, implemented here);
//! * temporal [`trigger::Trigger`]s built from continuous queries
//!   (Section 2.3: "continuous and persistent queries can be used to define
//!   temporal triggers");
//! * the MOST-on-top-of-a-DBMS layer of Section 5.1 ([`rewrite`]): dynamic
//!   attributes stored as three host-DBMS columns, queries decomposed via
//!   `F = (F' ∧ p) ∨ (F'' ∧ ¬p)` into up to `2^k` nontemporal subqueries;
//! * optional maintenance of the Section 4 spatial index over positions
//!   ([`Database::enable_spatial_index`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class;
pub mod continuous;
pub mod database;
pub mod deps;
pub mod dynamic;
pub mod epoch;
pub mod error;
pub mod object;
pub mod persistent;
mod refresh;
pub mod rewrite;
pub mod sharded;
pub mod shared;
pub mod snapshot;
pub mod trigger;
pub mod wal;

pub use class::ClassDef;
pub use continuous::display_delta;
pub use database::{Database, MotionUpdate, RefreshMode, UpdateOp};
pub use deps::{DepSet, UpdateKind};
pub use dynamic::{AttrFunction, DynamicAttribute};
pub use epoch::{EpochDb, EpochPin, EpochSnapshot, EpochStats, PublishObserver};
pub use error::{CoreError, CoreResult};
pub use most_index::IndexKind;
pub use object::MovingObject;
pub use persistent::PersistentQuery;
pub use rewrite::MostDbmsLayer;
pub use sharded::{CutPin, ShardCut, ShardRouting, ShardedDb, ShardedDbBuilder};
pub use shared::SharedDatabase;
pub use trigger::{Trigger, TriggerEvent};
pub use wal::{apply_record, recover, DurableDb, Recovery, Wal, WalConfig, WalRecord};
