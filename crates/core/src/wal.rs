//! Durable write-ahead log and crash recovery for the MOST database.
//!
//! The paper's MOST model is a *continuously updated service*: motion
//! vectors stream in, continuous queries stay registered for hours, and
//! Section 5's deployment picture has no notion of "restart from
//! nothing".  This module makes the global update sequence the durable
//! unit of state, so a crash loses at most the record that was being
//! written when the power went out:
//!
//! * Every mutation that changes database state — an update batch, a
//!   clock advance, a continuous-query registration or cancellation —
//!   is a [`WalRecord`].  [`Wal::append`] serializes it with
//!   `most-testkit::ser`, frames it as
//!   `[len: u32 LE][fnv1a64(payload): u64 LE][payload]`, and writes it
//!   to the current segment file **before** the mutation is applied and
//!   published as an epoch (write-ahead discipline).
//! * Segments rotate at a configurable byte threshold
//!   ([`WalConfig::segment_bytes`]), so the log is a sequence of
//!   bounded files `wal-00000001.seg`, `wal-00000002.seg`, …
//! * A **checkpoint** ([`Wal::checkpoint`]) rides the existing
//!   snapshot machinery (`Database: ToJson/FromJson`, the `mostql`
//!   SAVE/LOAD path): the full state is written to `checkpoint.tmp`,
//!   atomically renamed to `checkpoint.json`, and every segment wholly
//!   covered by it is deleted.  The log therefore never grows without
//!   bound.
//! * **Recovery** ([`recover`]) restores the checkpoint and replays the
//!   committed suffix.  A torn tail (a partial final write), a
//!   truncated segment, or a corrupt checksum stops the replay at the
//!   **last valid record of that segment** — recovery never panics and
//!   never applies a partially written batch, because a record is only
//!   applied once its full payload has been length-checked,
//!   checksum-verified, decoded, and sequence-checked.  Stale segments
//!   (left behind when a crash interrupts post-checkpoint pruning) are
//!   skipped, and later segments carrying the committed continuation
//!   still replay.
//!
//! [`DurableDb`] packages the discipline: an [`EpochDb`] whose mutating
//! entry points append to the log first (under one lock, so log order
//! is exactly apply order), with optional automatic checkpointing every
//! N records.  Replay is deterministic — applying the same records to
//! the checkpoint state reproduces the crashed primary's published
//! state *byte for byte*, including continuous-query answers and
//! counters ([`Database::fingerprint`] compares whole states) — which
//! is also what makes WAL records a valid replication feed
//! (`most-mobile::replication`, the `most-server` `Feed` endpoint).

use crate::database::{Database, UpdateOp};
use crate::epoch::{EpochDb, EpochPin};
use crate::error::{CoreError, CoreResult};
use most_ftl::Query;
use most_testkit::hash::fnv1a64;
use most_testkit::ser::{from_json_str, to_json_string};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic bytes opening every segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"MOSTWAL1";

/// Per-record frame header: `u32` length + `u64` checksum.
const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on one record's payload; a decoded length beyond this is
/// treated as corruption (it would otherwise let a torn length prefix
/// ask for gigabytes).
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// One durable entry of the global mutation sequence.  Replaying the
/// records in order against the checkpoint state reproduces the
/// database exactly — each variant mirrors one mutating entry point.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An explicit update batch ([`Database::apply_updates`] semantics,
    /// including prefix-on-error).
    Batch {
        /// The updates, applied in order.
        ops: Vec<UpdateOp>,
    },
    /// A clock advance.
    Advance {
        /// Ticks advanced.
        ticks: u64,
    },
    /// A continuous-query registration; the text re-parses identically
    /// on replay, so ids assign deterministically.
    Register {
        /// FTL query text.
        query: String,
    },
    /// A continuous-query cancellation.
    Cancel {
        /// The continuous-query id.
        cq: u64,
    },
}

most_testkit::json_enum!(WalRecord {
    Batch { ops },
    Advance { ticks },
    Register { query },
    Cancel { cq },
});

/// The framed payload: sequence number + record, so replay can verify
/// contiguity even across segment boundaries.
#[derive(Debug, Clone, PartialEq)]
struct LoggedRecord {
    seq: u64,
    record: WalRecord,
}

most_testkit::json_struct!(LoggedRecord { seq, record });

/// The checkpoint document: the serialized database plus the sequence
/// number replay resumes from.
#[derive(Debug, Clone)]
struct CheckpointDoc {
    next_seq: u64,
    db: Database,
}

most_testkit::json_struct!(CheckpointDoc { next_seq, db });

/// Applies one [`WalRecord`] to a database — the single definition of
/// replay semantics, shared by recovery, replicas, and the primary's
/// own mutation path.  Errors are **deterministic** (an unknown object
/// in a batch, an unparsable query) and occur identically on the
/// primary and on every replay, so callers replaying a log treat them
/// as mirrored no-ops, not corruption.
pub fn apply_record(db: &mut Database, record: &WalRecord) -> CoreResult<()> {
    match record {
        WalRecord::Batch { ops } => db.apply_updates(ops),
        WalRecord::Advance { ticks } => {
            db.advance_clock(*ticks);
            Ok(())
        }
        WalRecord::Register { query } => {
            let q = Query::parse(query)?;
            db.register_continuous(q)?;
            Ok(())
        }
        WalRecord::Cancel { cq } => db.cancel_continuous(*cq),
    }
}

/// Write-ahead log tuning.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Byte threshold after which the current segment is closed and a
    /// new one opened.
    pub segment_bytes: u64,
    /// `sync_all` after every append (durability against OS crash, at a
    /// syscall cost; tests leave it off).
    pub sync: bool,
    /// Automatic checkpoint every N appended records via
    /// [`DurableDb`]; `0` disables (manual checkpoints only).
    pub checkpoint_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { segment_bytes: 256 * 1024, sync: false, checkpoint_every: 0 }
    }
}

/// Outcome of [`recover`]: the restored state plus replay accounting.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered database: checkpoint state + committed suffix.
    pub db: Database,
    /// The sequence number the next append must use.
    pub next_seq: u64,
    /// The sequence number recorded in the checkpoint (replay started
    /// here).
    pub checkpoint_seq: u64,
    /// Records replayed from the log (all kinds).
    pub records_replayed: u64,
    /// Update batches among the replayed records.
    pub batches_replayed: u64,
    /// Replayed records whose application returned a (deterministic,
    /// mirrored-from-the-primary) error.
    pub records_failed: u64,
    /// Whether a torn tail, truncated segment, or corrupt checksum was
    /// detected; the invalid frame and the rest of its segment were
    /// discarded.  Later segments still replay when they carry the
    /// committed continuation of the sequence.
    pub truncated_tail: bool,
    /// Valid records skipped because their sequence numbers were below
    /// the replay point — segments left behind by a crash between a
    /// checkpoint and its segment pruning.
    pub stale_skipped: u64,
    /// Segment files visited.
    pub segments_scanned: u64,
    /// Index of the highest segment file present (0 when none), so a
    /// reopened writer can start a fresh segment after it.
    pub last_segment: u64,
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.json")
}

/// Sorted indices of the segment files present in `dir`.
fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix("wal-") {
            if let Some(idx) = rest.strip_suffix(".seg") {
                if let Ok(n) = idx.parse::<u64>() {
                    out.push(n);
                }
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// How one segment scan ended.
enum ScanEnd {
    /// Every byte consumed as valid (or stale, checkpoint-covered)
    /// records.
    Clean,
    /// A torn / truncated / corrupt frame was found; the rest of *this*
    /// segment is discarded.  Later segments may still continue the
    /// committed sequence — appends after a crash always go to a fresh
    /// segment ([`Wal::reopen`]), so nothing valid ever follows a torn
    /// frame within one file.
    Corrupt,
}

/// Scans one segment, invoking `on_record` for each valid in-sequence
/// record.  A valid record with `seq` *below* the expected one is
/// **stale** — wholly covered by the checkpoint (a crash between the
/// checkpoint rename and segment pruning leaves such segments behind)
/// — and is skipped, never re-applied.  Stops (returning
/// [`ScanEnd::Corrupt`]) at the first invalid byte: bad magic, short
/// header, oversized or overrunning length, checksum mismatch,
/// undecodable payload, or a sequence *gap* (`seq` above the expected
/// one — the missing record is unrecoverable).
fn scan_segment(
    path: &Path,
    expected_seq: &mut u64,
    stale: &mut u64,
    mut on_record: impl FnMut(u64, WalRecord),
) -> io::Result<ScanEnd> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Ok(ScanEnd::Corrupt);
    }
    let mut at = SEGMENT_MAGIC.len();
    while at < bytes.len() {
        if bytes.len() - at < FRAME_HEADER {
            return Ok(ScanEnd::Corrupt); // torn header
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let crc = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
        if len == 0 || len > MAX_RECORD {
            return Ok(ScanEnd::Corrupt);
        }
        let start = at + FRAME_HEADER;
        let Some(end) = start.checked_add(len as usize) else {
            return Ok(ScanEnd::Corrupt);
        };
        if end > bytes.len() {
            return Ok(ScanEnd::Corrupt); // torn payload
        }
        let payload = &bytes[start..end];
        if fnv1a64(payload) != crc {
            return Ok(ScanEnd::Corrupt);
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return Ok(ScanEnd::Corrupt);
        };
        let Ok(logged) = from_json_str::<LoggedRecord>(text) else {
            return Ok(ScanEnd::Corrupt);
        };
        if logged.seq < *expected_seq {
            // Covered by the checkpoint: a crash between the checkpoint
            // rename and segment pruning leaves whole segments of such
            // records behind.  Skip, never re-apply.
            *stale += 1;
            at = end;
            continue;
        }
        if logged.seq > *expected_seq {
            return Ok(ScanEnd::Corrupt);
        }
        on_record(logged.seq, logged.record);
        *expected_seq += 1;
        at = end;
    }
    Ok(ScanEnd::Clean)
}

/// Scans the whole log (checkpoint + segments) without applying
/// anything, invoking `on_record` per committed record from
/// `from_seq` on.  Corruption discards only the rest of its own
/// segment; later segments resume replay exactly when they carry the
/// contiguous continuation (the fresh segment a post-crash [`Wal::reopen`]
/// appended committed records into), so a stale or torn file never
/// swallows records committed after it.  Returns
/// `(next_seq, truncated_tail, last_segment, stale_skipped)`.
fn scan_log(
    dir: &Path,
    from_seq: u64,
    mut on_record: impl FnMut(u64, WalRecord),
) -> io::Result<(u64, bool, u64, u64)> {
    let mut expected = from_seq;
    let mut truncated = false;
    let mut last_segment = 0u64;
    let mut stale = 0u64;
    for idx in segment_indices(dir)? {
        last_segment = idx;
        match scan_segment(&dir.join(segment_name(idx)), &mut expected, &mut stale, &mut on_record)?
        {
            ScanEnd::Clean => {}
            ScanEnd::Corrupt => truncated = true,
        }
    }
    Ok((expected, truncated, last_segment, stale))
}

/// Recovers the database state from `dir`: restores the checkpoint,
/// replays the committed log suffix, and stops at the last valid
/// record.  Never panics on torn or corrupt input; never applies a
/// partial record.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    let text = fs::read_to_string(checkpoint_path(dir))?;
    let doc: CheckpointDoc = from_json_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint: {e}")))?;
    let mut db = doc.db;
    let checkpoint_seq = doc.next_seq;
    let mut records_replayed = 0u64;
    let mut batches_replayed = 0u64;
    let mut records_failed = 0u64;
    let segments = segment_indices(dir)?.len() as u64;
    let (next_seq, truncated_tail, last_segment, stale_skipped) =
        scan_log(dir, checkpoint_seq, |_seq, record| {
            if matches!(record, WalRecord::Batch { .. }) {
                batches_replayed += 1;
            }
            if apply_record(&mut db, &record).is_err() {
                // Deterministic application error, mirrored from the
                // primary: the state change (or lack of it) is identical.
                records_failed += 1;
            }
            records_replayed += 1;
        })?;
    most_obs::add("recovery.records_replayed", records_replayed);
    most_obs::add("recovery.batches_replayed", batches_replayed);
    most_obs::add("recovery.records_failed", records_failed);
    most_obs::add("recovery.stale_skipped", stale_skipped);
    if truncated_tail {
        most_obs::inc("recovery.truncated_tail");
    }
    Ok(Recovery {
        db,
        next_seq,
        checkpoint_seq,
        records_replayed,
        batches_replayed,
        records_failed,
        truncated_tail,
        stale_skipped,
        segments_scanned: segments,
        last_segment,
    })
}

/// The write side of the log: an open segment file plus rotation and
/// checkpoint bookkeeping.  All methods take `&mut self`; concurrent
/// writers serialize through [`DurableDb`]'s lock.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    file: File,
    segment: u64,
    segment_written: u64,
    next_seq: u64,
    appends_since_checkpoint: u64,
}

impl Wal {
    /// Creates a fresh log in `dir` (created if missing), writing the
    /// initial checkpoint of `db` so recovery always has a base state.
    /// Fails with [`io::ErrorKind::AlreadyExists`] if a checkpoint is
    /// already present — use [`Wal::reopen`] (via [`recover`]) instead.
    pub fn create(dir: &Path, db: &Database, cfg: WalConfig) -> io::Result<Wal> {
        fs::create_dir_all(dir)?;
        if checkpoint_path(dir).exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds a WAL checkpoint", dir.display()),
            ));
        }
        write_checkpoint(dir, 0, db)?;
        let segment = 1;
        let file = open_segment(dir, segment)?;
        most_obs::inc("wal.segments");
        Ok(Wal {
            dir: dir.to_path_buf(),
            cfg,
            file,
            segment,
            segment_written: SEGMENT_MAGIC.len() as u64,
            next_seq: 0,
            appends_since_checkpoint: 0,
        })
    }

    /// Reopens the log for appending after a [`recover`]: starts a
    /// fresh segment *after* the last existing one, so a torn tail left
    /// by the crash is never appended to (replay ignores everything
    /// past the corruption point; new records must not land behind it).
    pub fn reopen(dir: &Path, recovery: &Recovery, cfg: WalConfig) -> io::Result<Wal> {
        let segment = recovery.last_segment + 1;
        let file = open_segment(dir, segment)?;
        most_obs::inc("wal.segments");
        Ok(Wal {
            dir: dir.to_path_buf(),
            cfg,
            file,
            segment,
            segment_written: SEGMENT_MAGIC.len() as u64,
            next_seq: recovery.next_seq,
            appends_since_checkpoint: 0,
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next [`Wal::append`] will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record and returns its sequence number.  The record
    /// is on disk (and, with [`WalConfig::sync`], synced) before this
    /// returns — callers apply the mutation only afterwards.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let seq = self.next_seq;
        let logged = LoggedRecord { seq, record: record.clone() };
        let payload = to_json_string(&logged)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))?;
        let payload = payload.as_bytes();
        if payload.len() as u64 > u64::from(MAX_RECORD) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("record of {} bytes exceeds the {MAX_RECORD}-byte cap", payload.len()),
            ));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        if self.cfg.sync {
            self.file.sync_all()?;
        }
        self.next_seq += 1;
        self.segment_written += frame.len() as u64;
        self.appends_since_checkpoint += 1;
        most_obs::inc("wal.appends");
        most_obs::add("wal.bytes", frame.len() as u64);
        if self.segment_written >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        Ok(seq)
    }

    /// Closes the current segment and opens the next.
    fn rotate(&mut self) -> io::Result<()> {
        if self.cfg.sync {
            self.file.sync_all()?;
        }
        self.segment += 1;
        self.file = open_segment(&self.dir, self.segment)?;
        self.segment_written = SEGMENT_MAGIC.len() as u64;
        most_obs::inc("wal.segments");
        Ok(())
    }

    /// Checkpoints `db`, which must be the state after applying every
    /// appended record (the [`DurableDb`] lock guarantees it).  The
    /// snapshot is written to a temp file and atomically renamed; then
    /// the log rotates and every earlier segment — now wholly covered
    /// by the checkpoint — is deleted.
    pub fn checkpoint(&mut self, db: &Database) -> io::Result<()> {
        write_checkpoint(&self.dir, self.next_seq, db)?;
        let covered = self.segment;
        self.rotate()?;
        for idx in segment_indices(&self.dir)? {
            if idx <= covered {
                fs::remove_file(self.dir.join(segment_name(idx)))?;
            }
        }
        self.appends_since_checkpoint = 0;
        most_obs::inc("wal.checkpoints");
        Ok(())
    }

    /// Records appended since the last checkpoint (or creation).
    pub fn appends_since_checkpoint(&self) -> u64 {
        self.appends_since_checkpoint
    }

    /// The checkpoint horizon: the sequence number the on-disk
    /// checkpoint replays from.  Records below it have been (or may at
    /// any moment be) pruned with their segments.
    pub fn checkpoint_seq(&self) -> io::Result<u64> {
        let text = fs::read_to_string(checkpoint_path(&self.dir))?;
        from_json_str::<CheckpointDoc>(&text)
            .map(|d| d.next_seq)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint: {e}")))
    }

    /// Reads the committed records with `seq >= from_seq` — the replica
    /// catch-up feed.  Only fully committed (checksummed, in-sequence)
    /// records are returned; a torn tail is silently excluded, exactly
    /// as recovery would exclude it.  A `from_seq` below the checkpoint
    /// horizon is an [`io::ErrorKind::NotFound`] error, never a silently
    /// gapped stream: those records were pruned, and the caller must
    /// bootstrap from a snapshot instead ([`DurableDb::read_from`]
    /// surfaces this as [`CoreError::WalFeedPruned`]).
    pub fn read_from(&self, from_seq: u64) -> io::Result<Vec<(u64, WalRecord)>> {
        let doc_seq = self.checkpoint_seq()?;
        if from_seq < doc_seq {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "feed from {from_seq} predates the checkpoint horizon {doc_seq}: \
                     earlier records were pruned; bootstrap from a snapshot"
                ),
            ));
        }
        let mut out = Vec::new();
        let (_next, _truncated, _last, _stale) = scan_log(&self.dir, doc_seq, |seq, record| {
            if seq >= from_seq {
                out.push((seq, record));
            }
        })?;
        Ok(out)
    }
}

fn open_segment(dir: &Path, index: u64) -> io::Result<File> {
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(segment_name(index)))?;
    file.write_all(SEGMENT_MAGIC)?;
    Ok(file)
}

/// Writes the checkpoint document atomically: temp file, sync, rename.
fn write_checkpoint(dir: &Path, next_seq: u64, db: &Database) -> io::Result<()> {
    // Hand-assembled [`CheckpointDoc`] JSON (same field names/order as
    // its `json_struct!`) so the snapshot serializes straight from the
    // borrowed state instead of deep-cloning the database first.
    let doc = most_testkit::ser::Json::Obj(vec![
        ("next_seq".to_owned(), most_testkit::ser::ToJson::to_json(&next_seq)),
        ("db".to_owned(), most_testkit::ser::ToJson::to_json(db)),
    ]);
    let text = doc
        .render()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))?;
    let tmp = dir.join("checkpoint.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, checkpoint_path(dir))?;
    Ok(())
}

/// An epoch database whose mutations are write-ahead logged.
///
/// All mutating entry points take one internal lock across
/// *append-then-apply*, so the log's record order is exactly the epoch
/// publication order — the invariant both recovery and replication
/// depend on.  Readers are untouched: [`DurableDb::pin`] is the same
/// lock-free epoch pin as [`EpochDb::pin`].
#[derive(Debug)]
pub struct DurableDb {
    epochs: EpochDb,
    wal: Mutex<Wal>,
}

impl DurableDb {
    /// Creates a fresh durable database over `db` in `dir` (initial
    /// checkpoint + empty log).
    pub fn create(dir: &Path, db: Database, cfg: WalConfig) -> io::Result<DurableDb> {
        let wal = Wal::create(dir, &db, cfg)?;
        Ok(DurableDb { epochs: EpochDb::new(db), wal: Mutex::new(wal) })
    }

    /// Recovers from `dir` and reopens for appending.  The recovered
    /// state becomes epoch 0; the [`Recovery`] accounting is returned
    /// alongside.
    pub fn open(dir: &Path, cfg: WalConfig) -> io::Result<(DurableDb, Recovery)> {
        let recovery = recover(dir)?;
        let wal = Wal::reopen(dir, &recovery, cfg)?;
        let durable =
            DurableDb { epochs: EpochDb::new(recovery.db.clone()), wal: Mutex::new(wal) };
        Ok((durable, recovery))
    }

    /// The underlying epoch engine (for lock-free reads and epoch
    /// accounting).
    pub fn epochs(&self) -> &EpochDb {
        &self.epochs
    }

    /// Pins the currently published epoch for lock-free reading.
    pub fn pin(&self) -> EpochPin {
        self.epochs.pin()
    }

    /// The sequence number the next logged mutation will get.
    pub fn next_seq(&self) -> u64 {
        self.wal.lock().expect("wal lock poisoned").next_seq()
    }

    /// Logs and applies one record: append (write-ahead), apply to the
    /// next epoch, publish, then auto-checkpoint if configured.  On an
    /// append I/O failure nothing is applied.  Returns the assigned
    /// continuous-query id for `Register` records, `None` otherwise.
    fn log_and_apply(&self, record: WalRecord) -> CoreResult<Option<u64>> {
        let mut wal = self.wal.lock().expect("wal lock poisoned");
        wal.append(&record).map_err(|e| CoreError::Wal(e.to_string()))?;
        let result = match &record {
            WalRecord::Batch { ops } => self.epochs.apply_updates(ops).map(|()| None),
            WalRecord::Advance { ticks } => {
                let t = *ticks;
                self.epochs.commit(|d| d.advance_clock(t));
                Ok(None)
            }
            WalRecord::Register { query } => {
                let q = Query::parse(query)?;
                self.epochs.commit(|d| d.register_continuous(q)).map(Some)
            }
            WalRecord::Cancel { cq } => {
                let id = *cq;
                self.epochs.commit(|d| d.cancel_continuous(id)).map(|()| None)
            }
        };
        let every = wal.cfg.checkpoint_every;
        if every > 0 && wal.appends_since_checkpoint() >= every {
            let pin = self.epochs.pin();
            // The mutation is already durably appended and applied; a
            // failed auto-checkpoint must not be reported as a failed
            // mutation.  `appends_since_checkpoint` stays at or above
            // the threshold, so the next append retries the checkpoint.
            if wal.checkpoint(pin.db()).is_err() {
                most_obs::inc("wal.checkpoint_failures");
            }
        }
        result
    }

    /// Logs and applies an update batch as one epoch (prefix-on-error
    /// semantics, mirrored exactly on replay).
    pub fn apply_updates(&self, ops: &[UpdateOp]) -> CoreResult<()> {
        self.log_and_apply(WalRecord::Batch { ops: ops.to_vec() }).map(|_| ())
    }

    /// Logs and applies a clock advance.
    pub fn advance_clock(&self, ticks: u64) -> CoreResult<()> {
        self.log_and_apply(WalRecord::Advance { ticks }).map(|_| ())
    }

    /// Logs and registers a continuous query, returning its id.  The
    /// *text* is logged, so replay re-parses identically and ids assign
    /// deterministically.
    pub fn register_continuous(&self, query: &str) -> CoreResult<u64> {
        // Parse first: an unparsable query must not reach the log.
        Query::parse(query)?;
        let id = self.log_and_apply(WalRecord::Register { query: query.to_owned() })?;
        Ok(id.expect("Register records return the assigned id"))
    }

    /// Logs and cancels a continuous query.
    pub fn cancel_continuous(&self, cq: u64) -> CoreResult<()> {
        self.log_and_apply(WalRecord::Cancel { cq }).map(|_| ())
    }

    /// Takes a checkpoint of the currently published state and prunes
    /// fully covered segments.
    pub fn checkpoint(&self) -> CoreResult<()> {
        let mut wal = self.wal.lock().expect("wal lock poisoned");
        let pin = self.epochs.pin();
        wal.checkpoint(pin.db()).map_err(|e| CoreError::Wal(e.to_string()))
    }

    /// Committed records with `seq >= from_seq` (the replica catch-up
    /// feed).  A `from_seq` below the checkpoint horizon returns
    /// [`CoreError::WalFeedPruned`] carrying the horizon, so the caller
    /// knows to bootstrap from a snapshot instead of tailing into a
    /// permanent gap.
    pub fn read_from(&self, from_seq: u64) -> CoreResult<Vec<(u64, WalRecord)>> {
        let wal = self.wal.lock().expect("wal lock poisoned");
        let checkpoint_seq =
            wal.checkpoint_seq().map_err(|e| CoreError::Wal(e.to_string()))?;
        if from_seq < checkpoint_seq {
            return Err(CoreError::WalFeedPruned { from_seq, checkpoint_seq });
        }
        wal.read_from(from_seq).map_err(|e| CoreError::Wal(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_codec_round_trips() {
        let records = vec![
            WalRecord::Advance { ticks: 7 },
            WalRecord::Register { query: "RETRIEVE o WHERE INSIDE(o, P)".into() },
            WalRecord::Cancel { cq: 3 },
            WalRecord::Batch {
                ops: vec![UpdateOp::Motion {
                    id: 1,
                    velocity: most_spatial::Velocity::new(1.0, -2.0),
                }],
            },
        ];
        for r in records {
            let text = to_json_string(&r).unwrap();
            let back: WalRecord = from_json_str(&text).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn segment_names_sort_lexicographically() {
        assert_eq!(segment_name(1), "wal-00000001.seg");
        assert!(segment_name(9) < segment_name(10));
        assert!(segment_name(99_999_999) > segment_name(10));
    }
}
