//! Parallel refresh evaluation for the continuous-query engine.
//!
//! After dependency filtering (`Database::after_updates`), the queries
//! that must re-evaluate are independent of one another: each reads the
//! database immutably and produces a fresh [`Answer`].  This module fans
//! that evaluation work across [`std::thread::scope`] workers; merging
//! back into the registry stays serial in the caller (it mutates shared
//! state and is cheap compared to evaluation).
//!
//! Worker shards evaluate their queries with `eval_workers = 1`: the two
//! parallelism levels (across queries here, across candidate objects in
//! `most_ftl::eval`) are never nested, so the thread count stays bounded
//! by whichever level is active.

use crate::database::{Database, PlanState};
use crate::error::{CoreError, CoreResult};
use most_ftl::answer::Answer;
use most_ftl::Query;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Re-evaluates every query in `queries` against the current database
/// state, using up to `workers` threads.  `plans` travels in parallel to
/// `queries`: a `Some` entry evaluates through its compiled plan (replaying
/// and refilling the per-atom cache), a `None` entry interprets the AST.
/// Returns, per query, its id, the evaluation result, the evaluation's
/// wall-clock cost in nanoseconds, and the plan state handed back to the
/// caller.  Result order matches input order regardless of worker count,
/// so the caller's serial merge is deterministic.
pub(crate) fn evaluate_refresh_set(
    db: &Database,
    queries: &[(u64, Query)],
    mut plans: Vec<Option<PlanState>>,
    workers: usize,
    eval_workers: usize,
) -> Vec<(u64, CoreResult<Answer>, u64, Option<PlanState>)> {
    debug_assert_eq!(plans.len(), queries.len());
    plans.resize_with(queries.len(), || None);
    let workers = workers.max(1).min(queries.len().max(1));
    if workers <= 1 {
        most_obs::add("refresh.shards", u64::from(!queries.is_empty()));
        let out: Vec<_> = queries
            .iter()
            .zip(plans)
            .map(|((id, q), mut plan)| {
                let (result, nanos) = timed_eval(db, q, &mut plan, eval_workers);
                (*id, result, nanos, plan)
            })
            .collect();
        for (_, _, nanos, _) in &out {
            most_obs::observe("refresh.query_nanos", *nanos);
        }
        return out;
    }
    let chunk = queries.len().div_ceil(workers);
    let mut out = Vec::with_capacity(queries.len());
    let mut shard_nanos = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for shard in queries.chunks(chunk) {
            let rest = plans.split_off(shard.len().min(plans.len()));
            let shard_plans = std::mem::replace(&mut plans, rest);
            handles.push(scope.spawn(move || {
                let start = std::time::Instant::now();
                let results = shard
                    .iter()
                    .zip(shard_plans)
                    .map(|((id, q), mut plan)| {
                        let (result, nanos) = timed_eval(db, q, &mut plan, 1);
                        (*id, result, nanos, plan)
                    })
                    .collect::<Vec<_>>();
                (results, start.elapsed().as_nanos() as u64)
            }));
        }
        for (handle, shard) in handles.into_iter().zip(queries.chunks(chunk)) {
            // `timed_eval` catches per-query panics, so a worker thread
            // dying is out-of-band (allocation failure, catch_unwind
            // escape).  Even then the refresh pass must survive: synthesize
            // an `EvalPanic` failure for each query the dead worker owned
            // instead of propagating the panic into the caller — which
            // would poison the `SharedDatabase` lock and wedge the server.
            match handle.join() {
                Ok((results, nanos)) => {
                    out.extend(results);
                    shard_nanos.push(nanos);
                }
                Err(payload) => {
                    most_obs::inc("refresh.worker_panics");
                    let msg = panic_message(&payload);
                    out.extend(shard.iter().map(|(id, _)| {
                        (
                            *id,
                            Err(CoreError::EvalPanic(format!(
                                "refresh worker died: {msg}"
                            ))),
                            0,
                            None,
                        )
                    }));
                }
            }
        }
    });
    // Registry traffic stays out of the worker loops: one batch here.
    most_obs::add("refresh.shards", shard_nanos.len() as u64);
    for nanos in shard_nanos {
        most_obs::observe("refresh.shard_nanos", nanos);
    }
    for (_, _, nanos, _) in &out {
        most_obs::observe("refresh.query_nanos", *nanos);
    }
    out
}

fn timed_eval(
    db: &Database,
    q: &Query,
    plan: &mut Option<PlanState>,
    eval_workers: usize,
) -> (CoreResult<Answer>, u64) {
    let start = std::time::Instant::now();
    // Evaluation runs arbitrary FTL over arbitrary trajectories; a panic in
    // one query must fail only that query's refresh, not abort the whole
    // pass.  The `AssertUnwindSafe` is justified: on panic the plan state is
    // discarded below (its per-atom cache may be half-written), and `db` is
    // only read.
    let result = match catch_unwind(AssertUnwindSafe(|| match plan {
        Some(state) => db.evaluate_global_with_plan(state, eval_workers),
        None => db.evaluate_global_with(q, eval_workers),
    })) {
        Ok(result) => result,
        Err(payload) => {
            most_obs::inc("refresh.worker_panics");
            // The compiled plan's cache may be inconsistent mid-panic;
            // drop it so the next refresh recompiles from the AST.
            *plan = None;
            Err(CoreError::EvalPanic(panic_message(&payload)))
        }
    };
    (result, start.elapsed().as_nanos() as u64)
}

/// Renders a `catch_unwind`/`join` payload: `&str` and `String` payloads
/// (everything `panic!` produces in practice) verbatim, anything else
/// generically.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::{Point, Polygon, Velocity};

    fn db_with_cars(n: u64) -> Database {
        let mut db = Database::new(300);
        for i in 0..n {
            db.insert_moving_object(
                "cars",
                Point::new(i as f64 * 5.0, 0.0),
                Velocity::new(1.0, 0.0),
            );
        }
        db.add_region("P", Polygon::rectangle(100.0, -10.0, 150.0, 10.0));
        db
    }

    #[test]
    fn parallel_matches_serial() {
        let db = db_with_cars(40);
        let queries: Vec<(u64, Query)> = (0..8)
            .map(|i| {
                let q = if i % 2 == 0 {
                    Query::parse("RETRIEVE o WHERE Eventually within 200 INSIDE(o, P)")
                } else {
                    Query::parse("RETRIEVE o WHERE OUTSIDE(o, P)")
                };
                (i, q.unwrap())
            })
            .collect();
        let serial = evaluate_refresh_set(&db, &queries, vec![None; queries.len()], 1, 1);
        for workers in [2, 4, 8, 16] {
            let parallel =
                evaluate_refresh_set(&db, &queries, vec![None; queries.len()], workers, 1);
            assert_eq!(parallel.len(), serial.len());
            for ((sid, sres, _, _), (pid, pres, _, _)) in serial.iter().zip(&parallel) {
                assert_eq!(sid, pid, "result order must match input order");
                assert_eq!(
                    sres.as_ref().unwrap(),
                    pres.as_ref().unwrap(),
                    "answers must not depend on worker count"
                );
            }
        }
    }

    #[test]
    fn compiled_plans_match_interpreter_across_workers() {
        let db = db_with_cars(40);
        let queries: Vec<(u64, Query)> = (0..8)
            .map(|i| {
                let q = if i % 2 == 0 {
                    Query::parse("RETRIEVE o WHERE Eventually within 200 INSIDE(o, P)")
                } else {
                    Query::parse("RETRIEVE o WHERE OUTSIDE(o, P)")
                };
                (i, q.unwrap())
            })
            .collect();
        let interpreted = evaluate_refresh_set(&db, &queries, vec![None; queries.len()], 1, 1);
        for workers in [1, 4] {
            let plans = queries.iter().map(|(_, q)| Some(PlanState::compile(q))).collect();
            let compiled = evaluate_refresh_set(&db, &queries, plans, workers, 1);
            for ((sid, sres, _, _), (pid, pres, _, plan)) in interpreted.iter().zip(&compiled) {
                assert_eq!(sid, pid);
                assert_eq!(
                    sres.as_ref().unwrap(),
                    pres.as_ref().unwrap(),
                    "compiled plans must reproduce interpreter answers"
                );
                assert!(plan.is_some(), "plan state must come back to the caller");
            }
        }
    }

    #[test]
    fn empty_set_is_fine() {
        let db = db_with_cars(1);
        assert!(evaluate_refresh_set(&db, &[], Vec::new(), 4, 1).is_empty());
    }
}
