//! Temporal triggers (Section 2.3): "continuous and persistent queries can
//! be used to define temporal triggers.  Such a trigger is simply one of
//! these two types of queries, coupled with an action and possibly an
//! event."
//!
//! A [`Trigger`] watches a continuous query's materialized answer; an event
//! fires when an instantiation *enters* the answer (the begin tick of one
//! of its satisfaction intervals).  Actions are left to the application:
//! [`crate::Database::take_trigger_events`] surfaces the events and the
//! caller reacts (this is the classical condition/action split — FTL was
//! introduced in the authors' earlier work precisely for trigger
//! conditions).

use most_dbms::value::Value;
use most_temporal::Tick;

/// A registered trigger.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Trigger id.
    pub id: u64,
    /// Human-readable name.
    pub name: String,
    /// The continuous query whose answer is watched.
    pub continuous_id: u64,
    /// Last tick up to which events were reported.
    pub last_polled: Tick,
}

/// A trigger firing.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerEvent {
    /// The trigger that fired.
    pub trigger: u64,
    /// The trigger's name.
    pub name: String,
    /// The instantiation that entered the answer.
    pub values: Vec<Value>,
    /// The tick at which its satisfaction interval begins.
    pub at: Tick,
}

/// Registry of triggers.
#[derive(Debug, Clone, Default)]
pub struct TriggerRegistry {
    next: u64,
    triggers: Vec<Trigger>,
}

impl TriggerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TriggerRegistry::default()
    }

    /// Creates a trigger watching continuous query `continuous_id`.
    pub fn create(&mut self, name: impl Into<String>, continuous_id: u64, now: Tick) -> u64 {
        let id = self.next;
        self.next += 1;
        self.triggers.push(Trigger {
            id,
            name: name.into(),
            continuous_id,
            last_polled: now,
        });
        id
    }

    /// Mutable iteration (polling updates `last_polled`).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Trigger> {
        self.triggers.iter_mut()
    }

    /// Number of triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// Whether no triggers exist.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }
}

most_testkit::json_struct!(Trigger { id, name, continuous_id, last_polled });
most_testkit::json_struct!(TriggerRegistry { next, triggers });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_ids_and_tracks_polling() {
        let mut reg = TriggerRegistry::new();
        let a = reg.create("a", 0, 5);
        let b = reg.create("b", 1, 5);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        for t in reg.iter_mut() {
            t.last_polled = 10;
        }
        assert!(reg.iter_mut().all(|t| t.last_polled == 10));
    }
}
