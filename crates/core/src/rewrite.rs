//! MOST on top of an existing DBMS (Section 5.1).
//!
//! "We store each dynamic attribute A as three DBMS attributes A.value,
//! A.updatetime, and A.function.  Any query posed to the DBMS is first
//! examined (and possibly modified) by the MOST system, and so is the
//! answer of the DBMS before it is returned to the user."
//!
//! The physical columns use `_` instead of `.` (`A_value`, `A_updatetime`,
//! `A_function`) because the substrate engine reserves `.` for
//! alias-qualified names.
//!
//! WHERE clauses containing atoms over dynamic attributes are decomposed
//! per the paper's equivalence `F = (F' ∧ p) ∨ (F'' ∧ ¬p)` — `F'` is `F`
//! with `p` replaced by `true`, `F''` with `false` — recursively until no
//! dynamic atoms remain.  The resulting (up to `2^k`) nontemporal queries
//! run on the host DBMS with the relevant sub-attributes and each FROM
//! table's key added to the target list; the MOST layer then evaluates the
//! eliminated atoms on the returned tuples at the query's entry time and
//! unions the survivors (experiment E5 measures the blow-up).

use crate::error::{CoreError, CoreResult};
use most_dbms::exec::{execute_with_stats, ResultSet};
use most_dbms::expr::Expr;
use most_dbms::query::{SelectQuery, TableRef};
use most_dbms::schema::{ColumnDef, ColumnType, Schema};
use most_dbms::tuple::Tuple;
use most_dbms::value::Value;
use most_dbms::Catalog;
use most_temporal::Tick;
use std::collections::{BTreeMap, BTreeSet};

/// Declaration of a table managed by the MOST layer.
#[derive(Debug, Clone)]
pub struct MovingTableDef {
    /// Table name.
    pub name: String,
    /// Static columns (the first is the primary key).
    pub static_columns: Vec<(String, ColumnType)>,
    /// Logical dynamic attributes (each stored as three physical columns).
    pub dynamic_attrs: Vec<String>,
}

/// Per-query rewrite statistics (experiment E5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Dynamic atoms eliminated.
    pub dynamic_atoms: u32,
    /// Host-DBMS subqueries executed (≤ 2^k).
    pub subqueries: u64,
    /// Tuples returned by the host DBMS before post-filtering.
    pub tuples_scanned: u64,
    /// Tuples surviving the post-filter.
    pub tuples_kept: u64,
}

/// The MOST software layer wrapping a host DBMS catalog.
#[derive(Debug, Clone, Default)]
pub struct MostDbmsLayer {
    catalog: Catalog,
    dynamic: BTreeMap<String, BTreeSet<String>>,
}

impl MostDbmsLayer {
    /// An empty layer over an empty host catalog.
    pub fn new() -> Self {
        MostDbmsLayer::default()
    }

    /// Direct access to the host catalog (tests / advanced use).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Creates a table with static columns and dynamic attributes.
    pub fn create_table(&mut self, def: MovingTableDef) -> CoreResult<()> {
        let mut cols: Vec<ColumnDef> = def
            .static_columns
            .iter()
            .map(|(n, t)| ColumnDef::new(n.clone(), *t))
            .collect();
        for a in &def.dynamic_attrs {
            cols.push(ColumnDef::new(format!("{a}_value"), ColumnType::Float));
            cols.push(ColumnDef::new(format!("{a}_updatetime"), ColumnType::Time));
            cols.push(ColumnDef::new(format!("{a}_function"), ColumnType::Float));
        }
        let key = def
            .static_columns
            .first()
            .map(|(n, _)| n.clone())
            .ok_or_else(|| CoreError::AttributeKind {
                attr: "<key>".into(),
                detail: "a moving table needs at least one static (key) column".into(),
            })?;
        let schema = Schema::with_key(cols, &key)?;
        self.catalog.create_table(def.name.clone(), schema)?;
        self.dynamic
            .insert(def.name.clone(), def.dynamic_attrs.iter().cloned().collect());
        Ok(())
    }

    /// Inserts a row: static values in declaration order, then one
    /// `(value, updatetime, slope)` triple per dynamic attribute.
    pub fn insert(
        &mut self,
        table: &str,
        statics: Vec<Value>,
        dynamics: Vec<(f64, Tick, f64)>,
    ) -> CoreResult<()> {
        let mut row = statics;
        for (v, t, s) in dynamics {
            row.push(Value::from(v));
            row.push(Value::Time(t));
            row.push(Value::from(s));
        }
        self.catalog.table_mut(table)?.insert(row)?;
        Ok(())
    }

    /// Explicitly updates a dynamic attribute's sub-attributes at tick
    /// `now` (value continues from the old function when `value` is
    /// `None`).
    pub fn update_dynamic(
        &mut self,
        table: &str,
        key: &Value,
        attr: &str,
        now: Tick,
        value: Option<f64>,
        slope: Option<f64>,
    ) -> CoreResult<()> {
        let t = self.catalog.table(table)?;
        let schema = t.schema();
        let row = t
            .get_by_key(key)
            .ok_or_else(|| CoreError::Db(most_dbms::DbError::KeyNotFound(key.clone())))?;
        let get = |suffix: &str| -> CoreResult<f64> {
            let idx = schema
                .index_of(&format!("{attr}_{suffix}"))
                .ok_or_else(|| CoreError::AttributeKind {
                    attr: attr.to_owned(),
                    detail: format!("`{attr}` is not a dynamic attribute of `{table}`"),
                })?;
            row.get(idx)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| CoreError::AttributeKind {
                    attr: attr.to_owned(),
                    detail: "corrupt sub-attribute".into(),
                })
        };
        let old_value = get("value")?;
        let old_time = get("updatetime")?;
        let old_slope = get("function")?;
        let new_value = value.unwrap_or(old_value + old_slope * (now as f64 - old_time));
        let new_slope = slope.unwrap_or(old_slope);
        let t = self.catalog.table_mut(table)?;
        t.update_by_key(key, &format!("{attr}_value"), Value::from(new_value))?;
        t.update_by_key(key, &format!("{attr}_updatetime"), Value::Time(now))?;
        t.update_by_key(key, &format!("{attr}_function"), Value::from(new_slope))?;
        Ok(())
    }

    /// Classifies a column reference: `Some(attr base name with optional
    /// alias prefix)` when it names a logical dynamic attribute.
    fn dynamic_ref(&self, from: &[TableRef], name: &str) -> Option<(String, String)> {
        if let Some((alias, attr)) = name.split_once('.') {
            let tref = from.iter().find(|t| t.alias == alias)?;
            if self.dynamic.get(&tref.table)?.contains(attr) {
                return Some((format!("{alias}."), attr.to_owned()));
            }
            None
        } else {
            for tref in from {
                if let Some(set) = self.dynamic.get(&tref.table) {
                    if set.contains(name) {
                        return Some((String::new(), name.to_owned()));
                    }
                }
            }
            None
        }
    }

    fn atom_is_dynamic(&self, from: &[TableRef], atom: &Expr) -> bool {
        atom.columns()
            .iter()
            .any(|c| self.dynamic_ref(from, c).is_some())
    }

    /// Executes a logical query whose SELECT and WHERE may reference
    /// dynamic attributes by name; `now` is the entry time at which their
    /// current values are computed.  Projection expressions must be plain
    /// column references.
    pub fn query(&self, q: &SelectQuery, now: Tick) -> CoreResult<(ResultSet, RewriteStats)> {
        for (name, e) in &q.select {
            if !matches!(e, Expr::Column(_)) {
                return Err(CoreError::AttributeKind {
                    attr: name.clone(),
                    detail: "the MOST layer projects plain columns only".into(),
                });
            }
        }
        let mut stats = RewriteStats::default();
        let dynamic_atoms: Vec<Expr> = q
            .where_clause
            .atoms()
            .into_iter()
            .filter(|a| self.atom_is_dynamic(&q.from, a))
            .cloned()
            .collect();
        stats.dynamic_atoms = dynamic_atoms.len() as u32;

        // Physical columns the leaves must retrieve.
        let mut fetch: BTreeSet<String> = BTreeSet::new();
        let add_col = |fetch: &mut BTreeSet<String>, name: &str| {
            match self.dynamic_ref(&q.from, name) {
                Some((prefix, attr)) => {
                    fetch.insert(format!("{prefix}{attr}_value"));
                    fetch.insert(format!("{prefix}{attr}_updatetime"));
                    fetch.insert(format!("{prefix}{attr}_function"));
                }
                None => {
                    fetch.insert(name.to_owned());
                }
            }
        };
        for (_, e) in &q.select {
            if let Expr::Column(c) = e {
                add_col(&mut fetch, c);
            }
        }
        for atom in &dynamic_atoms {
            for c in atom.columns() {
                add_col(&mut fetch, c);
            }
        }
        // "We ensure this by including in the target list of all four
        // queries, a key of each relation in the FROM clause."
        for tref in &q.from {
            let table = self.catalog.table(&tref.table)?;
            if let Some(k) = table.schema().key_index() {
                fetch.insert(format!(
                    "{}.{}",
                    tref.alias,
                    table.schema().columns()[k].name
                ));
            }
        }
        let fetch: Vec<String> = fetch.into_iter().collect();

        let mut rows: Vec<Tuple> = Vec::new();
        self.eval_rec(
            q,
            &q.where_clause,
            &dynamic_atoms,
            &mut Vec::new(),
            &fetch,
            now,
            &mut rows,
            &mut stats,
        )?;

        // Project to the requested outputs, computing dynamic values.
        let col_index: BTreeMap<&str, usize> = fetch
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut out_rows = Vec::with_capacity(rows.len());
        for row in rows {
            let mut out = Vec::with_capacity(q.select.len());
            for (_, e) in &q.select {
                let Expr::Column(c) = e else { unreachable!("validated above") };
                out.push(self.column_value(&q.from, c, &row, &col_index, now)?);
            }
            out_rows.push(Tuple::new(out));
        }
        out_rows.sort();
        out_rows.dedup();
        stats.tuples_kept = out_rows.len() as u64;
        Ok((
            ResultSet {
                columns: q.select.iter().map(|(n, _)| n.clone()).collect(),
                rows: out_rows,
            },
            stats,
        ))
    }

    /// Recursive atom elimination: the `EVAL(Q)` procedure.
    #[allow(clippy::too_many_arguments)]
    fn eval_rec(
        &self,
        q: &SelectQuery,
        where_clause: &Expr,
        atoms: &[Expr],
        pinned: &mut Vec<(Expr, bool)>,
        fetch: &[String],
        now: Tick,
        rows: &mut Vec<Tuple>,
        stats: &mut RewriteStats,
    ) -> CoreResult<()> {
        match atoms.first() {
            Some(p) => {
                let rest = &atoms[1..];
                for truth in [true, false] {
                    let substituted = where_clause.substitute_atom(p, truth);
                    pinned.push((p.clone(), truth));
                    self.eval_rec(q, &substituted, rest, pinned, fetch, now, rows, stats)?;
                    pinned.pop();
                }
                Ok(())
            }
            None => {
                // Leaf: a purely static query for the host DBMS.
                let leaf = SelectQuery {
                    select: fetch
                        .iter()
                        .map(|c| (c.clone(), Expr::Column(c.clone())))
                        .collect(),
                    from: q.from.clone(),
                    where_clause: where_clause.clone(),
                };
                let (rs, _) = execute_with_stats(&self.catalog, &leaf)?;
                stats.subqueries += 1;
                stats.tuples_scanned += rs.rows.len() as u64;
                let col_index: BTreeMap<&str, usize> = fetch
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.as_str(), i))
                    .collect();
                for row in rs.rows {
                    let mut keep = true;
                    for (atom, expected) in pinned.iter() {
                        let actual = atom.eval_bool(&|name: &str| {
                            self.column_value(&q.from, name, &row, &col_index, now)
                                .map_err(|_| {
                                    most_dbms::DbError::UnknownColumn(name.to_owned())
                                })
                        })?;
                        if actual != *expected {
                            keep = false;
                            break;
                        }
                    }
                    if keep {
                        rows.push(row);
                    }
                }
                Ok(())
            }
        }
    }

    /// The value of a logical column on a fetched row: dynamic attributes
    /// compute `value + function · (now − updatetime)`.
    fn column_value(
        &self,
        from: &[TableRef],
        name: &str,
        row: &Tuple,
        col_index: &BTreeMap<&str, usize>,
        now: Tick,
    ) -> CoreResult<Value> {
        let lookup = |col: &str| -> CoreResult<&Value> {
            col_index
                .get(col)
                .and_then(|&i| row.get(i))
                .ok_or_else(|| CoreError::Db(most_dbms::DbError::UnknownColumn(col.to_owned())))
        };
        match self.dynamic_ref(from, name) {
            Some((prefix, attr)) => {
                let v = lookup(&format!("{prefix}{attr}_value"))?
                    .as_f64()
                    .unwrap_or(0.0);
                let t = lookup(&format!("{prefix}{attr}_updatetime"))?
                    .as_f64()
                    .unwrap_or(0.0);
                let s = lookup(&format!("{prefix}{attr}_function"))?
                    .as_f64()
                    .unwrap_or(0.0);
                Ok(Value::from(v + s * (now as f64 - t)))
            }
            None => lookup(name).cloned(),
        }
    }

    /// An FTL evaluation context over one layer-managed table, realizing the
    /// last step of Section 5.1: "corresponding to [each maximal
    /// non-temporal subformula] g we compute a relation G ... by using the
    /// decomposition method for non-temporal queries described above.  All
    /// the relations computed in this fashion are combined using the
    /// procedure in the appendix."  Objects are the table's rows (keyed by
    /// an `Id` column); positions come from dynamic attributes named `X`
    /// and `Y` anchored at `now`; every other column is a static attribute.
    pub fn ftl_context(
        &self,
        table: &str,
        now: Tick,
        horizon: most_temporal::Duration,
        regions: std::collections::BTreeMap<String, most_spatial::Polygon>,
    ) -> CoreResult<LayerContext<'_>> {
        let t = self.catalog.table(table)?;
        let key = t.schema().key_index().ok_or_else(|| CoreError::AttributeKind {
            attr: "<key>".into(),
            detail: "ftl_context requires a keyed table".into(),
        })?;
        Ok(LayerContext { layer: self, table: table.to_owned(), key, now, horizon, regions })
    }
}

/// [`most_ftl::EvalContext`] view of a [`MostDbmsLayer`] table (Section 5.1
/// temporal queries over the host DBMS).  Local tick 0 corresponds to the
/// global tick `now` passed to [`MostDbmsLayer::ftl_context`].
pub struct LayerContext<'a> {
    layer: &'a MostDbmsLayer,
    table: String,
    key: usize,
    now: Tick,
    horizon: most_temporal::Duration,
    regions: std::collections::BTreeMap<String, most_spatial::Polygon>,
}

impl LayerContext<'_> {
    fn row_of(&self, id: u64) -> Option<&Tuple> {
        self.layer
            .catalog
            .table(&self.table)
            .ok()?
            .get_by_key(&Value::Id(id))
    }

    /// Reads the (value, updatetime, slope) triple of a dynamic attribute.
    fn dynamic_triple(&self, row: &Tuple, attr: &str) -> Option<(f64, f64, f64)> {
        let schema = self.layer.catalog.table(&self.table).ok()?.schema().clone();
        let get = |col: String| -> Option<f64> {
            schema.index_of(&col).and_then(|i| row.get(i)).and_then(|v| v.as_f64())
        };
        Some((
            get(format!("{attr}_value"))?,
            get(format!("{attr}_updatetime"))?,
            get(format!("{attr}_function"))?,
        ))
    }
}

impl most_ftl::EvalContext for LayerContext<'_> {
    fn horizon(&self) -> most_temporal::Horizon {
        most_temporal::Horizon::new(self.horizon)
    }

    fn object_ids(&self) -> Vec<u64> {
        let Ok(t) = self.layer.catalog.table(&self.table) else {
            return Vec::new();
        };
        let mut ids: Vec<u64> = t
            .rows()
            .iter()
            .filter_map(|r| r.get(self.key).and_then(|v| v.as_id()))
            .collect();
        ids.sort_unstable();
        ids
    }

    fn trajectory(&self, id: u64) -> Option<most_spatial::Trajectory> {
        let row = self.row_of(id)?;
        let (xv, xt, xs) = self.dynamic_triple(row, "X")?;
        let (yv, yt, ys) = self.dynamic_triple(row, "Y")?;
        // Current position at `now`, extrapolated per sub-attribute triples.
        let x = xv + xs * (self.now as f64 - xt);
        let y = yv + ys * (self.now as f64 - yt);
        Some(most_spatial::Trajectory::starting_at(
            most_spatial::Point::new(x, y),
            most_spatial::Velocity::new(xs, ys),
        ))
    }

    fn attr_series(
        &self,
        id: u64,
        name: &str,
    ) -> Vec<(Value, most_temporal::Interval)> {
        let Some(row) = self.row_of(id) else { return Vec::new() };
        let Ok(t) = self.layer.catalog.table(&self.table) else {
            return Vec::new();
        };
        // Dynamic sub-attribute columns are not static attributes.
        if self
            .layer
            .dynamic
            .get(&self.table)
            .is_some_and(|set| set.contains(name))
        {
            return Vec::new();
        }
        match t.schema().index_of(name).and_then(|i| row.get(i)) {
            Some(v) => vec![(
                v.clone(),
                most_temporal::Interval::new(0, self.horizon),
            )],
            None => Vec::new(),
        }
    }

    fn region(&self, name: &str) -> Option<most_spatial::Polygon> {
        self.regions.get(name).cloned()
    }

    fn dynamic_series(
        &self,
        id: u64,
        name: &str,
    ) -> Vec<(most_temporal::Interval, [f64; 3])> {
        // Scalar dynamic attributes other than the positional X/Y.
        if name == "X" || name == "Y" {
            return Vec::new();
        }
        if !self
            .layer
            .dynamic
            .get(&self.table)
            .is_some_and(|set| set.contains(name))
        {
            return Vec::new();
        }
        let Some(row) = self.row_of(id) else { return Vec::new() };
        let Some((v, t, s)) = self.dynamic_triple(row, name) else {
            return Vec::new();
        };
        // Local τ: value = v + s·((τ + now) − t)
        let c = v + s * (self.now as f64 - t);
        vec![(
            most_temporal::Interval::new(0, self.horizon),
            [0.0, s, c],
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_dbms::expr::CmpOp;

    /// Cars with a static PRICE and dynamic position coordinates.
    fn layer() -> MostDbmsLayer {
        let mut l = MostDbmsLayer::new();
        l.create_table(MovingTableDef {
            name: "cars".into(),
            static_columns: vec![
                ("id".into(), ColumnType::Id),
                ("price".into(), ColumnType::Float),
            ],
            dynamic_attrs: vec!["X".into(), "Y".into()],
        })
        .unwrap();
        // Car 1 heads east from 0 at speed 1; car 2 parked at x=100;
        // car 3 heads west from 200 at speed 2.
        l.insert("cars", vec![Value::Id(1), 80.0.into()], vec![(0.0, 0, 1.0), (0.0, 0, 0.0)])
            .unwrap();
        l.insert("cars", vec![Value::Id(2), 150.0.into()], vec![(100.0, 0, 0.0), (0.0, 0, 0.0)])
            .unwrap();
        l.insert("cars", vec![Value::Id(3), 60.0.into()], vec![(200.0, 0, -2.0), (5.0, 0, 0.0)])
            .unwrap();
        l
    }

    fn col(n: &str) -> Expr {
        Expr::Column(n.into())
    }

    #[test]
    fn select_clause_dynamic_attribute_computed() {
        let l = layer();
        // SELECT id, X FROM cars — no dynamic atoms in WHERE.
        let q = SelectQuery::from_table("cars").column("id").column("X");
        let (rs, stats) = l.query(&q, 50).unwrap();
        assert_eq!(stats.dynamic_atoms, 0);
        assert_eq!(stats.subqueries, 1);
        assert_eq!(rs.len(), 3);
        // Car 1 at x=50 at t=50.
        let r1 = rs.rows.iter().find(|r| r.get(0) == Some(&Value::Id(1))).unwrap();
        assert_eq!(r1.get(1), Some(&Value::from(50.0)));
        // Car 3 at 200 - 100 = 100.
        let r3 = rs.rows.iter().find(|r| r.get(0) == Some(&Value::Id(3))).unwrap();
        assert_eq!(r3.get(1), Some(&Value::from(100.0)));
    }

    #[test]
    fn single_dynamic_atom_two_subqueries() {
        let l = layer();
        // WHERE X <= 90 AND price <= 100
        let q = SelectQuery::from_table("cars").column("id").filter(
            Expr::cmp(CmpOp::Le, col("X"), Expr::val(90.0))
                .and(Expr::cmp(CmpOp::Le, col("price"), Expr::val(100.0))),
        );
        let (rs, stats) = l.query(&q, 50).unwrap();
        assert_eq!(stats.dynamic_atoms, 1);
        assert_eq!(stats.subqueries, 2);
        // At t=50: car 1 at 50 (price 80 ✓), car 2 at 100 (fails X),
        // car 3 at 100 (fails X).
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].get(0), Some(&Value::Id(1)));
    }

    #[test]
    fn k_atoms_two_to_the_k_subqueries() {
        let l = layer();
        // Three dynamic atoms: X >= 40, X <= 120, Y <= 1.
        let q = SelectQuery::from_table("cars").column("id").filter(
            Expr::cmp(CmpOp::Ge, col("X"), Expr::val(40.0))
                .and(Expr::cmp(CmpOp::Le, col("X"), Expr::val(120.0)))
                .and(Expr::cmp(CmpOp::Le, col("Y"), Expr::val(1.0))),
        );
        let (rs, stats) = l.query(&q, 50).unwrap();
        assert_eq!(stats.dynamic_atoms, 3);
        assert_eq!(stats.subqueries, 8);
        // t=50: car 1 (x=50, y=0) ✓; car 2 (x=100, y=0) ✓; car 3 (x=100,
        // y=5) fails Y.
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn answers_depend_on_entry_time() {
        let l = layer();
        let q = SelectQuery::from_table("cars").column("id").filter(Expr::cmp(
            CmpOp::Le,
            col("X"),
            Expr::val(50.0),
        ));
        let at_10: Vec<_> = l.query(&q, 10).unwrap().0.rows;
        let at_80: Vec<_> = l.query(&q, 80).unwrap().0.rows;
        // t=10: car 1 (x=10) only. t=80: car 1 at 80 fails; car 3 at 40
        // qualifies.
        assert_eq!(at_10.len(), 1);
        assert_eq!(at_10[0].get(0), Some(&Value::Id(1)));
        assert_eq!(at_80.len(), 1);
        assert_eq!(at_80[0].get(0), Some(&Value::Id(3)));
    }

    #[test]
    fn disjunctive_where_clause() {
        let l = layer();
        // X <= 10 OR price <= 70  (dynamic atom inside a disjunction).
        let q = SelectQuery::from_table("cars").column("id").filter(
            Expr::cmp(CmpOp::Le, col("X"), Expr::val(10.0))
                .or(Expr::cmp(CmpOp::Le, col("price"), Expr::val(70.0))),
        );
        let (rs, stats) = l.query(&q, 5).unwrap();
        assert_eq!(stats.subqueries, 2);
        // t=5: car 1 at x=5 ✓ (X branch); car 3 price 60 ✓.
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn update_dynamic_attribute() {
        let mut l = layer();
        // Car 1 stops at t=30 (x=30).
        l.update_dynamic("cars", &Value::Id(1), "X", 30, None, Some(0.0))
            .unwrap();
        let q = SelectQuery::from_table("cars").column("X").filter(Expr::cmp(
            CmpOp::Eq,
            col("id"),
            Expr::Const(Value::Id(1)),
        ));
        let (rs, _) = l.query(&q, 100).unwrap();
        assert_eq!(rs.rows[0].get(0), Some(&Value::from(30.0)));
        // Unknown attr / key errors.
        assert!(l
            .update_dynamic("cars", &Value::Id(1), "Z", 30, None, None)
            .is_err());
        assert!(l
            .update_dynamic("cars", &Value::Id(9), "X", 30, None, None)
            .is_err());
    }

    #[test]
    fn join_with_dynamic_atoms() {
        let l = layer();
        // Pairs of distinct cars currently within 60 of each other on the
        // X axis: |X1 - X2| <= 60 expressed with two atoms.
        let q = SelectQuery {
            select: vec![("a".into(), col("c1.id")), ("b".into(), col("c2.id"))],
            from: vec![
                TableRef::aliased("cars", "c1"),
                TableRef::aliased("cars", "c2"),
            ],
            where_clause: Expr::cmp(
                CmpOp::Le,
                Expr::arith(most_dbms::expr::ArithOp::Sub, col("c1.X"), col("c2.X")),
                Expr::val(60.0),
            )
            .and(Expr::cmp(
                CmpOp::Ge,
                Expr::arith(most_dbms::expr::ArithOp::Sub, col("c1.X"), col("c2.X")),
                Expr::val(-60.0),
            ))
            .and(Expr::cmp(CmpOp::Lt, col("c1.id"), col("c2.id"))),
        };
        let (rs, stats) = l.query(&q, 50).unwrap();
        assert_eq!(stats.dynamic_atoms, 2);
        assert_eq!(stats.subqueries, 4);
        // t=50: positions 50, 100, 100 — pairs (1,2), (1,3), (2,3).
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn projection_expression_rejected() {
        let l = layer();
        let q = SelectQuery::from_table("cars").expr(
            "twice",
            Expr::arith(most_dbms::expr::ArithOp::Mul, col("X"), Expr::val(2.0)),
        );
        assert!(l.query(&q, 0).is_err());
    }
}
