//! Static dependency analysis of FTL queries: which updates can change a
//! continuous query's materialized answer?
//!
//! Section 2.3 only says `Answer(CQ)` "has to be reevaluated when an update
//! occurs **that may change the set of tuples**" — the refresh engine makes
//! that qualifier operational.  A [`DepSet`] is extracted once, at
//! registration, by walking the query's [`most_ftl::ast`] with the
//! [`Formula::visit`](most_ftl::Formula::visit) /
//! [`Term::visit`](most_ftl::Term::visit) visitors:
//!
//! * every region named by `INSIDE` / `OUTSIDE` / `INSIDE_MOVING` is
//!   recorded (spatial predicates also mark the query position-dependent);
//! * every attribute name read through `o.NAME` is recorded, except the
//!   motion sub-attributes `X`/`Y`/`VX`/`VY`/`SPEED`
//!   ([`most_ftl::numeric::is_motion_attr`]), which the evaluator serves
//!   from the trajectory and therefore depend on *position* updates;
//! * `DIST` and `WITHIN_SPHERE` read positions.
//!
//! An update is then tested with [`DepSet::affected_by`]: a motion-vector
//! or position report is relevant only to position-dependent queries, an
//! attribute write only to queries mentioning that attribute name, and a
//! domain change (insert/remove) is conservatively relevant to everything —
//! FTL variables range over the whole active domain (the grammar has no
//! class predicate, so object classes never narrow a dependency set; class
//! filtering would require a class atom first and is future work), and
//! negation/expansion make every query sensitive to the domain.
//!
//! Soundness (property-tested in `tests/refresh_filtering.rs`): evaluation
//! is a deterministic function of the active domain, the trajectories, the
//! mentioned attributes' series and the referenced regions.  An update that
//! changes none of the components a query reads leaves its re-evaluation —
//! and hence the merged answer — unchanged, so skipping the refresh is
//! observationally invisible.

use most_ftl::ast::{Formula, Term};
use most_ftl::numeric::is_motion_attr;
use most_ftl::Query;
use most_testkit::ser::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeSet;

/// The classification of one explicit update, as seen by the refresh
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateKind {
    /// A motion-vector change or full position report: the object's
    /// trajectory — and with it every motion sub-attribute — changed.
    Motion,
    /// A static or scalar-dynamic attribute of the given name changed.
    Attr(String),
    /// The active domain changed (object inserted or removed).  Always
    /// refresh-relevant.
    Domain,
}

/// The statically-extracted dependency set of a registered query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepSet {
    /// Whether any predicate reads object positions (spatial predicates,
    /// `DIST`, or the motion sub-attributes `X`/`Y`/`VX`/`VY`/`SPEED`).
    pub position: bool,
    /// Non-motion attribute names read via `o.NAME`.
    pub attrs: BTreeSet<String>,
    /// Region names referenced by spatial predicates.
    pub regions: BTreeSet<String>,
}

impl DepSet {
    /// Extracts the dependency set of a query.
    pub fn of_query(q: &Query) -> DepSet {
        DepSet::of_formula(&q.formula)
    }

    /// Extracts the dependency set of a bare formula.
    pub fn of_formula(f: &Formula) -> DepSet {
        let mut deps = DepSet::default();
        f.visit(&mut |g| match g {
            Formula::Inside(_, region) | Formula::Outside(_, region) => {
                deps.position = true;
                deps.regions.insert(region.clone());
            }
            Formula::InsideMoving(_, region, _) | Formula::OutsideMoving(_, region, _) => {
                deps.position = true;
                deps.regions.insert(region.clone());
            }
            Formula::WithinSphere(..) => deps.position = true,
            _ => {}
        });
        f.visit_terms(&mut |t| {
            t.visit(&mut |sub| match sub {
                Term::Attr(_, name) => {
                    if is_motion_attr(name) {
                        deps.position = true;
                    } else {
                        deps.attrs.insert(name.clone());
                    }
                }
                Term::Dist(..) => deps.position = true,
                _ => {}
            })
        });
        deps
    }

    /// Whether an update of the given kind can change this query's answer.
    /// `Domain` is always relevant; `Motion` only when the query reads
    /// positions; `Attr(name)` only when the query mentions `name`.
    pub fn affected_by(&self, kind: &UpdateKind) -> bool {
        match kind {
            UpdateKind::Domain => true,
            UpdateKind::Motion => self.position,
            UpdateKind::Attr(name) => self.attrs.contains(name),
        }
    }

    /// Whether any update at all can be skipped for this query (false for
    /// queries that read positions *and* every attribute — in practice:
    /// false only when both components are empty, since a query depending
    /// on nothing is refreshed only by domain changes).
    pub fn is_constant(&self) -> bool {
        !self.position && self.attrs.is_empty()
    }
}

impl ToJson for DepSet {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("position".to_owned(), self.position.to_json()),
            (
                "attrs".to_owned(),
                self.attrs.iter().cloned().collect::<Vec<String>>().to_json(),
            ),
            (
                "regions".to_owned(),
                self.regions.iter().cloned().collect::<Vec<String>>().to_json(),
            ),
        ])
    }
}

impl FromJson for DepSet {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let attrs: Vec<String> = FromJson::from_json(j.field("attrs")?)?;
        let regions: Vec<String> = FromJson::from_json(j.field("regions")?)?;
        Ok(DepSet {
            position: FromJson::from_json(j.field("position")?)?,
            attrs: attrs.into_iter().collect(),
            regions: regions.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deps(src: &str) -> DepSet {
        DepSet::of_query(&Query::parse(src).expect("query parses"))
    }

    #[test]
    fn spatial_query_depends_on_position_and_region() {
        let d = deps("RETRIEVE o WHERE Eventually within 60 INSIDE(o, P)");
        assert!(d.position);
        assert!(d.regions.contains("P"));
        assert!(d.attrs.is_empty());
        assert!(d.affected_by(&UpdateKind::Motion));
        assert!(d.affected_by(&UpdateKind::Domain));
        assert!(!d.affected_by(&UpdateKind::Attr("PRICE".into())));
    }

    #[test]
    fn attribute_query_ignores_motion() {
        let d = deps("RETRIEVE o WHERE o.PRICE <= 100");
        assert!(!d.position);
        assert_eq!(d.attrs.iter().collect::<Vec<_>>(), vec!["PRICE"]);
        assert!(!d.affected_by(&UpdateKind::Motion));
        assert!(d.affected_by(&UpdateKind::Attr("PRICE".into())));
        assert!(!d.affected_by(&UpdateKind::Attr("FUEL".into())));
    }

    #[test]
    fn motion_sub_attributes_count_as_position() {
        let d = deps("RETRIEVE o WHERE [x <- o.SPEED] Always (o.SPEED = x)");
        assert!(d.position);
        assert!(d.attrs.is_empty(), "SPEED is served from the trajectory");
        let d = deps("RETRIEVE o WHERE o.X <= 10 AND o.FUEL >= 5");
        assert!(d.position);
        assert_eq!(d.attrs.iter().collect::<Vec<_>>(), vec!["FUEL"]);
    }

    #[test]
    fn dist_and_sphere_read_positions() {
        assert!(deps("RETRIEVE o WHERE DIST(o, POINT(0, 0)) <= 5").position);
        assert!(deps("RETRIEVE o, n WHERE WITHIN_SPHERE(10, o, n)").position);
    }

    #[test]
    fn mixed_query_collects_everything() {
        let d = deps(
            "RETRIEVE o WHERE o.PRICE <= 100 AND (INSIDE(o, P) OR OUTSIDE(o, Q))",
        );
        assert!(d.position);
        assert_eq!(d.regions.iter().collect::<Vec<_>>(), vec!["P", "Q"]);
        assert_eq!(d.attrs.iter().collect::<Vec<_>>(), vec!["PRICE"]);
        assert!(!d.is_constant());
    }

    #[test]
    fn constant_query_depends_only_on_domain() {
        let d = deps("RETRIEVE o WHERE true");
        assert!(d.is_constant());
        assert!(!d.affected_by(&UpdateKind::Motion));
        assert!(!d.affected_by(&UpdateKind::Attr("PRICE".into())));
        assert!(d.affected_by(&UpdateKind::Domain));
    }

    #[test]
    fn json_round_trip() {
        let d = deps("RETRIEVE o WHERE o.PRICE <= 100 AND INSIDE(o, P)");
        let back = DepSet::from_json(&d.to_json()).expect("round-trips");
        assert_eq!(d, back);
    }
}
