//! Dynamic attributes: the `value` / `updatetime` / `function`
//! sub-attribute triple of Section 2.1.
//!
//! "A dynamic attribute A is represented by three sub-attributes, A.value,
//! A.updatetime, and A.function, where A.function is a function of a single
//! variable t that has value 0 at t = 0.  At time A.updatetime the value of
//! A is A.value, and until the next update of A the value of A at time
//! A.updatetime + t0 is given by A.value + A.function(t0)."

use most_temporal::Tick;
use std::fmt;

/// The `A.function` sub-attribute: a function of elapsed time `t0` with
/// `f(0) = 0`.
///
/// The paper assumes linear functions "for the sake of simplicity ...
/// however, the ideas can be extended to nonlinear functions"; the
/// quadratic variant implements that extension for scalar attributes such
/// as fuel consumption under constant acceleration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrFunction {
    /// `f(t0) = slope · t0` — the motion-vector case.
    Linear(f64),
    /// `f(t0) = accel · t0² + slope · t0` — nonlinear extension.
    Quadratic {
        /// Quadratic coefficient.
        accel: f64,
        /// Linear coefficient.
        slope: f64,
    },
}

impl AttrFunction {
    /// A constant attribute (zero function).
    pub const fn constant() -> Self {
        AttrFunction::Linear(0.0)
    }

    /// Evaluates the function at elapsed time `t0` (so `apply(0) == 0`,
    /// matching the paper's requirement).
    pub fn apply(self, t0: f64) -> f64 {
        match self {
            AttrFunction::Linear(s) => s * t0,
            AttrFunction::Quadratic { accel, slope } => accel * t0 * t0 + slope * t0,
        }
    }

    /// The instantaneous rate of change at elapsed time `t0`.
    pub fn rate_at(self, t0: f64) -> f64 {
        match self {
            AttrFunction::Linear(s) => s,
            AttrFunction::Quadratic { accel, slope } => 2.0 * accel * t0 + slope,
        }
    }

    /// Whether the function is identically zero (static behaviour).
    pub fn is_zero(self) -> bool {
        match self {
            AttrFunction::Linear(s) => s == 0.0,
            AttrFunction::Quadratic { accel, slope } => accel == 0.0 && slope == 0.0,
        }
    }
}

/// A dynamic attribute: changes over time "even if it is not explicitly
/// updated".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicAttribute {
    /// The `A.value` sub-attribute: value at `updatetime`.
    pub value: f64,
    /// The `A.updatetime` sub-attribute.  The paper distinguishes
    /// valid-time and transaction-time interpretations and then assumes
    /// instantaneous updates ("the valid-time and transaction-time are
    /// equal"); we follow that assumption.
    pub updatetime: Tick,
    /// The `A.function` sub-attribute.
    pub function: AttrFunction,
}

impl DynamicAttribute {
    /// Creates a dynamic attribute.
    pub fn new(value: f64, updatetime: Tick, function: AttrFunction) -> Self {
        DynamicAttribute { value, updatetime, function }
    }

    /// A static-behaving attribute (constant until explicitly updated).
    pub fn constant(value: f64, updatetime: Tick) -> Self {
        DynamicAttribute::new(value, updatetime, AttrFunction::constant())
    }

    /// The value at tick `t`: `A.value + A.function(t − A.updatetime)`.
    /// Probing before `updatetime` extrapolates backwards.
    pub fn value_at(self, t: Tick) -> f64 {
        self.value + self.function.apply(t as f64 - self.updatetime as f64)
    }

    /// Applies an explicit update at tick `t` ("an explicit update of a
    /// dynamic attribute may change its value sub-attribute, or its
    /// function sub-attribute, or both").
    pub fn updated(self, t: Tick, value: Option<f64>, function: Option<AttrFunction>) -> Self {
        DynamicAttribute {
            value: value.unwrap_or_else(|| self.value_at(t)),
            updatetime: t,
            function: function.unwrap_or(self.function),
        }
    }
}

impl fmt::Display for DynamicAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.function {
            AttrFunction::Linear(s) => {
                write!(f, "{} @t{} + {}·t", self.value, self.updatetime, s)
            }
            AttrFunction::Quadratic { accel, slope } => write!(
                f,
                "{} @t{} + {}·t² + {}·t",
                self.value, self.updatetime, accel, slope
            ),
        }
    }
}

most_testkit::json_enum!(AttrFunction {
    Linear(slope),
    Quadratic { accel, slope },
});
most_testkit::json_struct!(DynamicAttribute { value, updatetime, function });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_zero_at_zero() {
        for f in [
            AttrFunction::Linear(5.0),
            AttrFunction::Quadratic { accel: 2.0, slope: -1.0 },
        ] {
            assert_eq!(f.apply(0.0), 0.0);
        }
    }

    #[test]
    fn linear_progression() {
        // The paper's example: X.POSITION.function = 5·t.
        let a = DynamicAttribute::new(0.0, 0, AttrFunction::Linear(5.0));
        assert_eq!(a.value_at(0), 0.0);
        assert_eq!(a.value_at(3), 15.0);
        assert_eq!(a.function.rate_at(10.0), 5.0);
    }

    #[test]
    fn quadratic_extension() {
        let a = DynamicAttribute::new(10.0, 5, AttrFunction::Quadratic { accel: 1.0, slope: 0.0 });
        assert_eq!(a.value_at(5), 10.0);
        assert_eq!(a.value_at(8), 10.0 + 9.0);
        assert_eq!(a.function.rate_at(3.0), 6.0);
    }

    #[test]
    fn update_semantics() {
        let a = DynamicAttribute::new(0.0, 0, AttrFunction::Linear(5.0));
        // Update only the function at t=1 (the Section 2.3 example: 5t
        // becomes 7t, continuing from the current value).
        let b = a.updated(1, None, Some(AttrFunction::Linear(7.0)));
        assert_eq!(b.value, 5.0);
        assert_eq!(b.updatetime, 1);
        assert_eq!(b.value_at(2), 12.0);
        // Update only the value (teleport).
        let c = b.updated(2, Some(100.0), None);
        assert_eq!(c.value_at(3), 107.0);
    }

    #[test]
    fn constant_attribute_is_static() {
        let a = DynamicAttribute::constant(42.0, 7);
        assert!(a.function.is_zero());
        assert_eq!(a.value_at(7), 42.0);
        assert_eq!(a.value_at(1000), 42.0);
    }

    #[test]
    fn backwards_extrapolation() {
        let a = DynamicAttribute::new(10.0, 10, AttrFunction::Linear(1.0));
        assert_eq!(a.value_at(5), 5.0);
    }

    #[test]
    fn display_forms() {
        let a = DynamicAttribute::new(1.0, 2, AttrFunction::Linear(3.0));
        assert_eq!(a.to_string(), "1 @t2 + 3·t");
    }
}
