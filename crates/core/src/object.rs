//! Moving objects: trajectory, static attributes and dynamic scalar
//! attributes, all with recorded histories.
//!
//! Histories exist because persistent queries (Section 2.3) require "saving
//! of information about the way the database is updated over time".
//! Instantaneous and continuous queries only read the *current* state (the
//! last history entry), so the overhead of keeping history is one `Vec`
//! entry per explicit update — exactly the data a persistent query needs,
//! and nothing per tick.

use crate::dynamic::{AttrFunction, DynamicAttribute};
use most_dbms::value::Value;
use most_spatial::{Point, Trajectory, Velocity};
use most_temporal::{Interval, Tick};
use std::collections::BTreeMap;

/// A moving object.
#[derive(Debug, Clone)]
pub struct MovingObject {
    /// Object id.
    pub id: u64,
    /// Class name.
    pub class: String,
    /// Position history (piecewise-linear motion).  `None` for non-spatial
    /// objects.
    trajectory: Option<Trajectory>,
    /// Static attributes: history of `(set_at, value)` per attribute,
    /// ascending.
    statics: BTreeMap<String, Vec<(Tick, Value)>>,
    /// Dynamic scalar attributes: history of states per attribute,
    /// ascending by `updatetime`.
    dynamics: BTreeMap<String, Vec<DynamicAttribute>>,
}

impl MovingObject {
    /// Creates a spatial object with an initial motion vector at tick `at`.
    pub fn spatial(id: u64, class: impl Into<String>, at: Tick, p: Point, v: Velocity) -> Self {
        let mut traj = Trajectory::starting_at(p, v);
        if at > 0 {
            // Anchor the first leg at the insertion tick.
            traj = Trajectory::new(most_spatial::MovingPoint::new(p, at, v));
        }
        MovingObject {
            id,
            class: class.into(),
            trajectory: Some(traj),
            statics: BTreeMap::new(),
            dynamics: BTreeMap::new(),
        }
    }

    /// Creates a non-spatial object (e.g. a MOTELS row with no motion).
    pub fn plain(id: u64, class: impl Into<String>) -> Self {
        MovingObject {
            id,
            class: class.into(),
            trajectory: None,
            statics: BTreeMap::new(),
            dynamics: BTreeMap::new(),
        }
    }

    /// The motion history, if spatial.
    pub fn trajectory(&self) -> Option<&Trajectory> {
        self.trajectory.as_ref()
    }

    /// Position at tick `t`, if spatial.
    pub fn position_at(&self, t: Tick) -> Option<Point> {
        self.trajectory.as_ref().map(|tr| tr.position_at_tick(t))
    }

    /// Current motion vector at tick `t`, if spatial.
    pub fn velocity_at(&self, t: Tick) -> Option<Velocity> {
        self.trajectory.as_ref().map(|tr| tr.velocity_at_tick(t))
    }

    /// Applies a motion-vector update at tick `t` (continuing from the
    /// current position).
    pub fn update_velocity(&mut self, t: Tick, v: Velocity) {
        self.trajectory
            .as_mut()
            .expect("velocity update on a non-spatial object")
            .update_velocity(t, v);
    }

    /// Explicitly sets position and motion vector at tick `t`.
    pub fn update_position(&mut self, t: Tick, p: Point, v: Velocity) {
        self.trajectory
            .as_mut()
            .expect("position update on a non-spatial object")
            .update_position_and_velocity(t, p, v);
    }

    /// Sets a static attribute at tick `t`.
    pub fn set_static(&mut self, t: Tick, name: impl Into<String>, value: Value) {
        let hist = self.statics.entry(name.into()).or_default();
        debug_assert!(hist.last().is_none_or(|(at, _)| *at <= t));
        match hist.last_mut() {
            Some((at, v)) if *at == t => *v = value,
            _ => hist.push((t, value)),
        }
    }

    /// Current value of a static attribute at tick `t`.
    pub fn static_at(&self, name: &str, t: Tick) -> Option<&Value> {
        let hist = self.statics.get(name)?;
        hist.iter().rev().find(|(at, _)| *at <= t).map(|(_, v)| v)
    }

    /// The static attribute's `(value, interval)` series over `[0, end]`,
    /// for the FTL context.  Before the first explicit set the attribute is
    /// undefined (no entry).
    pub fn static_series(&self, name: &str, end: Tick) -> Vec<(Value, Interval)> {
        let Some(hist) = self.statics.get(name) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(hist.len());
        for (i, (at, v)) in hist.iter().enumerate() {
            if *at > end {
                break;
            }
            let until = hist
                .get(i + 1)
                .map(|(next, _)| next.saturating_sub(1))
                .unwrap_or(end)
                .min(end);
            if *at <= until {
                out.push((v.clone(), Interval::new(*at, until)));
            }
        }
        out
    }

    /// Sets / updates a dynamic scalar attribute at tick `t`.
    pub fn set_dynamic(
        &mut self,
        t: Tick,
        name: impl Into<String>,
        value: Option<f64>,
        function: Option<AttrFunction>,
    ) {
        let hist = self.dynamics.entry(name.into()).or_default();
        let state = match hist.last() {
            Some(prev) => prev.updated(t, value, function),
            None => DynamicAttribute::new(
                value.unwrap_or(0.0),
                t,
                function.unwrap_or(AttrFunction::constant()),
            ),
        };
        match hist.last_mut() {
            Some(prev) if prev.updatetime == t => *prev = state,
            _ => hist.push(state),
        }
    }

    /// The dynamic scalar attribute's state in force at tick `t`.
    pub fn dynamic_at(&self, name: &str, t: Tick) -> Option<DynamicAttribute> {
        let hist = self.dynamics.get(name)?;
        hist.iter()
            .rev()
            .find(|d| d.updatetime <= t)
            .or_else(|| hist.first())
            .copied()
    }

    /// The *value* of a dynamic scalar attribute at tick `t`.
    pub fn dynamic_value_at(&self, name: &str, t: Tick) -> Option<f64> {
        self.dynamic_at(name, t).map(|d| d.value_at(t))
    }

    /// Names of all static attributes ever set.
    pub fn static_names(&self) -> impl Iterator<Item = &str> {
        self.statics.keys().map(String::as_str)
    }

    /// Names of all dynamic scalar attributes ever set.
    pub fn dynamic_names(&self) -> impl Iterator<Item = &str> {
        self.dynamics.keys().map(String::as_str)
    }

    /// The full history of a dynamic scalar attribute (persistent queries).
    pub fn dynamic_history(&self, name: &str) -> Option<&[DynamicAttribute]> {
        self.dynamics.get(name).map(Vec::as_slice)
    }

    /// Count of explicit updates recorded on this object (motion +
    /// attributes) — the update-cost metric of experiment E1.
    pub fn update_count(&self) -> usize {
        let motion = self
            .trajectory
            .as_ref()
            .map(|t| t.update_count())
            .unwrap_or(0);
        let statics: usize = self.statics.values().map(|h| h.len().saturating_sub(1)).sum();
        let dynamics: usize = self.dynamics.values().map(|h| h.len().saturating_sub(1)).sum();
        motion + statics + dynamics
    }
}

most_testkit::json_struct!(MovingObject { id, class, trajectory, statics, dynamics });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_object_motion() {
        let mut o = MovingObject::spatial(1, "cars", 0, Point::origin(), Velocity::new(2.0, 0.0));
        assert_eq!(o.position_at(5), Some(Point::new(10.0, 0.0)));
        o.update_velocity(5, Velocity::new(0.0, 2.0));
        assert_eq!(o.position_at(10), Some(Point::new(10.0, 10.0)));
        assert_eq!(o.velocity_at(3), Some(Velocity::new(2.0, 0.0)));
        assert_eq!(o.update_count(), 1);
    }

    #[test]
    fn insertion_after_time_zero_anchors_correctly() {
        let o = MovingObject::spatial(1, "cars", 10, Point::new(5.0, 5.0), Velocity::new(1.0, 0.0));
        assert_eq!(o.position_at(10), Some(Point::new(5.0, 5.0)));
        assert_eq!(o.position_at(12), Some(Point::new(7.0, 5.0)));
    }

    #[test]
    fn plain_object_has_no_motion() {
        let o = MovingObject::plain(2, "motels");
        assert!(o.trajectory().is_none());
        assert!(o.position_at(0).is_none());
    }

    #[test]
    fn static_attribute_history() {
        let mut o = MovingObject::plain(1, "motels");
        o.set_static(0, "PRICE", Value::from(80.0));
        o.set_static(10, "PRICE", Value::from(95.0));
        assert_eq!(o.static_at("PRICE", 5), Some(&Value::from(80.0)));
        assert_eq!(o.static_at("PRICE", 10), Some(&Value::from(95.0)));
        assert_eq!(o.static_at("PRICE", 99), Some(&Value::from(95.0)));
        assert_eq!(o.static_at("NOPE", 0), None);
        let series = o.static_series("PRICE", 20);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1, Interval::new(0, 9));
        assert_eq!(series[1].1, Interval::new(10, 20));
        // Same-tick overwrite replaces.
        o.set_static(10, "PRICE", Value::from(90.0));
        assert_eq!(o.static_at("PRICE", 10), Some(&Value::from(90.0)));
    }

    #[test]
    fn static_series_clipped_to_horizon() {
        let mut o = MovingObject::plain(1, "m");
        o.set_static(5, "A", Value::Int(1));
        o.set_static(50, "A", Value::Int(2));
        let series = o.static_series("A", 20);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].1, Interval::new(5, 20));
    }

    #[test]
    fn dynamic_scalar_attribute() {
        let mut o = MovingObject::plain(1, "tanks");
        // Fuel drains at 2 units per tick from 100.
        o.set_dynamic(0, "FUEL", Some(100.0), Some(AttrFunction::Linear(-2.0)));
        assert_eq!(o.dynamic_value_at("FUEL", 0), Some(100.0));
        assert_eq!(o.dynamic_value_at("FUEL", 10), Some(80.0));
        // Refuel at t=20 keeping the drain function.
        o.set_dynamic(20, "FUEL", Some(100.0), None);
        assert_eq!(o.dynamic_value_at("FUEL", 25), Some(90.0));
        // History preserved for persistent queries.
        assert_eq!(o.dynamic_history("FUEL").unwrap().len(), 2);
        assert_eq!(o.dynamic_value_at("FUEL", 10), Some(80.0));
        assert_eq!(o.update_count(), 1);
    }

    #[test]
    fn names_iterators() {
        let mut o = MovingObject::plain(1, "m");
        o.set_static(0, "A", Value::Int(1));
        o.set_dynamic(0, "B", Some(0.0), None);
        assert_eq!(o.static_names().collect::<Vec<_>>(), vec!["A"]);
        assert_eq!(o.dynamic_names().collect::<Vec<_>>(), vec!["B"]);
    }
}
