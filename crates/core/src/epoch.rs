//! Epoch-snapshot (MVCC) engine: lock-free readers over immutable
//! published epochs.
//!
//! The paper's deployment picture (Section 5) has many concurrent readers
//! — vehicles issuing instantaneous queries, consoles holding continuous
//! subscriptions — against one stream of motion-vector updates.  A single
//! `RwLock<Database>` serves that shape correctly but serializes readers
//! behind every update *and* behind the continuous-query refresh pass the
//! update triggers.  [`EpochDb`] removes that coupling with a
//! copy-on-write epoch scheme:
//!
//! * The **published** epoch `E` is an immutable [`Database`] behind an
//!   `Arc`.  Readers [`pin`](EpochDb::pin) it — an `Arc` clone under a
//!   briefly-held pointer lock — and then evaluate instantaneous,
//!   continuous and persistent queries on the snapshot with **no lock
//!   held at all**.  A pin is valid indefinitely; the snapshot never
//!   changes underneath it.
//! * The **writer** accumulates update batches into epoch `E + 1`, a
//!   private copy-on-write clone of `E` materialized on first mutation.
//!   Continuous-query refresh runs on this private copy (inside
//!   [`Database::apply_updates`]) while readers keep answering from `E` —
//!   refresh and reads overlap instead of excluding each other.
//! * [`advance_epoch`](EpochDb::advance_epoch) publishes `E + 1`
//!   atomically (an `Arc` pointer swap) and becomes a no-op when nothing
//!   was buffered.  Before publishing, the spatial index is rolled via
//!   [`Database::maintain_spatial_index`] so reconstruction happens at
//!   epoch boundaries, never on a reader's path.
//! * Old epochs **retire when their last pin drops**: the `Arc` refcount
//!   is the pin count, so memory for epoch `E` is reclaimed exactly when
//!   the final [`EpochPin`] (and the publish slot) releases it.  A slow
//!   subscriber pins one old epoch — not the whole history.
//!
//! Accounting is exposed two ways: [`EpochDb::stats`] returns an
//! [`EpochStats`] snapshot obeying the conservation invariant
//! `created == retired + live` (usable even with `most-obs` stubbed out),
//! and the `epoch.current` / `epoch.pinned` gauges plus the
//! `epoch.retired` / `epoch.published` / `epoch.batches` counters mirror
//! the same numbers into the metrics registry.

use crate::database::{Database, UpdateOp};
use crate::error::CoreResult;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Callback invoked at the epoch-publish boundary, after index
/// maintenance and immediately before the pointer swap.  It runs under
/// the writer lock with exclusive access to the about-to-publish state,
/// so an observer sees every epoch exactly once, in publish order, with
/// no additional synchronization of its own against this engine.  The
/// second argument is the epoch number being published.
///
/// Observers must be cheap relative to batch application: they extend
/// the writer's critical section (readers are unaffected — they keep
/// answering from the previous epoch — but subsequent writers queue).
pub type PublishObserver = Arc<dyn Fn(&Database, u64) + Send + Sync>;

/// Monotone epoch accounting shared by the handle and every snapshot.
#[derive(Debug, Default)]
struct EpochCounters {
    /// Number of the currently published epoch.
    current: AtomicU64,
    /// Snapshots ever created (including the initial epoch 0).
    created: AtomicU64,
    /// Snapshots fully released (last pin dropped).
    retired: AtomicU64,
    /// Update batches absorbed via [`EpochDb::apply_updates`].
    batches: AtomicU64,
}

impl EpochCounters {
    fn live(&self) -> u64 {
        let created = self.created.load(Ordering::Acquire);
        let retired = self.retired.load(Ordering::Acquire);
        created.saturating_sub(retired)
    }
}

/// Point-in-time view of the epoch accounting.  The conservation
/// invariant `created == retired + live` holds whenever the system is
/// quiescent (no publish or retire mid-flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStats {
    /// Number of the currently published epoch (starts at 0).
    pub current: u64,
    /// Snapshots ever created, including the initial one.
    pub created: u64,
    /// Snapshots whose last pin has dropped.
    pub retired: u64,
    /// Snapshots still reachable: `created - retired`.
    pub live: u64,
    /// Update batches buffered into the next epoch but not yet published.
    pub pending_batches: u64,
}

/// One immutable published database state.  Dropping the last reference
/// retires the epoch (bumping the `epoch.retired` counter).
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    db: Database,
    counters: Arc<EpochCounters>,
}

impl EpochSnapshot {
    /// The epoch number this snapshot was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen database state.
    pub fn db(&self) -> &Database {
        &self.db
    }
}

impl Drop for EpochSnapshot {
    fn drop(&mut self) {
        self.counters.retired.fetch_add(1, Ordering::AcqRel);
        most_obs::add("epoch.retired", 1);
        most_obs::gauge_set("epoch.pinned", self.counters.live());
    }
}

/// A reader's hold on one published epoch.  Dereferences to the frozen
/// [`Database`]; cloning the pin is an `Arc` clone.  The epoch stays
/// alive (and its memory allocated) until every pin on it is dropped.
#[derive(Debug, Clone)]
pub struct EpochPin {
    snap: Arc<EpochSnapshot>,
}

impl EpochPin {
    /// The epoch number this pin holds.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// The pinned database state.
    pub fn db(&self) -> &Database {
        self.snap.db()
    }
}

impl Deref for EpochPin {
    type Target = Database;

    fn deref(&self) -> &Database {
        self.snap.db()
    }
}

/// Writer-side state: the copy-on-write next epoch, if any mutation has
/// been buffered since the last publish.
struct WriterState {
    next: Option<Database>,
    pending_batches: u64,
    observer: Option<PublishObserver>,
}

impl std::fmt::Debug for WriterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterState")
            .field("next", &self.next)
            .field("pending_batches", &self.pending_batches)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

/// A cloneable handle to an epoch-versioned MOST database.  See the
/// module docs for the lifecycle.
#[derive(Debug, Clone)]
pub struct EpochDb {
    inner: Arc<EpochInner>,
}

#[derive(Debug)]
struct EpochInner {
    /// The published epoch.  Readers hold this lock only long enough to
    /// clone the `Arc`; the writer only to swap the pointer.  Nobody
    /// evaluates or mutates under it.
    published: RwLock<Arc<EpochSnapshot>>,
    /// Serializes writers.  Held across clone-on-write, batch
    /// application (including continuous-query refresh) and publish —
    /// never blocking readers.
    writer: Mutex<WriterState>,
    counters: Arc<EpochCounters>,
}

impl EpochDb {
    /// Wraps a database, publishing its state as epoch 0.
    pub fn new(db: Database) -> Self {
        let counters = Arc::new(EpochCounters::default());
        counters.created.store(1, Ordering::Release);
        most_obs::gauge_set("epoch.current", 0);
        most_obs::gauge_set("epoch.pinned", 1);
        let snapshot = EpochSnapshot { epoch: 0, db, counters: Arc::clone(&counters) };
        EpochDb {
            inner: Arc::new(EpochInner {
                published: RwLock::new(Arc::new(snapshot)),
                writer: Mutex::new(WriterState {
                    next: None,
                    pending_batches: 0,
                    observer: None,
                }),
                counters,
            }),
        }
    }

    /// Pins the currently published epoch.  Cost: one `Arc` clone under a
    /// briefly-held read lock; the returned pin is then evaluated against
    /// with no lock at all, concurrently with writers.
    pub fn pin(&self) -> EpochPin {
        let guard = self.inner.published.read().expect("epoch pointer lock poisoned");
        EpochPin { snap: Arc::clone(&guard) }
    }

    /// Number of the currently published epoch.
    pub fn current_epoch(&self) -> u64 {
        self.inner.counters.current.load(Ordering::Acquire)
    }

    /// Runs a mutating closure against the **unpublished** next epoch
    /// (materializing it from the published state on first use).  The
    /// mutation is invisible to readers until [`EpochDb::advance_epoch`]
    /// (EpochDb::advance_epoch) publishes it.
    pub fn write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut w = self.inner.writer.lock().expect("epoch writer lock poisoned");
        if w.next.is_none() {
            // Copy-on-write: clone the published state outside the
            // pointer lock (the pin drops the lock before we clone).
            let base = self.pin();
            w.next = Some(base.db().clone());
        }
        f(w.next.as_mut().expect("next epoch materialized"))
    }

    /// Publishes the buffered next epoch, if any, and returns the current
    /// epoch number.  A no-op (no new epoch, no clone) when nothing was
    /// buffered.  The previous epoch retires as soon as its last pin
    /// drops — immediately, if no reader holds one.
    pub fn advance_epoch(&self) -> u64 {
        let mut w = self.inner.writer.lock().expect("epoch writer lock poisoned");
        let Some(mut db) = w.next.take() else {
            return self.current_epoch();
        };
        let batches = std::mem::take(&mut w.pending_batches);
        // Index maintenance belongs to the epoch boundary: readers must
        // never pay (or trigger) a reconstruction.
        db.maintain_spatial_index();
        db.maintain_attr_index();
        let epoch = self.current_epoch() + 1;
        if let Some(observer) = w.observer.as_ref() {
            observer(&db, epoch);
        }
        let counters = &self.inner.counters;
        counters.created.fetch_add(1, Ordering::AcqRel);
        counters.current.store(epoch, Ordering::Release);
        counters.batches.fetch_add(batches, Ordering::AcqRel);
        let snapshot =
            Arc::new(EpochSnapshot { epoch, db, counters: Arc::clone(counters) });
        let old = {
            let mut slot =
                self.inner.published.write().expect("epoch pointer lock poisoned");
            std::mem::replace(&mut *slot, snapshot)
        };
        // Release the pointer lock before the old epoch's (potentially
        // large) state drops.
        drop(old);
        most_obs::gauge_set("epoch.current", epoch);
        most_obs::gauge_set("epoch.pinned", counters.live());
        most_obs::add("epoch.published", 1);
        most_obs::add("epoch.batches", batches);
        epoch
    }

    /// Buffered mutation followed by an immediate publish: the classic
    /// read-committed write path ([`SharedDatabase::write`] uses this).
    ///
    /// [`SharedDatabase::write`]: crate::shared::SharedDatabase::write
    pub fn commit<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let r = self.write(f);
        self.advance_epoch();
        r
    }

    /// Applies one update batch and publishes exactly one epoch for it:
    /// one batch → one continuous-query refresh pass → one epoch.
    ///
    /// The publish happens **even when the batch errors**: the
    /// successfully-applied prefix (the documented
    /// [`Database::apply_updates`] semantics) lands in that same single
    /// epoch rather than silently riding along with a later batch.
    pub fn apply_updates(&self, ops: &[UpdateOp]) -> CoreResult<()> {
        let result = self.write(|db| db.apply_updates(ops));
        {
            let mut w = self.inner.writer.lock().expect("epoch writer lock poisoned");
            w.pending_batches += 1;
        }
        self.advance_epoch();
        result
    }

    /// Buffers one update batch into the next epoch **without**
    /// publishing.  Several batches may accumulate; each keeps the
    /// prefix-on-error semantics of [`Database::apply_updates`], and all
    /// buffered batches become visible atomically at the next
    /// [`advance_epoch`](EpochDb::advance_epoch).
    pub fn buffer_updates(&self, ops: &[UpdateOp]) -> CoreResult<()> {
        let mut w = self.inner.writer.lock().expect("epoch writer lock poisoned");
        if w.next.is_none() {
            let base = self.pin();
            w.next = Some(base.db().clone());
        }
        w.pending_batches += 1;
        w.next.as_mut().expect("next epoch materialized").apply_updates(ops)
    }

    /// Installs (or replaces, or clears) the publish observer.  The
    /// callback fires inside every subsequent
    /// [`advance_epoch`](EpochDb::advance_epoch) that actually
    /// publishes, with the
    /// about-to-publish [`Database`] and the new epoch number; see
    /// [`PublishObserver`] for the exact guarantees.  Epochs published
    /// before installation are not replayed — observers that need the
    /// current state (e.g. a history recorder catching up on a
    /// pre-populated database) should [`pin`](EpochDb::pin) and consume
    /// it once before or after installing.
    pub fn set_publish_observer(&self, observer: Option<PublishObserver>) {
        let mut w = self.inner.writer.lock().expect("epoch writer lock poisoned");
        w.observer = observer;
    }

    /// Epoch accounting snapshot; see [`EpochStats`].
    pub fn stats(&self) -> EpochStats {
        let counters = &self.inner.counters;
        let pending_batches =
            self.inner.writer.lock().expect("epoch writer lock poisoned").pending_batches;
        EpochStats {
            current: counters.current.load(Ordering::Acquire),
            created: counters.created.load(Ordering::Acquire),
            retired: counters.retired.load(Ordering::Acquire),
            live: counters.live(),
            pending_batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_ftl::Query;
    use most_spatial::{Point, Polygon, Velocity};

    fn small_db() -> (Database, u64) {
        let mut db = Database::new(1_000);
        let car = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
        db.add_region("P", Polygon::rectangle(10.0, -5.0, 30.0, 5.0));
        (db, car)
    }

    #[test]
    fn pins_are_immutable_while_writer_publishes() {
        let (db, car) = small_db();
        let edb = EpochDb::new(db);
        let before = edb.pin();
        assert_eq!(before.epoch(), 0);
        edb.commit(|d| {
            d.advance_clock(5);
            d.update_motion(car, Velocity::new(2.0, 0.0)).unwrap();
        });
        // The old pin still reads epoch 0's state, byte for byte.
        assert_eq!(before.db().now(), 0);
        assert_eq!(before.db().object(car).unwrap().velocity_at(0), Some(Velocity::new(1.0, 0.0)));
        // A fresh pin sees epoch 1.
        let after = edb.pin();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.db().now(), 5);
        assert_eq!(after.db().object(car).unwrap().velocity_at(5), Some(Velocity::new(2.0, 0.0)));
    }

    #[test]
    fn buffered_writes_invisible_until_advance() {
        let (db, _) = small_db();
        let edb = EpochDb::new(db);
        edb.write(|d| d.advance_clock(7));
        assert_eq!(edb.pin().db().now(), 0, "buffered epoch leaked to readers");
        assert_eq!(edb.current_epoch(), 0);
        let e = edb.advance_epoch();
        assert_eq!(e, 1);
        assert_eq!(edb.pin().db().now(), 7);
    }

    #[test]
    fn advance_without_buffered_writes_is_free() {
        let (db, _) = small_db();
        let edb = EpochDb::new(db);
        assert_eq!(edb.advance_epoch(), 0);
        assert_eq!(edb.advance_epoch(), 0);
        let s = edb.stats();
        assert_eq!((s.current, s.created, s.retired, s.live), (0, 1, 0, 1));
    }

    #[test]
    fn unpinned_epochs_retire_on_publish() {
        let (db, _) = small_db();
        let edb = EpochDb::new(db);
        for i in 1..=10u64 {
            edb.commit(|d| d.advance_clock(1));
            let s = edb.stats();
            assert_eq!(s.current, i);
            assert_eq!(s.created, i + 1);
            // No pins held: only the published epoch is alive.
            assert_eq!(s.live, 1, "old epochs not retiring: {s:?}");
            assert_eq!(s.created, s.retired + s.live, "conservation violated: {s:?}");
        }
    }

    #[test]
    fn one_error_batch_publishes_exactly_one_epoch_with_prefix() {
        let (db, car) = small_db();
        let edb = EpochDb::new(db);
        let err = edb
            .apply_updates(&[
                UpdateOp::Motion { id: car, velocity: Velocity::new(3.0, 0.0) },
                UpdateOp::Motion { id: 999, velocity: Velocity::zero() },
                UpdateOp::Motion { id: car, velocity: Velocity::new(9.0, 9.0) },
            ])
            .unwrap_err();
        assert!(matches!(err, crate::error::CoreError::UnknownObject(999)));
        let s = edb.stats();
        // One batch, one epoch — even on error the applied prefix
        // publishes immediately rather than merging into a later batch.
        assert_eq!(s.current, 1, "error batch must still publish its epoch");
        assert_eq!(s.pending_batches, 0);
        let pin = edb.pin();
        assert_eq!(pin.epoch(), 1);
        assert_eq!(pin.db().object(car).unwrap().velocity_at(0), Some(Velocity::new(3.0, 0.0)));
    }

    #[test]
    fn publish_observer_sees_every_epoch_once_in_order() {
        let (db, car) = small_db();
        let edb = EpochDb::new(db);
        let seen: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        edb.set_publish_observer(Some(Arc::new(move |db, epoch| {
            sink.lock().unwrap().push((epoch, db.now()));
        })));
        edb.commit(|d| d.advance_clock(3));
        // A publish with nothing buffered must not fire the observer.
        edb.advance_epoch();
        edb.apply_updates(&[UpdateOp::Motion { id: car, velocity: Velocity::new(2.0, 0.0) }])
            .unwrap();
        edb.commit(|d| d.advance_clock(4));
        assert_eq!(*seen.lock().unwrap(), vec![(1, 3), (2, 3), (3, 7)]);
        // Clearing the observer stops the stream.
        edb.set_publish_observer(None);
        edb.commit(|d| d.advance_clock(1));
        assert_eq!(seen.lock().unwrap().len(), 3);
    }

    #[test]
    fn continuous_refresh_runs_on_the_writer_copy() {
        let (db, car) = small_db();
        let edb = EpochDb::new(db);
        let q = Query::parse("RETRIEVE o WHERE Eventually within 100 INSIDE(o, P)").unwrap();
        let cq = edb.commit(|d| d.register_continuous(q)).unwrap();
        let reader = edb.pin();
        let evals_before = reader.db().continuous_evaluations();
        edb.apply_updates(&[UpdateOp::Motion { id: car, velocity: Velocity::new(5.0, 0.0) }])
            .unwrap();
        // The pinned epoch's counters are frozen: refresh happened on the
        // next epoch's copy, not under the reader.
        assert_eq!(reader.db().continuous_evaluations(), evals_before);
        let fresh = edb.pin();
        assert!(fresh.db().continuous_evaluations() + fresh.db().noop_refreshes() > evals_before);
        assert!(fresh.db().continuous_display(cq, fresh.db().now()).is_ok());
    }
}
