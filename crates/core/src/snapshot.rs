//! Evaluation contexts over a MOST database.
//!
//! FTL formulas are always evaluated on a history whose tick 0 is the query
//! entry time (appendix convention).  [`DbContext`] adapts a [`Database`]
//! to [`most_ftl::EvalContext`] by translating between global clock ticks
//! and that local frame, in one of two modes:
//!
//! * [`ContextMode::Current`] — the implicit future history of
//!   *instantaneous and continuous* queries: each object's state **as of
//!   the origin tick**, extrapolated forward by its current function.
//!   Updates recorded before the origin are irrelevant (only the current
//!   sub-attribute values matter) and updates after it do not exist yet.
//! * [`ContextMode::Recorded`] — the history a *persistent* query sees: all
//!   updates recorded since the origin replay at their recorded ticks, and
//!   the last state extrapolates into the future.  This is the
//!   "saving of information about the way the database is updated over
//!   time" that Section 2.3 calls for.

use crate::database::Database;
use crate::dynamic::AttrFunction;
use most_dbms::value::Value;
use most_ftl::EvalContext;
use most_spatial::{MovingPoint, Polygon, Trajectory};
use most_temporal::{Horizon, Interval, Tick};

/// Which slice of the database history the context exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextMode {
    /// Current state extrapolated (instantaneous / continuous queries).
    Current,
    /// Recorded updates replayed (persistent queries).
    Recorded,
}

/// A [`most_ftl::EvalContext`] view of a [`Database`].
pub struct DbContext<'a> {
    db: &'a Database,
    origin: Tick,
    horizon: Horizon,
    mode: ContextMode,
    workers: usize,
}

impl<'a> DbContext<'a> {
    /// Creates a context whose local tick 0 is global tick `origin`.
    pub fn new(db: &'a Database, origin: Tick, mode: ContextMode) -> Self {
        DbContext { db, origin, horizon: Horizon::new(db.expiration()), mode, workers: 1 }
    }

    /// Sets the worker count the evaluator may use to shard single-variable
    /// candidate loops (see [`most_ftl::EvalContext::eval_workers`]).
    pub fn with_eval_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The global tick corresponding to local tick 0.
    pub fn origin(&self) -> Tick {
        self.origin
    }

    fn global_end(&self) -> Tick {
        self.origin + self.horizon.end()
    }
}

impl EvalContext for DbContext<'_> {
    fn horizon(&self) -> Horizon {
        self.horizon
    }

    fn eval_workers(&self) -> usize {
        self.workers.max(1)
    }

    fn object_ids(&self) -> Vec<u64> {
        self.db.object_ids()
    }

    fn trajectory(&self, id: u64) -> Option<Trajectory> {
        let obj = self.db.object(id).ok()?;
        let traj = obj.trajectory()?;
        match self.mode {
            ContextMode::Current => {
                // Single leg: the motion in force at the origin, rebased to
                // local tick 0.
                let p = traj.position_at_tick(self.origin);
                let v = traj.velocity_at_tick(self.origin);
                Some(Trajectory::new(MovingPoint::new(p, 0, v)))
            }
            ContextMode::Recorded => {
                let mut local: Option<Trajectory> = None;
                for (leg, lo, _hi) in traj.legs_between(self.origin, self.global_end()) {
                    let p = leg.position_at_tick(lo);
                    let local_tick = lo - self.origin;
                    match &mut local {
                        None => {
                            local = Some(Trajectory::new(MovingPoint::new(
                                p,
                                local_tick,
                                leg.velocity,
                            )))
                        }
                        Some(t) => t.update_position_and_velocity(local_tick, p, leg.velocity),
                    }
                }
                local
            }
        }
    }

    fn attr_series(&self, id: u64, name: &str) -> Vec<(Value, Interval)> {
        let Ok(obj) = self.db.object(id) else {
            return Vec::new();
        };
        match self.mode {
            ContextMode::Current => match obj.static_at(name, self.origin) {
                Some(v) => vec![(v.clone(), Interval::new(0, self.horizon.end()))],
                None => Vec::new(),
            },
            ContextMode::Recorded => {
                // Clip each entry to [origin, global_end] and shift to local
                // ticks; an entry in force *at* the origin clips to start at
                // local 0.
                let mut out = Vec::new();
                for (value, iv) in obj.static_series(name, self.global_end()) {
                    let lo = iv.begin().max(self.origin);
                    let hi = iv.end();
                    if hi < self.origin {
                        continue;
                    }
                    out.push((
                        value,
                        Interval::new(lo - self.origin, hi - self.origin),
                    ));
                }
                out
            }
        }
    }

    fn region(&self, name: &str) -> Option<Polygon> {
        self.db.region(name).cloned()
    }

    fn inside_candidates(&self, region: &Polygon) -> Option<Vec<u64>> {
        // Sound only for Current mode: the index covers the recorded
        // history *and* the currently extrapolated future, which is exactly
        // the history an instantaneous/continuous query sees.  Recorded
        // (persistent) evaluations replay arbitrary pasts and fall back to
        // full enumeration.
        if self.mode != ContextMode::Current {
            return None;
        }
        let bbox = region.bounding_box();
        self.db
            .index_window_candidates(self.origin, self.global_end(), &bbox)
    }

    fn attr_range_candidates(&self, attr: &str, lo: f64, hi: f64) -> Option<Vec<u64>> {
        // Same soundness argument as `inside_candidates`: the
        // dynamic-attribute index covers the recorded value lines and the
        // currently extrapolated future, which is exactly what Current-mode
        // evaluation sees.  Recorded replays fall back to enumeration.
        if self.mode != ContextMode::Current {
            return None;
        }
        self.db
            .attr_index_range_candidates(attr, self.origin, self.global_end(), lo, hi)
    }

    fn dynamic_series(&self, id: u64, name: &str) -> Vec<(Interval, [f64; 3])> {
        let Ok(obj) = self.db.object(id) else {
            return Vec::new();
        };
        let coeffs = |state: &crate::dynamic::DynamicAttribute| -> [f64; 3] {
            // value(τ) for local τ:  v + f((τ + origin) − updatetime)
            let delta = self.origin as f64 - state.updatetime as f64;
            match state.function {
                AttrFunction::Linear(s) => [0.0, s, state.value + s * delta],
                AttrFunction::Quadratic { accel, slope } => [
                    accel,
                    2.0 * accel * delta + slope,
                    state.value + accel * delta * delta + slope * delta,
                ],
            }
        };
        match self.mode {
            ContextMode::Current => match obj.dynamic_at(name, self.origin) {
                Some(state) => {
                    vec![(Interval::new(0, self.horizon.end()), coeffs(&state))]
                }
                None => Vec::new(),
            },
            ContextMode::Recorded => {
                let Some(history) = obj.dynamic_history(name) else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                for (i, state) in history.iter().enumerate() {
                    let from_global = state.updatetime.max(self.origin);
                    let until_global = history
                        .get(i + 1)
                        .map(|n| n.updatetime.saturating_sub(1))
                        .unwrap_or(self.global_end())
                        .min(self.global_end());
                    if until_global < self.origin || from_global > until_global {
                        continue;
                    }
                    // A state set before the origin is in force from local 0.
                    let lo = from_global - self.origin;
                    let hi = until_global - self.origin;
                    out.push((Interval::new(lo, hi), coeffs(state)));
                }
                // Before its first explicit set the attribute is undefined
                // (no piece), matching the static-attribute convention.
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::{Point, Velocity};

    fn db() -> Database {
        let mut db = Database::new(100);
        let car = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
        db.set_static(car, "PRICE", Value::from(80.0)).unwrap();
        db.set_dynamic_scalar(car, "FUEL", Some(100.0), Some(AttrFunction::Linear(-1.0)))
            .unwrap();
        db
    }

    #[test]
    fn current_mode_extrapolates_from_origin() {
        let mut database = db();
        database.advance_clock(10);
        database.update_motion(1, Velocity::new(0.0, 2.0)).unwrap();
        database.advance_clock(5); // now = 15, at (10, 10)
        let ctx = DbContext::new(&database, 15, ContextMode::Current);
        let traj = ctx.trajectory(1).unwrap();
        // Local tick 0 == global 15: position (10, 10), heading north.
        assert_eq!(traj.position_at_tick(0), Point::new(10.0, 10.0));
        assert_eq!(traj.position_at_tick(5), Point::new(10.0, 20.0));
        assert_eq!(traj.legs().len(), 1);
        // Static attr spans the horizon.
        let series = ctx.attr_series(1, "PRICE");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].1, Interval::new(0, 100));
        // Fuel: 100 - t_global = 85 at origin, draining.
        let dynamic = ctx.dynamic_series(1, "FUEL");
        assert_eq!(dynamic.len(), 1);
        let [a, b, c] = dynamic[0].1;
        assert_eq!((a, b, c), (0.0, -1.0, 85.0));
    }

    #[test]
    fn recorded_mode_replays_updates() {
        let mut database = db();
        database.advance_clock(10);
        database.update_motion(1, Velocity::new(2.0, 0.0)).unwrap();
        database.advance_clock(10); // now = 20
        let ctx = DbContext::new(&database, 0, ContextMode::Recorded);
        let traj = ctx.trajectory(1).unwrap();
        assert_eq!(traj.position_at_tick(5), Point::new(5.0, 0.0));
        assert_eq!(traj.position_at_tick(15), Point::new(20.0, 0.0));
        assert_eq!(traj.legs().len(), 2);
    }

    #[test]
    fn recorded_mode_shifts_origin() {
        let mut database = db();
        database.advance_clock(10);
        database.update_motion(1, Velocity::new(2.0, 0.0)).unwrap();
        let ctx = DbContext::new(&database, 5, ContextMode::Recorded);
        let traj = ctx.trajectory(1).unwrap();
        // Local 0 == global 5: position (5, 0), still at speed 1.
        assert_eq!(traj.position_at_tick(0), Point::new(5.0, 0.0));
        // Local 5 == global 10: the update kicks in.
        assert_eq!(traj.velocity_at_tick(5), Velocity::new(2.0, 0.0));
    }

    #[test]
    fn recorded_static_series_with_updates() {
        let mut database = db();
        database.advance_clock(10);
        database.set_static(1, "PRICE", Value::from(95.0)).unwrap();
        let ctx = DbContext::new(&database, 0, ContextMode::Recorded);
        let series = ctx.attr_series(1, "PRICE");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (Value::from(80.0), Interval::new(0, 9)));
        assert_eq!(series[1].0, Value::from(95.0));
        assert_eq!(series[1].1.begin(), 10);
    }

    #[test]
    fn recorded_dynamic_series_with_updates() {
        let mut database = db();
        database.advance_clock(20);
        // Refuel to 100 at t=20, drain twice as fast.
        database
            .set_dynamic_scalar(1, "FUEL", Some(100.0), Some(AttrFunction::Linear(-2.0)))
            .unwrap();
        let ctx = DbContext::new(&database, 0, ContextMode::Recorded);
        let series = ctx.dynamic_series(1, "FUEL");
        assert_eq!(series.len(), 2);
        // First piece: 100 - t over [0, 19].
        assert_eq!(series[0].0, Interval::new(0, 19));
        assert_eq!(series[0].1, [0.0, -1.0, 100.0]);
        // Second piece: 100 - 2(t - 20) = 140 - 2t from 20 on.
        assert_eq!(series[1].0.begin(), 20);
        assert_eq!(series[1].1, [0.0, -2.0, 140.0]);
    }

    #[test]
    fn missing_object_yields_empty() {
        let database = db();
        let ctx = DbContext::new(&database, 0, ContextMode::Current);
        assert!(ctx.trajectory(99).is_none());
        assert!(ctx.attr_series(99, "PRICE").is_empty());
        assert!(ctx.dynamic_series(99, "FUEL").is_empty());
    }
}
