//! Continuous queries: the materialized `Answer(CQ)` and its maintenance.
//!
//! Section 2.3: a continuous query is evaluated **once**, producing tuples
//! `(instantiation, begin, end)`; the display at each clock tick is served
//! from the materialized answer.  "A continuous query CQ has to be
//! reevaluated when an update occurs that may change the set of tuples
//! Answer(CQ).  In this sense Answer(CQ) is a materialized view."
//!
//! [`merge_answers`] implements the view-refresh rule: ticks before the
//! re-evaluation boundary were already served from the old answer and must
//! not be rewritten (the paper's example: an update before time 5 may turn
//! the tuple `(o, 5, 7)` into `(o, 6, 7)` — only the part of the answer
//! from the update time onwards changes).

use crate::deps::DepSet;
use most_dbms::value::Value;
use most_ftl::answer::{Answer, AnswerTuple};
use most_ftl::Query;
use most_temporal::{Interval, IntervalSet, Tick};
use std::collections::BTreeMap;

/// A registered continuous query.
#[derive(Debug, Clone)]
pub struct CqEntry {
    /// The query.
    pub query: Query,
    /// Global tick at which the query was entered.
    pub entered_at: Tick,
    /// Materialized answer, in **global** ticks.
    pub answer: Answer,
    /// Statically-extracted dependency set ([`DepSet::of_query`]); the
    /// refresh engine skips updates that cannot affect it.
    pub deps: DepSet,
    /// Answer-changing refresh evaluations applied to this entry.
    pub refreshes: u64,
    /// Refreshes skipped for this entry by dependency filtering.
    pub skipped: u64,
    /// Cumulative wall-clock nanoseconds spent re-evaluating this entry.
    pub refresh_nanos: u64,
}

/// Registry of live continuous queries.
#[derive(Debug, Clone, Default)]
pub struct ContinuousRegistry {
    next: u64,
    entries: BTreeMap<u64, CqEntry>,
    /// Number of evaluations that *changed* a materialized answer
    /// (initial registration + answer-changing refreshes) — the E3 cost
    /// metric.
    pub evaluations: u64,
    /// Incremental (per-object) refreshes performed.
    pub incremental_refreshes: u64,
    /// Refreshes skipped outright because the triggering updates were
    /// outside the query's dependency set (no evaluation performed).
    pub skipped_refreshes: u64,
    /// Refresh evaluations that ran but produced a merged answer identical
    /// to the materialized one (evaluation cost paid, no view change).
    pub noop_refreshes: u64,
}

impl ContinuousRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ContinuousRegistry::default()
    }

    /// Registers an evaluated query; returns its id.  The dependency set
    /// is extracted here, once, so every later update pays only a set
    /// lookup.
    pub fn register(&mut self, query: Query, entered_at: Tick, answer: Answer) -> u64 {
        let id = self.next;
        self.next += 1;
        let deps = DepSet::of_query(&query);
        self.entries.insert(
            id,
            CqEntry {
                query,
                entered_at,
                answer,
                deps,
                refreshes: 0,
                skipped: 0,
                refresh_nanos: 0,
            },
        );
        self.evaluations += 1;
        id
    }

    /// Looks up an entry.
    pub fn get(&self, id: u64) -> Option<&CqEntry> {
        self.entries.get(&id)
    }

    /// Cancels a continuous query ("until cancelled (e.g. until a
    /// satisfactory motel is found)").
    pub fn cancel(&mut self, id: u64) -> bool {
        self.entries.remove(&id).is_some()
    }

    /// Number of live queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &CqEntry)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Applies an incremental refresh for one changed object.  `nanos` is
    /// the wall-clock cost of the per-object re-evaluation.
    pub fn refresh_incremental(
        &mut self,
        id: u64,
        boundary: Tick,
        changed: &Value,
        fresh: Answer,
        nanos: u64,
    ) {
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.answer = merge_incremental(&entry.answer, boundary, changed, &fresh);
            entry.refresh_nanos += nanos;
            self.incremental_refreshes += 1;
        }
    }

    /// Replaces an entry's answer after a refresh evaluation.  `nanos` is
    /// the wall-clock cost of the evaluation that produced `new_answer`.
    ///
    /// Bumps `evaluations` only when the merged answer actually differs
    /// from the materialized one; a refresh whose merge is byte-identical
    /// past the boundary counts as a `noop_refreshes` instead, so the E3
    /// metric reports answer-*changing* evaluations.
    pub fn refresh(&mut self, id: u64, boundary: Tick, new_answer: Answer, nanos: u64) {
        if let Some(entry) = self.entries.get_mut(&id) {
            let merged = merge_answers(&entry.answer, &new_answer, boundary);
            entry.refresh_nanos += nanos;
            if merged == entry.answer {
                self.noop_refreshes += 1;
            } else {
                entry.answer = merged;
                entry.refreshes += 1;
                self.evaluations += 1;
            }
        }
    }

    /// Records that a refresh of `id` was skipped by dependency filtering.
    pub fn note_skipped(&mut self, id: u64) {
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.skipped += 1;
            self.skipped_refreshes += 1;
        }
    }

    /// Ids of all live queries (snapshot, for iteration while mutating).
    pub fn ids(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }
}

/// Incremental refresh (DESIGN.md extension): merges only the rows that
/// involve the `changed` object.  Sound whenever an instantiation's
/// satisfaction depends solely on the objects it binds — true for every FTL
/// formula whose terms reference objects only through variables (atoms are
/// evaluated per instantiation).  Callers must fall back to a full refresh
/// when the formula mentions a fixed object id.
///
/// * old rows **not** containing `changed` are kept verbatim (the update
///   cannot affect them);
/// * old rows containing `changed` keep only their already-served past
///   (`< boundary`);
/// * `fresh` (the re-evaluation restricted to instantiations containing
///   `changed`) contributes the future (`>= boundary`).
pub fn merge_incremental(
    old: &Answer,
    boundary: Tick,
    changed: &Value,
    fresh: &Answer,
) -> Answer {
    assert_eq!(
        old.vars, fresh.vars,
        "merge_incremental: answers disagree on target variables"
    );
    let mut rows: BTreeMap<Vec<Value>, IntervalSet> = BTreeMap::new();
    let past = (boundary > 0)
        .then(|| IntervalSet::singleton(Interval::new(0, boundary - 1)));
    for tup in &old.tuples {
        if tup.values.contains(changed) {
            if let Some(past) = &past {
                let clipped = tup.intervals.intersect(past);
                if !clipped.is_empty() {
                    rows.insert(tup.values.clone(), clipped);
                }
            }
        } else {
            rows.insert(tup.values.clone(), tup.intervals.clone());
        }
    }
    // `[boundary, Tick::MAX]` — well-formed for every boundary, including
    // `Tick::MAX` itself (`Tick::MAX - 1` as the end both excluded valid
    // ticks and made the constructor panic at the top of the domain).
    let future = IntervalSet::singleton(Interval::new(boundary, Tick::MAX));
    for tup in &fresh.tuples {
        debug_assert!(tup.values.contains(changed));
        let clipped = tup.intervals.intersect(&future);
        if clipped.is_empty() {
            continue;
        }
        rows.entry(tup.values.clone())
            .and_modify(|s| *s = s.union(&clipped))
            .or_insert(clipped);
    }
    Answer::new(
        old.vars.clone(),
        rows.into_iter()
            .map(|(values, intervals)| AnswerTuple { values, intervals })
            .collect(),
    )
}

/// The difference between two continuous-query displays, as `(added,
/// removed)` row sets — the incremental payload a subscriber needs to move
/// from `prev` to `current` (the serving layer pushes exactly this instead
/// of re-sending the whole display every tick).
///
/// Both inputs are display snapshots as produced by
/// [`crate::Database::continuous_display`]: each row appears at most once
/// and rows are in ascending order (`Answer::new` sorts its tuples).  The
/// returned vectors preserve that order.
pub fn display_delta(
    prev: &[Vec<Value>],
    current: &[Vec<Value>],
) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    debug_assert!(prev.windows(2).all(|w| w[0] < w[1]), "prev display sorted");
    debug_assert!(
        current.windows(2).all(|w| w[0] < w[1]),
        "current display sorted"
    );
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() && j < current.len() {
        match prev[i].cmp(&current[j]) {
            std::cmp::Ordering::Less => {
                removed.push(prev[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(current[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(prev[i..].iter().cloned());
    added.extend(current[j..].iter().cloned());
    (added, removed)
}

/// Merges a materialized answer with a re-evaluation taken at `boundary`:
/// ticks `< boundary` keep the old answer (already served), ticks
/// `>= boundary` come from the new one.
pub fn merge_answers(old: &Answer, new: &Answer, boundary: Tick) -> Answer {
    // A real invariant, not a debug assert: in release builds a silent
    // mismatch would merge rows from differently-shaped answers into
    // garbage, and the sharded scatter-gather combine leans on this
    // function downstream of `combine_shard_answers`' own check.
    assert_eq!(
        old.vars, new.vars,
        "merge_answers: answers disagree on target variables"
    );
    let mut rows: BTreeMap<Vec<Value>, IntervalSet> = BTreeMap::new();
    if boundary > 0 {
        let past = IntervalSet::singleton(Interval::new(0, boundary - 1));
        for tup in &old.tuples {
            let clipped = tup.intervals.intersect(&past);
            if !clipped.is_empty() {
                rows.insert(tup.values.clone(), clipped);
            }
        }
    }
    // The future part must not extend below the boundary; `[boundary,
    // Tick::MAX]` is well-formed for every boundary, including `Tick::MAX`.
    let future = IntervalSet::singleton(Interval::new(boundary, Tick::MAX));
    for tup in &new.tuples {
        let clipped = tup.intervals.intersect(&future);
        if clipped.is_empty() {
            continue;
        }
        rows.entry(tup.values.clone())
            .and_modify(|s| *s = s.union(&clipped))
            .or_insert(clipped);
    }
    Answer::new(
        old.vars.clone(),
        rows.into_iter()
            .map(|(values, intervals)| AnswerTuple { values, intervals })
            .collect(),
    )
}

/// Combines per-shard answers to one scatter-gather query into a single
/// global answer.  Shards partition the object universe, so the same
/// instantiation can appear on at most one shard for single-variable
/// queries — but the combine is written for the general case: equal
/// instantiations have their interval sets unioned.
///
/// The result is order-independent by construction
/// ([`Answer::union_with`] is commutative and associative), so permuting
/// the shard answer order yields a byte-identical answer — the property
/// the cross-shard cut relies on for deterministic replies.
///
/// Errors with [`CoreError::AnswerVarsMismatch`](crate::error::CoreError::AnswerVarsMismatch)
/// when two shard answers
/// disagree on their target-variable lists (checked here, before the
/// panicking algebraic primitive), and rejects an empty slice because
/// there is no variable list to build an empty answer from (shard counts
/// are ≥ 1 everywhere in the engine).
pub fn combine_shard_answers(parts: &[Answer]) -> crate::error::CoreResult<Answer> {
    let first = parts.first().ok_or_else(|| {
        crate::error::CoreError::Unshardable("no shard answers to combine".into())
    })?;
    for part in parts {
        if part.vars != first.vars {
            return Err(crate::error::CoreError::AnswerVarsMismatch {
                left: first.vars.clone(),
                right: part.vars.clone(),
            });
        }
    }
    Ok(parts[1..]
        .iter()
        .fold(first.clone(), |acc, part| acc.union_with(part)))
}

most_testkit::json_struct!(CqEntry {
    query,
    entered_at,
    answer,
    deps,
    refreshes,
    skipped,
    refresh_nanos
});
most_testkit::json_struct!(ContinuousRegistry {
    next,
    entries,
    evaluations,
    incremental_refreshes,
    skipped_refreshes,
    noop_refreshes
});

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(rows: &[(u64, &[(Tick, Tick)])]) -> Answer {
        Answer::new(
            vec!["o".into()],
            rows.iter()
                .map(|(id, ivs)| AnswerTuple {
                    values: vec![Value::Id(*id)],
                    intervals: IntervalSet::from_intervals(
                        ivs.iter().map(|&(a, b)| Interval::new(a, b)),
                    ),
                })
                .collect(),
        )
    }

    #[test]
    fn merge_keeps_past_and_takes_future() {
        // Old: object 1 in [5, 7]. Update at 6 says it's now [6, 9].
        let old = answer(&[(1, &[(5, 7)])]);
        let new = answer(&[(1, &[(6, 9)])]);
        let merged = merge_answers(&old, &new, 6);
        assert_eq!(
            merged.intervals_for(&[Value::Id(1)]).unwrap(),
            &IntervalSet::singleton(Interval::new(5, 9))
        );
    }

    #[test]
    fn merge_deletes_future_tuples_gone_from_new() {
        // The paper: "the tuple may need to be deleted".
        let old = answer(&[(1, &[(5, 7)]), (2, &[(1, 2)])]);
        let new = answer(&[]);
        let merged = merge_answers(&old, &new, 5);
        // Object 1's [5,7] was entirely in the future: gone.
        assert!(merged.intervals_for(&[Value::Id(1)]).is_none());
        // Object 2's [1,2] was already served: kept.
        assert!(merged.intervals_for(&[Value::Id(2)]).is_some());
    }

    #[test]
    fn merge_adds_new_tuples() {
        let old = answer(&[]);
        let new = answer(&[(3, &[(10, 12)])]);
        let merged = merge_answers(&old, &new, 8);
        assert_eq!(merged.ids(), vec![3]);
    }

    #[test]
    fn merge_at_zero_boundary_is_replacement() {
        let old = answer(&[(1, &[(0, 5)])]);
        let new = answer(&[(2, &[(0, 3)])]);
        let merged = merge_answers(&old, &new, 0);
        assert_eq!(merged.ids(), vec![2]);
    }

    #[test]
    fn registry_lifecycle() {
        let mut reg = ContinuousRegistry::new();
        let q = Query::parse("RETRIEVE o WHERE true").unwrap();
        let id = reg.register(q.clone(), 0, answer(&[(1, &[(0, 10)])]));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.evaluations, 1);
        assert!(reg.get(id).is_some());
        reg.refresh(id, 5, answer(&[(1, &[(5, 20)])]), 7);
        assert_eq!(reg.evaluations, 2);
        assert_eq!(reg.noop_refreshes, 0);
        let entry = reg.get(id).unwrap();
        assert_eq!(entry.refreshes, 1);
        assert_eq!(entry.refresh_nanos, 7);
        assert_eq!(
            entry.answer.intervals_for(&[Value::Id(1)]).unwrap(),
            &IntervalSet::singleton(Interval::new(0, 20))
        );
        assert!(reg.cancel(id));
        assert!(!reg.cancel(id));
        assert!(reg.is_empty());
    }

    #[test]
    fn refresh_identical_answer_is_a_noop_not_an_evaluation() {
        let mut reg = ContinuousRegistry::new();
        let q = Query::parse("RETRIEVE o WHERE true").unwrap();
        let id = reg.register(q, 0, answer(&[(1, &[(0, 10)])]));
        // Re-evaluating at tick 4 yields the same future: merged answer is
        // byte-identical, so this refresh must not count as an evaluation.
        reg.refresh(id, 4, answer(&[(1, &[(4, 10)])]), 3);
        assert_eq!(reg.evaluations, 1, "noop refresh must not bump evaluations");
        assert_eq!(reg.noop_refreshes, 1);
        let entry = reg.get(id).unwrap();
        assert_eq!(entry.refreshes, 0);
        assert_eq!(entry.refresh_nanos, 3, "evaluation cost is still recorded");
        // A later, answer-changing refresh counts again.
        reg.refresh(id, 6, answer(&[(1, &[(6, 15)])]), 2);
        assert_eq!(reg.evaluations, 2);
        assert_eq!(reg.noop_refreshes, 1);
    }

    #[test]
    fn note_skipped_tracks_entry_and_registry() {
        let mut reg = ContinuousRegistry::new();
        let q = Query::parse("RETRIEVE o WHERE o.PRICE <= 100").unwrap();
        let id = reg.register(q, 0, answer(&[]));
        reg.note_skipped(id);
        reg.note_skipped(id);
        reg.note_skipped(9999); // unknown id: ignored
        assert_eq!(reg.skipped_refreshes, 2);
        assert_eq!(reg.get(id).unwrap().skipped, 2);
        assert!(!reg.get(id).unwrap().deps.position);
        assert!(reg.get(id).unwrap().deps.attrs.contains("PRICE"));
    }

    #[test]
    fn merge_boundary_equal_to_entry_time_replaces_everything() {
        // boundary == entered_at (0 here): nothing was served yet, the new
        // answer wins wholesale.
        let old = answer(&[(1, &[(0, 5)]), (2, &[(3, 9)])]);
        let new = answer(&[(3, &[(0, 4)])]);
        let merged = merge_answers(&old, &new, 0);
        assert_eq!(merged.ids(), vec![3]);
    }

    #[test]
    fn merge_incremental_empty_fresh_deletes_future_of_changed() {
        let changed = Value::Id(1);
        let old = answer(&[(1, &[(2, 9)]), (2, &[(2, 9)])]);
        let fresh = answer(&[]);
        let merged = merge_incremental(&old, 4, &changed, &fresh);
        // Changed object keeps only its served past [2,3].
        assert_eq!(
            merged.intervals_for(&[Value::Id(1)]).unwrap(),
            &IntervalSet::singleton(Interval::new(2, 3))
        );
        // Unchanged object is untouched.
        assert_eq!(
            merged.intervals_for(&[Value::Id(2)]).unwrap(),
            &IntervalSet::singleton(Interval::new(2, 9))
        );
    }

    #[test]
    fn merge_incremental_at_zero_boundary_drops_changed_past() {
        let changed = Value::Id(1);
        let old = answer(&[(1, &[(0, 9)])]);
        let fresh = answer(&[]);
        let merged = merge_incremental(&old, 0, &changed, &fresh);
        assert!(merged.intervals_for(&[Value::Id(1)]).is_none());
    }

    #[test]
    fn merge_at_tick_max_boundary_keeps_past_and_final_tick() {
        // A boundary at the very top of the tick domain used to construct
        // the inverted interval [MAX, MAX-1] and panic; it must instead
        // keep the whole served past and take only tick MAX from `new`.
        let old = answer(&[(1, &[(0, 5)])]);
        let new = answer(&[(1, &[(Tick::MAX, Tick::MAX)]), (2, &[(0, 5)])]);
        let merged = merge_answers(&old, &new, Tick::MAX);
        assert_eq!(
            merged.intervals_for(&[Value::Id(1)]).unwrap(),
            &IntervalSet::from_intervals([
                Interval::new(0, 5),
                Interval::new(Tick::MAX, Tick::MAX),
            ])
        );
        // Object 2's contribution lies entirely below the boundary: dropped.
        assert!(merged.intervals_for(&[Value::Id(2)]).is_none());

        let changed = Value::Id(1);
        let fresh = answer(&[(1, &[(Tick::MAX, Tick::MAX)])]);
        let inc = merge_incremental(&old, Tick::MAX, &changed, &fresh);
        assert_eq!(
            inc.intervals_for(&[Value::Id(1)]).unwrap(),
            &IntervalSet::from_intervals([
                Interval::new(0, 5),
                Interval::new(Tick::MAX, Tick::MAX),
            ])
        );
    }

    #[test]
    fn display_delta_splits_added_and_removed() {
        let row = |id: u64| vec![Value::Id(id)];
        let prev = vec![row(1), row(3), row(5)];
        let current = vec![row(2), row(3), row(6)];
        let (added, removed) = display_delta(&prev, &current);
        assert_eq!(added, vec![row(2), row(6)]);
        assert_eq!(removed, vec![row(1), row(5)]);

        // Identical displays: empty delta.
        let (added, removed) = display_delta(&prev, &prev);
        assert!(added.is_empty() && removed.is_empty());

        // From/to empty.
        let (added, removed) = display_delta(&[], &current);
        assert_eq!(added, current);
        assert!(removed.is_empty());
        let (added, removed) = display_delta(&prev, &[]);
        assert!(added.is_empty());
        assert_eq!(removed, prev);
    }

    #[test]
    fn display_delta_applies_back_to_prev() {
        // Applying (added, removed) to prev must reproduce current.
        let row = |id: u64| vec![Value::Id(id)];
        let prev = vec![row(10), row(20), row(30), row(40)];
        let current = vec![row(20), row(25), row(40), row(41)];
        let (added, removed) = display_delta(&prev, &current);
        let mut rebuilt: Vec<Vec<Value>> = prev
            .iter()
            .filter(|r| !removed.contains(r))
            .cloned()
            .collect();
        rebuilt.extend(added);
        rebuilt.sort();
        assert_eq!(rebuilt, current);
    }

    #[test]
    #[should_panic(expected = "disagree on target variables")]
    fn merge_answers_rejects_var_mismatch_in_release_too() {
        let old = answer(&[(1, &[(0, 5)])]);
        let new = Answer::new(vec!["x".into(), "y".into()], vec![]);
        let _ = merge_answers(&old, &new, 3);
    }

    #[test]
    fn combine_shard_answers_unions_rows() {
        let a = answer(&[(1, &[(0, 5)]), (2, &[(3, 4)])]);
        let b = answer(&[(2, &[(6, 9)]), (7, &[(1, 1)])]);
        let combined = combine_shard_answers(&[a, b]).unwrap();
        assert_eq!(combined.ids(), vec![1, 2, 7]);
        assert_eq!(
            combined.intervals_for(&[Value::Id(2)]).unwrap(),
            &IntervalSet::from_intervals([Interval::new(3, 4), Interval::new(6, 9)])
        );
    }

    #[test]
    fn combine_shard_answers_rejects_var_mismatch_and_empty() {
        let a = answer(&[(1, &[(0, 5)])]);
        let b = Answer::new(vec!["z".into()], vec![]);
        match combine_shard_answers(&[a, b]) {
            Err(crate::error::CoreError::AnswerVarsMismatch { left, right }) => {
                assert_eq!(left, vec!["o".to_string()]);
                assert_eq!(right, vec!["z".to_string()]);
            }
            other => panic!("expected AnswerVarsMismatch, got {other:?}"),
        }
        assert!(matches!(
            combine_shard_answers(&[]),
            Err(crate::error::CoreError::Unshardable(_))
        ));
    }

    #[test]
    fn combine_shard_answers_is_order_independent() {
        // Property test: permuting the shard answer order yields a
        // byte-identical combined answer.  Random shard partitions with
        // overlapping rows (overlap exercises the union path even though
        // real shards partition the universe).
        use most_testkit::ser::to_json_string;
        let mut rng = most_testkit::rng::Rng::seed_from_u64(0xE16C);
        for _ in 0..50 {
            let shards: Vec<Answer> = (0..4)
                .map(|_| {
                    let rows: Vec<(u64, Vec<(Tick, Tick)>)> = (0..rng.below(6))
                        .map(|_| {
                            let id = rng.below(8);
                            let a = rng.below(20) as Tick;
                            let b = a + rng.below(10) as Tick;
                            (id, vec![(a, b)])
                        })
                        .collect();
                    let borrowed: Vec<(u64, &[(Tick, Tick)])> =
                        rows.iter().map(|(id, ivs)| (*id, ivs.as_slice())).collect();
                    answer(&borrowed)
                })
                .collect();
            let reference =
                to_json_string(&combine_shard_answers(&shards).unwrap()).unwrap();
            // Exercise several permutations, including the reverse.
            let mut perm = shards.clone();
            perm.reverse();
            assert_eq!(
                to_json_string(&combine_shard_answers(&perm).unwrap()).unwrap(),
                reference
            );
            for _ in 0..4 {
                let i = rng.below(perm.len() as u64) as usize;
                let j = rng.below(perm.len() as u64) as usize;
                perm.swap(i, j);
                assert_eq!(
                    to_json_string(&combine_shard_answers(&perm).unwrap()).unwrap(),
                    reference,
                    "combine must be order-independent"
                );
            }
        }
    }

    #[test]
    fn merge_future_window_includes_tick_max() {
        // A fresh answer reaching Tick::MAX must not have its final tick
        // shaved off by the future-window clip.
        let old = answer(&[]);
        let new = answer(&[(1, &[(10, Tick::MAX)])]);
        let merged = merge_answers(&old, &new, 10);
        assert_eq!(
            merged.intervals_for(&[Value::Id(1)]).unwrap(),
            &IntervalSet::singleton(Interval::new(10, Tick::MAX))
        );
    }
}
