//! Persistent queries (Section 2.3) — the paper's deferred future work,
//! implemented over the recorded update history.
//!
//! "A persistent query at time t is a sequence of instantaneous queries on
//! the infinite history starting at t ... the different instantaneous
//! queries comprising a persistent query have the same starting point in
//! the history.  These histories may differ for different instantaneous
//! queries due to database updates executed after time t."
//!
//! Concretely: the query is (re-)evaluated against the history anchored at
//! its entry tick, where states up to the current clock replay the
//! *recorded* updates and later states extrapolate the current functions.
//! Because "the evaluation of persistent queries requires saving of
//! information about the way the database is updated over time", the
//! [`crate::object::MovingObject`] histories provide exactly that log.
//!
//! The canonical example is the paper's query R — "retrieve the objects
//! whose speed in the direction of the X-axis doubles within 10 minutes" —
//! which is never satisfied as an instantaneous or continuous query (each
//! implicit future history has constant speed) but becomes satisfied as a
//! persistent query once recorded updates exhibit the doubling; see the
//! test below and `tests/three_query_types.rs`.

use crate::database::Database;
use crate::error::CoreResult;
use most_dbms::value::Value;
use most_ftl::answer::Answer;
use most_ftl::Query;
use most_temporal::Tick;

/// A persistent query: anchored at its entry tick, re-evaluated on demand
/// against the recorded history.
#[derive(Debug, Clone)]
pub struct PersistentQuery {
    query: Query,
    entered_at: Tick,
    /// Evaluations performed (cost accounting).
    pub evaluations: u64,
}

impl PersistentQuery {
    /// Enters a persistent query at the database's current tick.
    pub fn enter(db: &Database, query: Query) -> Self {
        PersistentQuery { query, entered_at: db.now(), evaluations: 0 }
    }

    /// The query text.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The anchor tick.
    pub fn entered_at(&self) -> Tick {
        self.entered_at
    }

    /// Evaluates the query on the history starting at the anchor tick as
    /// recorded so far; the answer is in global ticks.
    pub fn answer(&mut self, db: &Database) -> CoreResult<Answer> {
        self.evaluations += 1;
        db.persistent_answer(&self.query, self.entered_at)
    }

    /// The instantiations satisfied at the anchor state given everything
    /// recorded so far — what the user of the persistent query sees "at
    /// that time" (the paper's "at time 2 object o should be retrieved").
    pub fn satisfied_now(&mut self, db: &Database) -> CoreResult<Vec<Vec<Value>>> {
        let at = self.entered_at;
        let answer = self.answer(db)?;
        Ok(answer
            .at_tick(at)
            .into_iter()
            .map(|t| t.values.clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::{Point, Velocity};

    /// The paper's Section 2.3 walk-through, in ticks: speed 5 at t=0,
    /// updated to 7 at t=1 and to 10 at t=2; query R = "speed in X doubles
    /// within 10".
    fn speed_doubling_db() -> (Database, u64) {
        let mut db = Database::new(100);
        let o = db.insert_moving_object("objects", Point::origin(), Velocity::new(5.0, 0.0));
        (db, o)
    }

    fn query_r() -> Query {
        Query::parse("RETRIEVE o WHERE [x <- o.VX] Eventually within 10 (o.VX >= 2 * x)")
            .unwrap()
    }

    #[test]
    fn persistent_query_sees_recorded_doubling() {
        let (mut db, o) = speed_doubling_db();
        let mut pq = PersistentQuery::enter(&db, query_r());
        // At time 0: "no objects will be retrieved, since for each object,
        // the speed is identical in all future database states."
        assert!(pq.satisfied_now(&db).unwrap().is_empty());
        // Minute one: speed 7.
        db.advance_clock(1);
        db.update_motion(o, Velocity::new(7.0, 0.0)).unwrap();
        assert!(pq.satisfied_now(&db).unwrap().is_empty());
        // Minute two: speed 10 — doubled from 5 within two ticks.
        db.advance_clock(1);
        db.update_motion(o, Velocity::new(10.0, 0.0)).unwrap();
        let now = pq.satisfied_now(&db).unwrap();
        assert_eq!(now, vec![vec![Value::Id(o)]]);
        assert_eq!(pq.entered_at(), 0);
        assert!(pq.evaluations >= 3);
    }

    #[test]
    fn instantaneous_and_continuous_never_see_it() {
        // "But if we consider the query R as instantaneous or continuous o
        // will never be retrieved."
        let (mut db, o) = speed_doubling_db();
        let cq = db.register_continuous(query_r()).unwrap();
        db.advance_clock(1);
        db.update_motion(o, Velocity::new(7.0, 0.0)).unwrap();
        db.advance_clock(1);
        db.update_motion(o, Velocity::new(10.0, 0.0)).unwrap();
        // Instantaneous now: future speeds are constant 10.
        assert!(db.instantaneous_now(&query_r()).unwrap().is_empty());
        // Continuous: refreshed on each update, still empty at every tick.
        let ans = db.continuous_answer(cq).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn anchor_later_than_zero() {
        let (mut db, o) = speed_doubling_db();
        db.advance_clock(5);
        let mut pq = PersistentQuery::enter(&db, query_r());
        assert_eq!(pq.entered_at(), 5);
        db.advance_clock(1);
        db.update_motion(o, Velocity::new(10.0, 0.0)).unwrap();
        let now = pq.satisfied_now(&db).unwrap();
        assert_eq!(now, vec![vec![Value::Id(o)]]);
    }
}
