//! Errors of the MOST core layer.

use most_dbms::DbError;
use most_ftl::FtlError;
use std::fmt;

/// Result alias for MOST operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised by the MOST data model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An object id does not exist.
    UnknownObject(u64),
    /// An object class does not exist.
    UnknownClass(String),
    /// An attribute is not declared by the object's class.
    UndeclaredAttribute {
        /// Class name.
        class: String,
        /// Attribute name.
        attr: String,
    },
    /// A continuous-query id does not exist.
    UnknownContinuousQuery(u64),
    /// A trigger id does not exist.
    UnknownTrigger(u64),
    /// The FTL layer rejected or failed the query.
    Ftl(FtlError),
    /// The substrate DBMS failed.
    Db(DbError),
    /// A dynamic attribute was addressed as static or vice versa.
    AttributeKind {
        /// Attribute name.
        attr: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The write-ahead log failed (I/O or encoding).  Carries the
    /// rendered `io::Error`, since `io::Error` is neither `Clone` nor
    /// `PartialEq`.
    Wal(String),
    /// A replica feed asked for records below the checkpoint horizon;
    /// they were pruned with the segments the checkpoint covered.  The
    /// caller must bootstrap from a snapshot and resume the feed from
    /// `checkpoint_seq`.
    WalFeedPruned {
        /// The sequence number the feed asked for.
        from_seq: u64,
        /// The checkpoint horizon: the first sequence still served.
        checkpoint_seq: u64,
    },
    /// A query evaluation panicked during a continuous-query refresh.
    /// The panic was caught at the evaluation boundary: only the
    /// offending query's refresh failed (its materialized answer stays at
    /// the pre-batch state); every other query refreshed normally and the
    /// batch's mutations remain applied.  Carries the rendered panic
    /// payload.
    EvalPanic(String),
    /// An object id passed to an explicit-id insert already exists.
    DuplicateObject(u64),
    /// A query cannot be answered by shard-local evaluation +
    /// scatter-gather (more or fewer than one free object variable, or a
    /// fixed object id that may live on another shard).  Carries a
    /// human-readable reason.
    Unshardable(String),
    /// Two shard answers for the same query disagreed on their target
    /// variable lists — the cross-shard combine invariant.  Carries both
    /// lists, rendered.
    AnswerVarsMismatch {
        /// Variable list of the first answer.
        left: Vec<String>,
        /// Variable list of the disagreeing answer.
        right: Vec<String>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownObject(id) => write!(f, "unknown object #{id}"),
            CoreError::UnknownClass(c) => write!(f, "unknown object class `{c}`"),
            CoreError::UndeclaredAttribute { class, attr } => {
                write!(f, "class `{class}` does not declare attribute `{attr}`")
            }
            CoreError::UnknownContinuousQuery(id) => {
                write!(f, "unknown continuous query #{id}")
            }
            CoreError::UnknownTrigger(id) => write!(f, "unknown trigger #{id}"),
            CoreError::Ftl(e) => write!(f, "FTL error: {e}"),
            CoreError::Db(e) => write!(f, "DBMS error: {e}"),
            CoreError::AttributeKind { attr, detail } => {
                write!(f, "attribute `{attr}`: {detail}")
            }
            CoreError::Wal(detail) => write!(f, "write-ahead log: {detail}"),
            CoreError::WalFeedPruned { from_seq, checkpoint_seq } => write!(
                f,
                "feed from {from_seq} predates the checkpoint horizon {checkpoint_seq}: \
                 earlier records were pruned; bootstrap from a snapshot"
            ),
            CoreError::EvalPanic(detail) => {
                write!(f, "query evaluation panicked: {detail}")
            }
            CoreError::DuplicateObject(id) => {
                write!(f, "object #{id} already exists")
            }
            CoreError::Unshardable(detail) => {
                write!(f, "query is not shardable: {detail}")
            }
            CoreError::AnswerVarsMismatch { left, right } => write!(
                f,
                "shard answers disagree on target variables: {left:?} vs {right:?}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FtlError> for CoreError {
    fn from(e: FtlError) -> Self {
        CoreError::Ftl(e)
    }
}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert_eq!(CoreError::UnknownObject(3).to_string(), "unknown object #3");
        let e: CoreError = FtlError::UnknownRegion("P".into()).into();
        assert!(e.to_string().contains("unknown region"));
        let e: CoreError = DbError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
    }
}
