//! Errors of the MOST core layer.

use most_dbms::DbError;
use most_ftl::FtlError;
use std::fmt;

/// Result alias for MOST operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised by the MOST data model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An object id does not exist.
    UnknownObject(u64),
    /// An object class does not exist.
    UnknownClass(String),
    /// An attribute is not declared by the object's class.
    UndeclaredAttribute {
        /// Class name.
        class: String,
        /// Attribute name.
        attr: String,
    },
    /// A continuous-query id does not exist.
    UnknownContinuousQuery(u64),
    /// A trigger id does not exist.
    UnknownTrigger(u64),
    /// The FTL layer rejected or failed the query.
    Ftl(FtlError),
    /// The substrate DBMS failed.
    Db(DbError),
    /// A dynamic attribute was addressed as static or vice versa.
    AttributeKind {
        /// Attribute name.
        attr: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The write-ahead log failed (I/O or encoding).  Carries the
    /// rendered `io::Error`, since `io::Error` is neither `Clone` nor
    /// `PartialEq`.
    Wal(String),
    /// A replica feed asked for records below the checkpoint horizon;
    /// they were pruned with the segments the checkpoint covered.  The
    /// caller must bootstrap from a snapshot and resume the feed from
    /// `checkpoint_seq`.
    WalFeedPruned {
        /// The sequence number the feed asked for.
        from_seq: u64,
        /// The checkpoint horizon: the first sequence still served.
        checkpoint_seq: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownObject(id) => write!(f, "unknown object #{id}"),
            CoreError::UnknownClass(c) => write!(f, "unknown object class `{c}`"),
            CoreError::UndeclaredAttribute { class, attr } => {
                write!(f, "class `{class}` does not declare attribute `{attr}`")
            }
            CoreError::UnknownContinuousQuery(id) => {
                write!(f, "unknown continuous query #{id}")
            }
            CoreError::UnknownTrigger(id) => write!(f, "unknown trigger #{id}"),
            CoreError::Ftl(e) => write!(f, "FTL error: {e}"),
            CoreError::Db(e) => write!(f, "DBMS error: {e}"),
            CoreError::AttributeKind { attr, detail } => {
                write!(f, "attribute `{attr}`: {detail}")
            }
            CoreError::Wal(detail) => write!(f, "write-ahead log: {detail}"),
            CoreError::WalFeedPruned { from_seq, checkpoint_seq } => write!(
                f,
                "feed from {from_seq} predates the checkpoint horizon {checkpoint_seq}: \
                 earlier records were pruned; bootstrap from a snapshot"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FtlError> for CoreError {
    fn from(e: FtlError) -> Self {
        CoreError::Ftl(e)
    }
}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert_eq!(CoreError::UnknownObject(3).to_string(), "unknown object #3");
        let e: CoreError = FtlError::UnknownRegion("P".into()).into();
        assert!(e.to_string().contains("unknown region"));
        let e: CoreError = DbError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
    }
}
