//! Determinism guarantees of the in-repo PRNGs: every workload, bench and
//! property test in the workspace is a pure function of its seed, and
//! these tests are what make that claim falsifiable.

use most_testkit::rng::{Rng, SplitMix64, GOLDEN_GAMMA};

/// First 8 outputs of `SplitMix64::new(0x9E3779B97F4A7C15)` — the
/// golden-gamma seed.  Pinned so a silent change to the mixer (which
/// would invalidate every recorded regression seed and every published
/// experiment table) fails loudly.
const SPLITMIX_REFERENCE: [u64; 8] = [
    0x6E78_9E6A_A1B9_65F4,
    0x06C4_5D18_8009_454F,
    0xF88B_B8A8_724C_81EC,
    0x1B39_896A_51A8_749B,
    0x53CB_9F0C_747E_A2EA,
    0x2C82_9ABE_1F45_32E1,
    0xC584_133A_C916_AB3C,
    0x3EE5_7890_41C9_8AC3,
];

#[test]
fn splitmix64_matches_reference_vector() {
    let mut sm = SplitMix64::new(GOLDEN_GAMMA);
    let got: Vec<u64> = (0..8).map(|_| sm.next_u64()).collect();
    assert_eq!(got, SPLITMIX_REFERENCE);
}

#[test]
fn same_seed_same_sequence() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for i in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed} diverged at step {i}");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let mut a = Rng::seed_from_u64(1);
    let mut b = Rng::seed_from_u64(2);
    let a16: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
    let b16: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
    assert_ne!(a16, b16);
}

#[test]
fn split_streams_are_distinct_and_reproducible() {
    let mut parent = Rng::seed_from_u64(7);
    let mut children: Vec<Rng> = (0..4).map(|_| parent.split()).collect();
    let outputs: Vec<Vec<u64>> = children
        .iter_mut()
        .map(|c| (0..32).map(|_| c.next_u64()).collect())
        .collect();
    // Pairwise distinct streams (and distinct from the parent's own
    // continuation).
    let parent_cont: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
    for i in 0..outputs.len() {
        assert_ne!(outputs[i], parent_cont, "child {i} tracks the parent");
        for j in (i + 1)..outputs.len() {
            assert_ne!(outputs[i], outputs[j], "children {i} and {j} coincide");
        }
    }
    // The whole tree replays exactly from the root seed.
    let mut parent2 = Rng::seed_from_u64(7);
    let replay: Vec<Vec<u64>> = (0..4)
        .map(|_| {
            let mut c = parent2.split();
            (0..32).map(|_| c.next_u64()).collect()
        })
        .collect();
    assert_eq!(outputs, replay);
}

#[test]
fn derived_helpers_are_deterministic() {
    let run = || {
        let mut rng = Rng::seed_from_u64(99);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let floats: Vec<f64> = (0..8).map(|_| rng.random_range(0.0..10.0)).collect();
        let picks = rng.sample_indices(50, 5);
        (v, floats, picks)
    };
    assert_eq!(run(), run());
}
