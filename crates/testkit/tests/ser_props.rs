//! Property tests for the JSON substrate, driven by the crate's own
//! `check` harness: arbitrary values survive render → parse, tricky
//! strings escape correctly, and non-finite floats are rejected rather
//! than emitted as invalid JSON.

use most_testkit::check::{floats, ints, just, one_of, select, tuple2, vecs, Check, Gen};
use most_testkit::ser::{Json, JsonError};

/// Strings over a pool heavy in characters that need escaping.
fn arb_string() -> Gen<String> {
    let pool: Vec<char> = ('\u{20}'..='\u{7e}')
        .chain(['"', '\\', '/', '\u{8}', '\u{c}', '\n', '\r', '\t'])
        .chain(['\u{0}', '\u{1f}', 'é', 'Ω', '\u{2028}', '🚗'])
        .collect();
    vecs(select(&pool), 0..12).map(|cs| cs.into_iter().collect())
}

/// Arbitrary `Json` values, nesting bounded by `depth`.
fn arb_json(depth: u32) -> Gen<Json> {
    let leaf = one_of(vec![
        just(Json::Null),
        one_of(vec![just(Json::Bool(true)), just(Json::Bool(false))]),
        ints(i64::MIN..i64::MAX).map(Json::Int),
        floats(-1e9..1e9).map(Json::Float),
        arb_string().map(Json::Str),
    ]);
    if depth == 0 {
        return leaf;
    }
    let inner = arb_json(depth - 1);
    one_of(vec![
        leaf,
        vecs(inner.clone(), 0..4).map(Json::Arr),
        vecs(tuple2(arb_string(), inner), 0..4).map(Json::Obj),
    ])
}

#[test]
fn render_parse_round_trips() {
    Check::new("ser::render_parse_round_trips").cases(400).run(&arb_json(3), |v| {
        let text = v.render().expect("finite values render");
        let back = Json::parse(&text).expect("rendered JSON parses");
        assert_eq!(&back, v, "text was {text}");
        // Rendering is a pure function: re-render is identical.
        assert_eq!(back.render().expect("renders"), text);
    });
}

#[test]
fn escaped_strings_round_trip() {
    Check::new("ser::escaped_strings_round_trip").cases(400).run(&arb_string(), |s| {
        let v = Json::Str(s.clone());
        let text = v.render().expect("strings render");
        // The payload between the quotes must be pure ASCII-printable or
        // escape sequences — never raw control characters.
        assert!(
            !text.chars().any(|c| (c as u32) < 0x20),
            "raw control char in {text:?}"
        );
        assert_eq!(Json::parse(&text).expect("parses"), v);
    });
}

#[test]
fn non_finite_floats_are_rejected() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::Float(bad).render(), Err(JsonError::NonFiniteFloat));
        // Also when buried inside a structure.
        let nested = Json::Arr(vec![Json::Obj(vec![("x".into(), Json::Float(bad))])]);
        assert_eq!(nested.render(), Err(JsonError::NonFiniteFloat));
    }
    // And the parser refuses the non-standard spellings.
    for text in ["NaN", "Infinity", "-Infinity", "[nan]"] {
        assert!(Json::parse(text).is_err(), "{text} must not parse");
    }
}

#[test]
fn deep_nesting_round_trips() {
    // A comb of alternating arrays and objects 64 levels deep.
    let mut v = Json::Int(1);
    for i in 0..64 {
        v = if i % 2 == 0 {
            Json::Arr(vec![v])
        } else {
            Json::Obj(vec![("k".into(), v)])
        };
    }
    let text = v.render().expect("renders");
    assert_eq!(Json::parse(&text).expect("parses"), v);
}
