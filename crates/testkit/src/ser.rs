//! A small JSON model: value enum, serializer with escaping, and a
//! recursive-descent parser, plus the [`ToJson`]/[`FromJson`] trait
//! pair that replaces derive-based serialization across the workspace.
//!
//! Design points:
//!
//! * Integers and floats are distinct ([`Json::Int`] vs
//!   [`Json::Float`]): a number renders with a decimal point or
//!   exponent iff it is a float, so values round-trip without loss
//!   (`u64`/`i64` ticks and ids never pass through an `f64`).
//! * Non-finite floats are rejected at render time (JSON has no
//!   `NaN`/`Infinity`), and the parser rejects them symmetrically.
//! * Objects preserve insertion order (`Vec` of pairs), so rendering
//!   is deterministic.
//!
//! Enum representation mirrors the externally-tagged convention:
//! a unit variant is `"Name"`, a payload variant is
//! `{"Name": <payload>}` (single payload inline, multiple as an
//! array, named fields as an object).  The [`json_struct!`](crate::json_struct) and
//! [`json_enum!`](crate::json_enum) macros generate these impls for plain structs and
//! enums; types with invariants (normalization, skipped fields) write
//! the impls by hand.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part, e.g. `42`.
    Int(i64),
    /// A number with a fractional part or exponent, e.g. `2.5`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

/// Errors from rendering, parsing, or decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Rendering hit a non-finite float.
    NonFiniteFloat,
    /// Parse error with byte offset.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// A decoded value did not have the expected shape.
    Decode(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::NonFiniteFloat => {
                write!(f, "cannot serialize a non-finite float as JSON")
            }
            JsonError::Parse { message, offset } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            JsonError::Decode(m) => write!(f, "JSON decode error: {m}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Field lookup on an object; errors on non-objects and missing
    /// keys.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::Decode(format!("missing field `{name}`"))),
            other => Err(JsonError::Decode(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array; errors on non-arrays.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(JsonError::Decode(format!("expected array, got {}", other.kind()))),
        }
    }

    /// A short name for the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "int",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    // -- rendering ---------------------------------------------------------

    /// Renders to compact JSON text.  Errors on non-finite floats.
    pub fn render(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.render_into(&mut out)?;
        Ok(out)
    }

    fn render_into(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                out.push_str(&v.to_string());
            }
            Json::Float(v) => {
                if !v.is_finite() {
                    return Err(JsonError::NonFiniteFloat);
                }
                // `{:?}` prints the shortest representation that
                // round-trips, always including `.0` for integral
                // floats — exactly the property that keeps Float and
                // Int distinguishable in the text.
                let s = format!("{v:?}");
                out.push_str(&s);
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out)?;
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    // -- parsing -----------------------------------------------------------

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::Parse { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let v = match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }?;
        self.depth -= 1;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after `.`"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            // Integer literal out of i64 range: fall through to float.
        }
        let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !v.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Float(v))
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson
// ---------------------------------------------------------------------------

/// Conversion into the JSON model.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from the JSON model.
pub trait FromJson: Sized {
    /// Decodes a value, validating shape and invariants.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

/// Serializes a value to compact JSON text.
pub fn to_json_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    value.to_json().render()
}

/// Parses JSON text and decodes it into `T`.
pub fn from_json_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
impl FromJson for Json {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(j.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::Decode(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                match j {
                    Json::Int(v) => <$t>::try_from(*v).map_err(|_| {
                        JsonError::Decode(format!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))
                    }),
                    other => Err(JsonError::Decode(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )+};
}
impl_json_int!(i8, i16, i32, i64, u8, u16, u32, usize);

// `u64` ticks and ids must survive even above i64::MAX; values that
// large render as their decimal digits via a checked cast.
impl ToJson for u64 {
    fn to_json(&self) -> Json {
        match i64::try_from(*self) {
            Ok(v) => Json::Int(v),
            // Out of i64 range: keep the exact digits in a string.
            Err(_) => Json::Str(self.to_string()),
        }
    }
}
impl FromJson for u64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Int(v) => u64::try_from(*v)
                .map_err(|_| JsonError::Decode(format!("integer {v} is negative"))),
            Json::Str(s) => s
                .parse()
                .map_err(|_| JsonError::Decode(format!("bad u64 string `{s}`"))),
            other => Err(JsonError::Decode(format!("expected integer, got {}", other.kind()))),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}
impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Float(v) => Ok(*v),
            Json::Int(v) => Ok(*v as f64),
            other => Err(JsonError::Decode(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::Decode(format!("expected string, got {}", other.kind()))),
        }
    }
}
impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}
impl<T: FromJson> FromJson for Box<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        T::from_json(j).map(Box::new)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            arr => Err(JsonError::Decode(format!("expected pair, got {} elements", arr.len()))),
        }
    }
}

/// Map keys encodable as JSON object keys.
pub trait JsonKey: Ord + Sized {
    /// The key's string form.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(s: &str) -> Result<Self, JsonError>;
}
impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, JsonError> {
        Ok(s.to_owned())
    }
}
impl JsonKey for u64 {
    fn to_key(&self) -> String {
        self.to_string()
    }
    fn from_key(s: &str) -> Result<Self, JsonError> {
        s.parse().map_err(|_| JsonError::Decode(format!("bad numeric key `{s}`")))
    }
}

impl<K: JsonKey, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.to_key(), v.to_json())).collect())
    }
}
impl<K: JsonKey, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json(v)?)))
                .collect(),
            other => Err(JsonError::Decode(format!("expected object, got {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Derive-replacement macros
// ---------------------------------------------------------------------------

/// Generates [`ToJson`]/[`FromJson`] for a struct with named fields:
/// `json_struct!(Point { x, y });`.  Invoke inside the defining module
/// so private fields are reachable.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ser::ToJson for $ty {
            fn to_json(&self) -> $crate::ser::Json {
                $crate::ser::Json::Obj(vec![
                    $( (stringify!($field).to_owned(),
                        $crate::ser::ToJson::to_json(&self.$field)) ),+
                ])
            }
        }
        impl $crate::ser::FromJson for $ty {
            fn from_json(j: &$crate::ser::Json) -> Result<Self, $crate::ser::JsonError> {
                Ok($ty {
                    $( $field: $crate::ser::FromJson::from_json(
                        j.field(stringify!($field))?)? ),+
                })
            }
        }
    };
}

/// Generates [`ToJson`]/[`FromJson`] for an enum in the
/// externally-tagged representation.  Unit variants are written bare,
/// tuple variants list binder names, struct variants list field names:
///
/// ```ignore
/// json_enum!(Shape {
///     Empty,
///     Circle(radius),
///     Segment(from, to),
///     Rect { w, h },
/// });
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident $(( $($tuple:ident),+ ))? $({ $($field:ident),+ })?),+ $(,)? }) => {
        impl $crate::ser::ToJson for $ty {
            fn to_json(&self) -> $crate::ser::Json {
                match self {
                    $(
                        $ty::$variant $(( $($tuple),+ ))? $({ $($field),+ })? => {
                            $crate::json_enum!(@ser $variant $(( $($tuple),+ ))? $({ $($field),+ })?)
                        }
                    )+
                }
            }
        }
        impl $crate::ser::FromJson for $ty {
            fn from_json(j: &$crate::ser::Json) -> Result<Self, $crate::ser::JsonError> {
                match j {
                    $crate::ser::Json::Str(s) => {
                        $( $crate::json_enum!(@from_str $ty $variant s $(( $($tuple),+ ))? $({ $($field),+ })?); )+
                        Err($crate::ser::JsonError::Decode(format!(
                            "unknown {} variant `{s}`", stringify!($ty)
                        )))
                    }
                    $crate::ser::Json::Obj(entries) if entries.len() == 1 => {
                        let (key, payload) = &entries[0];
                        $( $crate::json_enum!(@from_obj $ty $variant key payload $(( $($tuple),+ ))? $({ $($field),+ })?); )+
                        Err($crate::ser::JsonError::Decode(format!(
                            "unknown {} variant `{key}`", stringify!($ty)
                        )))
                    }
                    other => Err($crate::ser::JsonError::Decode(format!(
                        "expected {} (string or single-key object), got {}",
                        stringify!($ty), other.kind()
                    ))),
                }
            }
        }
    };

    // --- serialization arms ------------------------------------------------
    (@ser $variant:ident) => {
        $crate::ser::Json::Str(stringify!($variant).to_owned())
    };
    (@ser $variant:ident ($single:ident)) => {
        $crate::ser::Json::Obj(vec![(
            stringify!($variant).to_owned(),
            $crate::ser::ToJson::to_json($single),
        )])
    };
    (@ser $variant:ident ($($tuple:ident),+)) => {
        $crate::ser::Json::Obj(vec![(
            stringify!($variant).to_owned(),
            $crate::ser::Json::Arr(vec![
                $( $crate::ser::ToJson::to_json($tuple) ),+
            ]),
        )])
    };
    (@ser $variant:ident { $($field:ident),+ }) => {
        $crate::ser::Json::Obj(vec![(
            stringify!($variant).to_owned(),
            $crate::ser::Json::Obj(vec![
                $( (stringify!($field).to_owned(),
                    $crate::ser::ToJson::to_json($field)) ),+
            ]),
        )])
    };

    // --- string-form decoding (unit variants only) -------------------------
    (@from_str $ty:ident $variant:ident $s:ident) => {
        if $s == stringify!($variant) {
            return Ok($ty::$variant);
        }
    };
    (@from_str $ty:ident $variant:ident $s:ident ($($tuple:ident),+)) => {};
    (@from_str $ty:ident $variant:ident $s:ident { $($field:ident),+ }) => {};

    // --- object-form decoding (payload variants only) ----------------------
    (@from_obj $ty:ident $variant:ident $key:ident $payload:ident) => {};
    (@from_obj $ty:ident $variant:ident $key:ident $payload:ident ($single:ident)) => {
        if $key == stringify!($variant) {
            return Ok($ty::$variant($crate::ser::FromJson::from_json($payload)?));
        }
    };
    (@from_obj $ty:ident $variant:ident $key:ident $payload:ident ($($tuple:ident),+)) => {
        if $key == stringify!($variant) {
            let arr = $payload.as_arr()?;
            let mut it = arr.iter();
            $(
                let $tuple = $crate::ser::FromJson::from_json(it.next().ok_or_else(|| {
                    $crate::ser::JsonError::Decode(format!(
                        "too few elements for {}::{}",
                        stringify!($ty), stringify!($variant)
                    ))
                })?)?;
            )+
            if it.next().is_some() {
                return Err($crate::ser::JsonError::Decode(format!(
                    "too many elements for {}::{}",
                    stringify!($ty), stringify!($variant)
                )));
            }
            return Ok($ty::$variant($($tuple),+));
        }
    };
    (@from_obj $ty:ident $variant:ident $key:ident $payload:ident { $($field:ident),+ }) => {
        if $key == stringify!($variant) {
            return Ok($ty::$variant {
                $( $field: $crate::ser::FromJson::from_json(
                    $payload.field(stringify!($field))?)? ),+
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(j: &Json) -> Json {
        Json::parse(&j.render().unwrap()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(2.5),
            Json::Float(-0.0),
            Json::Float(1e300),
            Json::Float(0.1),
            Json::Str(String::new()),
            Json::Str("héllo \"world\"\n\t\\ \u{1F600} \u{7}".into()),
        ] {
            assert_eq!(rt(&j), j, "{j:?}");
        }
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(Json::Int(2).render().unwrap(), "2");
        assert_eq!(Json::Float(2.0).render().unwrap(), "2.0");
        assert_eq!(Json::parse("2").unwrap(), Json::Int(2));
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::parse("2e0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn nested_structures_round_trip() {
        let j = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Null])),
            ("b".into(), Json::Obj(vec![("x".into(), Json::Float(0.5))])),
            ("".into(), Json::Str("empty key".into())),
        ]);
        assert_eq!(rt(&j), j);
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Float(v).render(), Err(JsonError::NonFiniteFloat));
        }
        assert!(Json::parse("1e999").is_err());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "", "tru", "[1,", "{\"a\"}", "{a:1}", "\"\\q\"", "01x", "1 2",
            "\"unterminated", "[1],", "{\"a\":}", "-", "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("Aé\u{1F600}".into())
        );
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn derived_struct_and_enum_round_trip() {
        #[derive(Debug, Clone, PartialEq)]
        struct P {
            x: f64,
            label: String,
        }
        json_struct!(P { x, label });

        #[derive(Debug, Clone, PartialEq)]
        enum E {
            Unit,
            One(f64),
            Pair(i64, String),
            Named { a: u64, b: bool },
        }
        json_enum!(E {
            Unit,
            One(v),
            Pair(a, b),
            Named { a, b },
        });

        let p = P { x: -1.5, label: "hi \"there\"".into() };
        let text = to_json_string(&p).unwrap();
        assert_eq!(from_json_str::<P>(&text).unwrap(), p);

        for e in [
            E::Unit,
            E::One(0.25),
            E::Pair(-7, "x".into()),
            E::Named { a: 9, b: true },
        ] {
            let text = to_json_string(&e).unwrap();
            assert_eq!(from_json_str::<E>(&text).unwrap(), e, "{text}");
        }
        assert_eq!(to_json_string(&E::Unit).unwrap(), "\"Unit\"");
        assert_eq!(to_json_string(&E::One(0.5)).unwrap(), "{\"One\":0.5}");
        assert!(from_json_str::<E>("\"Nope\"").is_err());
        assert!(from_json_str::<E>("{\"Pair\":[1]}").is_err());
        assert!(from_json_str::<E>("{\"Pair\":[1,\"a\",2]}").is_err());
    }

    #[test]
    fn u64_beyond_i64_survives() {
        let v = u64::MAX - 3;
        let text = to_json_string(&v).unwrap();
        assert_eq!(from_json_str::<u64>(&text).unwrap(), v);
    }

    #[test]
    fn maps_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(3u64, "three".to_owned());
        m.insert(7, "seven".to_owned());
        let text = to_json_string(&m).unwrap();
        assert_eq!(from_json_str::<BTreeMap<u64, String>>(&text).unwrap(), m);
    }
}
