//! Deterministic, dependency-free hashing: FNV-1a (64-bit).
//!
//! Two consumers in the workspace need a stable byte hash that never
//! changes across platforms, versions, or process runs (unlike
//! `std::collections::hash_map::DefaultHasher`, whose algorithm is
//! unspecified):
//!
//! * the write-ahead log (`most-core::wal`) checksums every appended
//!   record so recovery can detect torn or corrupted entries;
//! * `Database::fingerprint` reduces a canonical-JSON snapshot to one
//!   `u64` so crash-recovery and replica-convergence oracles can compare
//!   whole states cheaply.
//!
//! FNV-1a is not cryptographic — it guards against *accidental*
//! corruption (torn writes, bit rot, truncation), which is the WAL's
//! threat model, with good avalanche behaviour on short inputs.

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn single_bit_flips_change_the_hash() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let h0 = fnv1a64(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a64(&flipped), h0, "flip at byte {i} bit {bit} collided");
            }
        }
    }
}
