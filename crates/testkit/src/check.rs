//! A minimal property-testing harness.
//!
//! Generators produce lazily-shrinkable rose trees ([`Tree`]); on a
//! failing case the runner walks the tree greedily toward a minimal
//! counterexample.  Every case is derived deterministically from a
//! per-test base seed, so a failure is reproducible from the single
//! `u64` printed in the panic message, and past failures are replayed
//! from a one-seed-per-line regression file before any novel cases run.
//!
//! ```
//! use most_testkit::check::{ints, vecs, Check};
//!
//! Check::new("sum_is_monotone").run(
//!     &vecs(ints(0i64..100), 0..10),
//!     |xs: &Vec<i64>| {
//!         let s: i64 = xs.iter().sum();
//!         assert!(s >= xs.iter().copied().max().unwrap_or(0));
//!     },
//! );
//! ```
//!
//! The number of cases per property defaults to 64 and can be raised
//! globally with `MOST_CHECK_CASES=1000`; `MOST_CHECK_SEED` overrides
//! the base seed for exploratory fuzzing.

use crate::rng::Rng;
use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Once;

// ---------------------------------------------------------------------------
// Shrink trees
// ---------------------------------------------------------------------------

/// A value plus a lazy list of simpler candidate values (a rose tree).
///
/// Children are ordered most-aggressive first; the runner takes the
/// first failing child repeatedly (greedy descent).
pub struct Tree<T: 'static> {
    /// The generated value.
    pub value: T,
    children: Rc<dyn Fn() -> Vec<Tree<T>>>,
}

impl<T: Clone + 'static> Clone for Tree<T> {
    fn clone(&self) -> Self {
        Tree { value: self.value.clone(), children: Rc::clone(&self.children) }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// A tree with no shrinks.
    pub fn leaf(value: T) -> Self {
        Tree { value, children: Rc::new(Vec::new) }
    }

    /// A tree with the given lazy shrink candidates.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree { value, children: Rc::new(children) }
    }

    /// The shrink candidates (computed on demand).
    pub fn children(&self) -> Vec<Tree<T>> {
        (self.children)()
    }

    /// Maps the whole tree through a pure function, preserving the
    /// shrink structure (this is what makes shrinking compose through
    /// [`Gen::map`]).
    pub fn map<U: Clone + 'static>(&self, f: &Rc<dyn Fn(&T) -> U>) -> Tree<U> {
        let value = f(&self.value);
        let inner = self.clone();
        let f = Rc::clone(f);
        Tree::with_children(value, move || {
            inner.children().iter().map(|t| t.map(&f)).collect()
        })
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Anything that can generate a shrinkable random value.
pub trait Generator {
    /// The type of generated values.
    type Value: Clone + Debug + 'static;
    /// Draws one value (with its shrink tree) from the generator.
    fn tree(&self, rng: &mut Rng) -> Tree<Self::Value>;
}

/// The boxed draw function inside a [`Gen`].
type DrawFn<T> = dyn Fn(&mut Rng) -> Tree<T>;

/// A boxed, cloneable generator — the concrete type every combinator
/// returns.
pub struct Gen<T: 'static> {
    f: Rc<DrawFn<T>>,
}

impl<T: 'static> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: Clone + Debug + 'static> Generator for Gen<T> {
    type Value = T;
    fn tree(&self, rng: &mut Rng) -> Tree<T> {
        (self.f)(rng)
    }
}

impl<T: Clone + Debug + 'static> Gen<T> {
    /// Wraps a raw tree-producing closure.
    pub fn new(f: impl Fn(&mut Rng) -> Tree<T> + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Applies a pure function to every generated value; shrinking maps
    /// through (the underlying value is shrunk, then re-mapped).
    pub fn map<U: Clone + Debug + 'static>(&self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let inner = self.clone();
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(move |v: &T| f(v.clone()));
        Gen::new(move |rng| inner.tree(rng).map(&f))
    }
}

/// The constant generator.
pub fn just<T: Clone + Debug + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| Tree::leaf(value.clone()))
}

/// Booleans (shrink toward `false`).
pub fn bools() -> Gen<bool> {
    Gen::new(|rng| {
        let v = rng.next_u64() & 1 == 1;
        Tree::with_children(v, move || if v { vec![Tree::leaf(false)] } else { vec![] })
    })
}

/// Integer types usable with [`ints`].
pub trait CheckInt: Copy + Debug + 'static {
    /// Widens to the common sampling domain.
    fn to_i128(self) -> i128;
    /// Narrows back (values stay within the original range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_check_int {
    ($($t:ty),+) => {$(
        impl CheckInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )+};
}
impl_check_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Bounds accepted by [`ints`]: `lo..hi` or `lo..=hi`.
pub trait IntBounds<T> {
    /// The inclusive `(lo, hi)` pair.
    fn closed(self) -> (T, T);
}
impl<T: CheckInt> IntBounds<T> for core::ops::Range<T> {
    fn closed(self) -> (T, T) {
        let lo = self.start.to_i128();
        let hi = self.end.to_i128() - 1;
        assert!(lo <= hi, "empty range");
        (T::from_i128(lo), T::from_i128(hi))
    }
}
impl<T: CheckInt> IntBounds<T> for core::ops::RangeInclusive<T> {
    fn closed(self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

fn int_shrinks(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let c = v - delta;
        if c != lo {
            out.push(c);
        }
        delta /= 2;
    }
    out.dedup();
    out
}

fn int_tree<T: CheckInt>(lo: i128, v: i128) -> Tree<T> {
    Tree::with_children(T::from_i128(v), move || {
        int_shrinks(lo, v).into_iter().map(|c| int_tree(lo, c)).collect()
    })
}

/// Uniform integers over a range, shrinking toward the low bound.
pub fn ints<T: CheckInt, B: IntBounds<T>>(bounds: B) -> Gen<T> {
    let (lo, hi) = bounds.closed();
    let (lo, hi) = (lo.to_i128(), hi.to_i128());
    assert!(lo <= hi, "empty range");
    Gen::new(move |rng| {
        let span = (hi - lo) as u64 as u128;
        let v = lo + rng.below(span as u64 + 1) as i128;
        int_tree(lo, v)
    })
}

/// Uniform `f64` over `[lo, hi)`, shrinking toward `lo` (then halving).
pub fn floats(range: core::ops::Range<f64>) -> Gen<f64> {
    let (lo, hi) = (range.start, range.end);
    assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad float range");
    fn tree(lo: f64, v: f64) -> Tree<f64> {
        Tree::with_children(v, move || {
            let mut out = Vec::new();
            if v != lo {
                out.push(tree(lo, lo));
                let mid = lo + (v - lo) / 2.0;
                if mid != lo && mid != v {
                    out.push(tree(lo, mid));
                }
            }
            out
        })
    }
    Gen::new(move |rng| tree(lo, rng.random_range(lo..hi)))
}

/// A uniformly chosen branch.  Shrinking stays within the chosen
/// branch's own shrink tree.
pub fn one_of<T: Clone + Debug + 'static>(branches: Vec<Gen<T>>) -> Gen<T> {
    assert!(!branches.is_empty(), "one_of needs at least one branch");
    Gen::new(move |rng| {
        let i = rng.below(branches.len() as u64) as usize;
        branches[i].tree(rng)
    })
}

/// One of the given constants, shrinking toward the first.
pub fn select<T: Clone + Debug + 'static>(options: &[T]) -> Gen<T> {
    let options = options.to_vec();
    assert!(!options.is_empty(), "select needs at least one option");
    Gen::new(move |rng| {
        let i = rng.below(options.len() as u64) as usize;
        let options = options.clone();
        fn tree<T: Clone + 'static>(options: Vec<T>, i: usize) -> Tree<T> {
            Tree::with_children(options[i].clone(), move || {
                (0..i).map(|j| tree(options.clone(), j)).collect()
            })
        }
        tree(options, i)
    })
}

fn vec_tree<T: Clone + 'static>(elems: Vec<Tree<T>>, min_len: usize) -> Tree<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|t| t.value.clone()).collect();
    Tree::with_children(value, move || {
        let n = elems.len();
        let mut out = Vec::new();
        // Structural shrinks: drop the front/back half, then single
        // elements.
        if n > min_len {
            let half = n / 2;
            if half > 0 && n - half >= min_len {
                out.push(vec_tree(elems[half..].to_vec(), min_len));
                out.push(vec_tree(elems[..n - half].to_vec(), min_len));
            }
            if n > min_len {
                for i in 0..n {
                    let mut rest = elems.clone();
                    rest.remove(i);
                    out.push(vec_tree(rest, min_len));
                }
            }
        }
        // Element shrinks.
        for i in 0..n {
            for child in elems[i].children() {
                let mut next = elems.clone();
                next[i] = child;
                out.push(vec_tree(next, min_len));
            }
        }
        out
    })
}

/// Vectors with a length drawn from `len` and elements from `elem`.
/// Shrinks by removing elements (down to the minimum length) and by
/// shrinking elements.
pub fn vecs<T: Clone + Debug + 'static>(
    elem: Gen<T>,
    len: core::ops::Range<usize>,
) -> Gen<Vec<T>> {
    assert!(len.start < len.end, "empty length range");
    let min_len = len.start;
    Gen::new(move |rng| {
        let n = rng.random_range(len.clone());
        let elems: Vec<Tree<T>> = (0..n).map(|_| elem.tree(rng)).collect();
        vec_tree(elems, min_len)
    })
}

/// A pair of independent draws; each side shrinks independently.
pub fn tuple2<A, B>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)>
where
    A: Clone + Debug + 'static,
    B: Clone + Debug + 'static,
{
    Gen::new(move |rng| {
        fn combine<A: Clone + 'static, B: Clone + 'static>(
            ta: Tree<A>,
            tb: Tree<B>,
        ) -> Tree<(A, B)> {
            let value = (ta.value.clone(), tb.value.clone());
            Tree::with_children(value, move || {
                let mut out: Vec<Tree<(A, B)>> = ta
                    .children()
                    .into_iter()
                    .map(|ca| combine(ca, tb.clone()))
                    .collect();
                out.extend(tb.children().into_iter().map(|cb| combine(ta.clone(), cb)));
                out
            })
        }
        combine(a.tree(rng), b.tree(rng))
    })
}

/// A triple of independent draws.
pub fn tuple3<A, B, C>(a: Gen<A>, b: Gen<B>, c: Gen<C>) -> Gen<(A, B, C)>
where
    A: Clone + Debug + 'static,
    B: Clone + Debug + 'static,
    C: Clone + Debug + 'static,
{
    tuple2(tuple2(a, b), c).map(|((a, b), c)| (a, b, c))
}

/// A quadruple of independent draws.
pub fn tuple4<A, B, C, D>(a: Gen<A>, b: Gen<B>, c: Gen<C>, d: Gen<D>) -> Gen<(A, B, C, D)>
where
    A: Clone + Debug + 'static,
    B: Clone + Debug + 'static,
    C: Clone + Debug + 'static,
    D: Clone + Debug + 'static,
{
    tuple2(tuple2(a, b), tuple2(c, d)).map(|((a, b), (c, d))| (a, b, c, d))
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

thread_local! {
    static SHRINKING: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SHRINKING.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn run_case<T>(prop: &impl Fn(&T), value: &T) -> Result<(), String> {
    SHRINKING.with(|c| c.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    SHRINKING.with(|c| c.set(false));
    outcome.map_err(panic_message)
}

/// FNV-1a, used to derive a stable per-test base seed from its label.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Default number of cases when neither [`Check::cases`] nor
/// `MOST_CHECK_CASES` is set.
pub const DEFAULT_CASES: usize = 64;

/// Configuration and entry point for one property.
pub struct Check {
    label: String,
    cases: usize,
    base_seed: u64,
    regressions: Option<PathBuf>,
}

impl Check {
    /// A property named `label`.  The label determines the default seed
    /// stream, so distinct properties explore distinct cases.
    pub fn new(label: impl Into<String>) -> Self {
        let label = label.into();
        let cases = std::env::var("MOST_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let base_seed = std::env::var("MOST_CHECK_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fnv1a(label.as_bytes()));
        Check { label, cases, base_seed, regressions: None }
    }

    /// Overrides the case count (still superseded by
    /// `MOST_CHECK_CASES`).
    pub fn cases(mut self, n: usize) -> Self {
        if std::env::var("MOST_CHECK_CASES").is_err() {
            self.cases = n;
        }
        self
    }

    /// Overrides the base seed (still superseded by `MOST_CHECK_SEED`).
    pub fn seed(mut self, seed: u64) -> Self {
        if std::env::var("MOST_CHECK_SEED").is_err() {
            self.base_seed = seed;
        }
        self
    }

    /// Replays seeds from a regression file (one decimal `u64` per
    /// line, `#` comments) before generating novel cases, and appends
    /// the seed of any new failure to the file.
    pub fn regressions(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }

    /// Runs the property: every regression seed, then `cases` novel
    /// cases.  Panics with the minimal shrunk counterexample, its seed
    /// and the original assertion message on failure.
    pub fn run<G: Generator>(self, gen: &G, prop: impl Fn(&G::Value)) {
        install_quiet_hook();
        let regression_seeds = self.load_regression_seeds();
        let novel = (0..self.cases).map(|i| {
            // Golden-ratio stepping through SplitMix64 gives decorrelated
            // per-case seeds from the single base seed.
            crate::rng::SplitMix64::new(self.base_seed.wrapping_add(i as u64)).next_u64()
        });
        for (from_regression, seed) in regression_seeds
            .iter()
            .map(|&s| (true, s))
            .chain(novel.map(|s| (false, s)))
        {
            let mut rng = Rng::seed_from_u64(seed);
            let tree = gen.tree(&mut rng);
            if let Err(first_msg) = run_case(&prop, &tree.value) {
                let (minimal, msg, steps) = self.shrink(tree, first_msg, &prop);
                if !from_regression {
                    self.record_regression(seed);
                }
                panic!(
                    "[{}] property failed (seed {}, {} shrink steps{})\n\
                     minimal counterexample: {:?}\n\
                     assertion: {}",
                    self.label,
                    seed,
                    steps,
                    if from_regression { ", from regression file" } else { "" },
                    minimal,
                    msg,
                );
            }
        }
    }

    fn shrink<T: Clone + Debug + 'static>(
        &self,
        tree: Tree<T>,
        first_msg: String,
        prop: &impl Fn(&T),
    ) -> (T, String, usize) {
        let mut current = tree;
        let mut msg = first_msg;
        let mut steps = 0usize;
        let mut evaluations = 0usize;
        'outer: loop {
            for child in current.children() {
                evaluations += 1;
                if evaluations > 4096 {
                    break 'outer;
                }
                if let Err(m) = run_case(prop, &child.value) {
                    current = child;
                    msg = m;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (current.value, msg, steps)
    }

    fn load_regression_seeds(&self) -> Vec<u64> {
        let Some(path) = &self.regressions else { return Vec::new() };
        let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| l.split_whitespace().next())
            .filter_map(|l| l.parse().ok())
            .collect()
    }

    fn record_regression(&self, seed: u64) {
        let Some(path) = &self.regressions else { return };
        use std::io::Write as _;
        if let Ok(mut f) =
            std::fs::OpenOptions::new().create(true).append(true).open(path)
        {
            let _ = writeln!(f, "{seed} # recorded failure in {}", self.label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        Check::new("trivial").cases(10).run(&ints(0i64..100), |_| {
            count.set(count.get() + 1);
        });
        assert!(count.get() >= 10);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        let caught = panic::catch_unwind(|| {
            SHRINKING.with(|c| c.set(false));
            Check::new("gt_10").cases(200).run(&ints(0i64..1000), |&v| {
                assert!(v <= 10, "value {v} exceeds 10");
            });
        });
        let msg = panic_message(caught.expect_err("must fail"));
        // Greedy descent must land on the boundary counterexample.
        assert!(msg.contains("minimal counterexample: 11"), "{msg}");
        assert!(msg.contains("seed "), "{msg}");
    }

    #[test]
    fn vec_shrinking_removes_irrelevant_elements() {
        let caught = panic::catch_unwind(|| {
            SHRINKING.with(|c| c.set(false));
            Check::new("no_big_elem").cases(200).run(
                &vecs(ints(0i64..100), 0..20),
                |xs: &Vec<i64>| assert!(xs.iter().all(|&x| x < 90)),
            );
        });
        let msg = panic_message(caught.expect_err("must fail"));
        assert!(msg.contains("minimal counterexample: [90]"), "{msg}");
    }

    #[test]
    fn mapped_generators_still_shrink() {
        let caught = panic::catch_unwind(|| {
            SHRINKING.with(|c| c.set(false));
            let even = ints(0i64..500).map(|v| v * 2);
            Check::new("small_even").cases(200).run(&even, |&v| assert!(v < 100));
        });
        let msg = panic_message(caught.expect_err("must fail"));
        assert!(msg.contains("minimal counterexample: 100"), "{msg}");
    }

    #[test]
    fn same_label_same_cases() {
        let a = std::cell::RefCell::new(Vec::new());
        Check::new("stable").cases(16).run(&ints(0i64..1_000_000), |&v| a.borrow_mut().push(v));
        let b = std::cell::RefCell::new(Vec::new());
        Check::new("stable").cases(16).run(&ints(0i64..1_000_000), |&v| b.borrow_mut().push(v));
        assert_eq!(a, b);
        assert_eq!(a.borrow().len(), 16);
    }

    #[test]
    fn tuples_shrink_both_sides() {
        let caught = panic::catch_unwind(|| {
            SHRINKING.with(|c| c.set(false));
            let g = tuple2(ints(0i64..50), ints(0i64..50));
            Check::new("pair_sum").cases(300).run(&g, |&(a, b)| assert!(a + b < 60));
        });
        let msg = panic_message(caught.expect_err("must fail"));
        // Both components shrink; the sum lands exactly on the boundary.
        assert!(msg.contains("(49, 11)") || msg.contains("(11, 49)") || msg.contains("60"), "{msg}");
    }

    #[test]
    fn regression_seeds_replay_first() {
        let dir = std::env::temp_dir().join("most_testkit_regression_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("seeds.txt");
        std::fs::write(&path, "# comment\n12345\n67890 # inline note\n").unwrap();
        let seen = std::cell::RefCell::new(Vec::new());
        Check::new("replay")
            .cases(1)
            .regressions(&path)
            .run(&ints(0i64..10), |&v| {
                seen.borrow_mut().push(v);
            });
        // Two regression cases plus one novel case.
        assert_eq!(seen.borrow().len(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
