//! `most-testkit`: the zero-dependency substrate under the MOST
//! workspace.
//!
//! Four modules replace what used to be six external crates, making
//! the whole workspace build and test offline:
//!
//! * [`rng`] — deterministic seedable PRNG (SplitMix64 + xoshiro256++)
//!   with range, float, shuffle and sampling helpers, replacing `rand`.
//! * [`check`] — a property-testing harness with shrinking and
//!   regression-seed files, replacing `proptest`.
//! * [`ser`] — a JSON value model with a serializer, parser, and the
//!   [`ser::ToJson`]/[`ser::FromJson`] trait pair, replacing
//!   `serde`/`serde_json`.
//! * [`hash`] — stable FNV-1a 64-bit hashing for WAL record checksums
//!   and database fingerprints (never platform- or run-dependent).
//!
//! Everything is deterministic from explicit seeds: a benchmark or
//! workload run with the same seed produces byte-identical output.

#![warn(missing_docs)]

pub mod check;
pub mod hash;
pub mod rng;
pub mod ser;

pub use hash::{fnv1a64, Fnv64};
pub use rng::{Rng, SplitMix64};
pub use ser::{from_json_str, to_json_string, FromJson, Json, JsonError, ToJson};
