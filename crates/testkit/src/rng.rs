//! Deterministic pseudo-random numbers for workloads, benchmarks and tests.
//!
//! Two generators, both seedable, `Send`, and free of global state:
//!
//! * [`SplitMix64`] — the 64-bit mixer of Steele, Lea & Flood.  Used to
//!   expand a single `u64` seed into larger state and as the reference
//!   generator pinned by the determinism tests.
//! * [`Rng`] — xoshiro256++ (Blackman & Vigna), the workhorse generator
//!   behind every workload, benchmark and property test in the workspace.
//!
//! # Stream splitting for parallel workloads
//!
//! A parallel workload must never hand the *same* generator to two
//! workers (the streams would be identical) nor seed workers `0, 1, 2,
//! ...` directly (low-entropy seeds correlate).  Instead, derive one
//! child stream per worker from a parent generator:
//!
//! ```
//! use most_testkit::rng::Rng;
//! let mut parent = Rng::seed_from_u64(42);
//! let streams: Vec<Rng> = (0..4).map(|_| parent.split()).collect();
//! ```
//!
//! [`Rng::split`] draws a fresh 64-bit value from the parent and expands
//! it through SplitMix64 into a new 256-bit state, so child streams are
//! statistically independent of each other and of the parent's
//! continuation, while the whole tree remains a pure function of the
//! root seed.

/// The SplitMix64 generator: a strong 64-bit mixer with a 64-bit state.
///
/// Passes through every 64-bit value exactly once over its 2^64 period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The golden-ratio increment used by SplitMix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A generator starting from the given state.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256++ generator: 256-bit state, 64-bit outputs.
///
/// Deterministic, seedable, `Send`, no global state.  Use
/// [`Rng::seed_from_u64`] to construct and [`Rng::split`] to derive
/// independent streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng {
    /// Expands a 64-bit seed into the 256-bit state via SplitMix64 (the
    /// seeding procedure recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// The next 32-bit output (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform draw from a range, e.g. `rng.random_range(0..10)`,
    /// `rng.random_range(-4..=4)`, or `rng.random_range(0.0..1.5)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `u64` below `n` (Lemire's unbiased multiply-shift
    /// method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low < n {
                let threshold = n.wrapping_neg() % n;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }

    /// `k` distinct indices sampled uniformly from `0..n` (partial
    /// Fisher–Yates), in random order.  `k` is clamped to `n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Derives an independent child stream (see the module docs).
    pub fn split(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Ranges that [`Rng::random_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let draw = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span + 1)
                };
                (lo as $wide).wrapping_add(draw as $wide) as $t
            }
        }
    )+};
}

impl_sample_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.f64() * (self.end - self.start);
        // Guard against rounding up to the (excluded) end.
        if v >= self.end { self.start } else { v }
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-4i32..4);
            assert!((-4..4).contains(&v));
            let u = rng.random_range(0u64..=16);
            assert!(u <= 16);
            let f = rng.random_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = Rng::seed_from_u64(1);
        // Must not hang or panic on the span-overflow path.
        let _ = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_are_distinct() {
        let mut rng = Rng::seed_from_u64(9);
        let picked = rng.sample_indices(100, 10);
        assert_eq!(picked.len(), 10);
        let mut s = picked.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Rng::seed_from_u64(11);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*rng.choose(&xs).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        assert!(rng.choose::<u8>(&[]).is_none());
    }
}
