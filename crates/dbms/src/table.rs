//! Heap tables with optional primary-key hash index.

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A table: a schema plus a vector of rows, with a hash index on the
/// primary key when the schema declares one.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
    /// key value -> row index; maintained only when the schema has a key.
    key_index: HashMap<Value, usize>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Self {
        Table { schema, rows: Vec::new(), key_index: HashMap::new() }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in insertion order (minus deletions).
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Inserts a row after validating it against the schema and the primary
    /// key.
    pub fn insert(&mut self, values: Vec<Value>) -> DbResult<()> {
        self.schema.check_row(&values)?;
        if let Some(k) = self.schema.key_index() {
            let key = values[k].clone();
            if self.key_index.contains_key(&key) {
                return Err(DbError::DuplicateKey(key));
            }
            self.key_index.insert(key, self.rows.len());
        }
        self.rows.push(Tuple::new(values));
        Ok(())
    }

    /// Looks up a row by primary key.
    pub fn get_by_key(&self, key: &Value) -> Option<&Tuple> {
        self.key_index.get(key).map(|&i| &self.rows[i])
    }

    /// Updates one column of the row with the given primary key.
    pub fn update_by_key(&mut self, key: &Value, column: &str, value: Value) -> DbResult<()> {
        let col = self
            .schema
            .index_of(column)
            .ok_or_else(|| DbError::UnknownColumn(column.to_owned()))?;
        if !self.schema.columns()[col].ty.admits(&value) {
            return Err(DbError::TypeMismatch { column: column.to_owned(), value });
        }
        if Some(col) == self.schema.key_index() {
            return Err(DbError::EvalType {
                detail: "primary-key column cannot be updated in place".to_owned(),
            });
        }
        let row = *self
            .key_index
            .get(key)
            .ok_or_else(|| DbError::KeyNotFound(key.clone()))?;
        *self.rows[row]
            .get_mut(col)
            .expect("column index validated against schema") = value;
        Ok(())
    }

    /// Deletes the row with the given primary key (swap-remove; O(1)).
    pub fn delete_by_key(&mut self, key: &Value) -> DbResult<()> {
        let row = self
            .key_index
            .remove(key)
            .ok_or_else(|| DbError::KeyNotFound(key.clone()))?;
        self.rows.swap_remove(row);
        // The swapped-in row (previously last) changed position.
        if row < self.rows.len() {
            if let Some(k) = self.schema.key_index() {
                let moved_key = self.rows[row].values()[k].clone();
                self.key_index.insert(moved_key, row);
            }
        }
        Ok(())
    }

    /// Rebuilds the key index (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.key_index.clear();
        if let Some(k) = self.schema.key_index() {
            for (i, row) in self.rows.iter().enumerate() {
                self.key_index.insert(row.values()[k].clone(), i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn motels() -> Table {
        let schema = Schema::with_key(
            vec![
                ColumnDef::new("id", ColumnType::Id),
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("price", ColumnType::Float),
            ],
            "id",
        )
        .unwrap();
        Table::new(schema)
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = motels();
        t.insert(vec![Value::Id(1), "Rest Inn".into(), 79.0.into()]).unwrap();
        t.insert(vec![Value::Id(2), "Highway 6".into(), 55.0.into()]).unwrap();
        assert_eq!(t.len(), 2);
        let row = t.get_by_key(&Value::Id(2)).unwrap();
        assert_eq!(row.get(1), Some(&"Highway 6".into()));
        assert!(t.get_by_key(&Value::Id(9)).is_none());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = motels();
        t.insert(vec![Value::Id(1), "a".into(), 1.0.into()]).unwrap();
        let e = t.insert(vec![Value::Id(1), "b".into(), 2.0.into()]);
        assert!(matches!(e, Err(DbError::DuplicateKey(_))));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_column() {
        let mut t = motels();
        t.insert(vec![Value::Id(1), "a".into(), 1.0.into()]).unwrap();
        t.update_by_key(&Value::Id(1), "price", 99.0.into()).unwrap();
        assert_eq!(
            t.get_by_key(&Value::Id(1)).unwrap().get(2),
            Some(&99.0.into())
        );
        assert!(t.update_by_key(&Value::Id(1), "nope", 0.0.into()).is_err());
        assert!(t.update_by_key(&Value::Id(7), "price", 0.0.into()).is_err());
        assert!(t.update_by_key(&Value::Id(1), "id", Value::Id(2)).is_err());
        assert!(t
            .update_by_key(&Value::Id(1), "price", Value::Str("x".into()))
            .is_err());
    }

    #[test]
    fn delete_maintains_index() {
        let mut t = motels();
        for i in 0..5 {
            t.insert(vec![Value::Id(i), format!("m{i}").into(), (i as f64).into()])
                .unwrap();
        }
        t.delete_by_key(&Value::Id(1)).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.get_by_key(&Value::Id(1)).is_none());
        // The swapped row (id 4) must still be findable.
        assert_eq!(
            t.get_by_key(&Value::Id(4)).unwrap().get(1),
            Some(&"m4".into())
        );
        assert!(t.delete_by_key(&Value::Id(1)).is_err());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = motels();
        t.insert(vec![Value::Id(1), "a".into(), 1.0.into()]).unwrap();
        t.insert(vec![Value::Id(2), "b".into(), 2.0.into()]).unwrap();
        t.rebuild_index();
        assert_eq!(t.get_by_key(&Value::Id(2)).unwrap().get(1), Some(&"b".into()));
    }
}
