//! Typed runtime values with a total order.

use most_temporal::Tick;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An `f64` wrapper with total order, equality and hashing.
///
/// Relational processing needs values that can key hash maps (the FTL
/// evaluation algorithm groups tuples by instantiation) and sort
/// deterministically; raw `f64` provides neither.  Ordering follows
/// `f64::total_cmp`; equality and hashing use the bit pattern with `-0.0`
/// normalized to `0.0` so that `0.0 == -0.0` as values.
#[derive(Debug, Clone, Copy)]
pub struct F64(f64);

impl F64 {
    /// Wraps a float.
    pub fn new(v: f64) -> Self {
        F64(if v == 0.0 { 0.0 } else { v })
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL-style missing value; compares lowest.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (total-ordered).
    Float(F64),
    /// UTF-8 string.
    Str(String),
    /// A clock tick (the paper's `time` domain).
    Time(Tick),
    /// An object identifier (FTL variables range over these).
    Id(u64),
}

impl Value {
    /// Numeric view: `Int` and `Float` (and `Time`) as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.get()),
            Value::Time(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object-id view.
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Id(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Tick view.
    pub fn as_time(&self) -> Option<Tick> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Whether the value is numeric (`Int`, `Float` or `Time`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Time(_))
    }

    /// Numeric comparison when both sides are numeric, falling back to the
    /// structural total order otherwise (so `Int(1)` equals `Float(1.0)` in
    /// query-level comparisons).
    pub fn query_cmp(&self, other: &Value) -> Ordering {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.total_cmp(&b),
            _ => self.cmp(other),
        }
    }

    /// Query-level equality (numeric coercion as in [`Value::query_cmp`]).
    pub fn query_eq(&self, other: &Value) -> bool {
        self.query_cmp(other) == Ordering::Equal
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(F64::new(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Time(t) => write!(f, "t{t}"),
            Value::Id(i) => write!(f, "#{i}"),
        }
    }
}

impl most_testkit::ser::ToJson for F64 {
    fn to_json(&self) -> most_testkit::ser::Json {
        self.0.to_json()
    }
}

impl most_testkit::ser::FromJson for F64 {
    fn from_json(j: &most_testkit::ser::Json) -> Result<Self, most_testkit::ser::JsonError> {
        Ok(F64::new(f64::from_json(j)?))
    }
}

most_testkit::json_enum!(Value {
    Null,
    Bool(b),
    Int(i),
    Float(f),
    Str(s),
    Time(t),
    Id(id),
});

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn f64_total_order_and_hash() {
        assert_eq!(F64::new(0.0), F64::new(-0.0));
        assert!(F64::new(1.0) < F64::new(2.0));
        assert!(F64::new(-1.0) < F64::new(0.0));
        let mut m = HashMap::new();
        m.insert(F64::new(-0.0), 1);
        assert_eq!(m.get(&F64::new(0.0)), Some(&1));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Time(7).as_f64(), Some(7.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Id(9).as_id(), Some(9));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn query_comparison_coerces_numerics() {
        assert!(Value::Int(1).query_eq(&Value::from(1.0)));
        assert_eq!(
            Value::Int(2).query_cmp(&Value::from(10.0)),
            Ordering::Less
        );
        // Strings keep structural comparison.
        assert!(!Value::from("1").query_eq(&Value::Int(1)));
    }

    #[test]
    fn values_usable_as_hash_keys() {
        let mut m = HashMap::new();
        m.insert(Value::from(1.5), "a");
        m.insert(Value::Id(3), "b");
        assert_eq!(m.get(&Value::from(1.5)), Some(&"a"));
        assert_eq!(m.get(&Value::Id(3)), Some(&"b"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(Value::Time(4).to_string(), "t4");
        assert_eq!(Value::Id(4).to_string(), "#4");
    }
}
