//! Table schemas: named, typed columns with an optional primary key.

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Clock tick.
    Time,
    /// Object identifier.
    Id,
}

impl ColumnType {
    /// Whether `v` inhabits this type (`Null` inhabits every type).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Time, Value::Time(_))
                | (ColumnType::Id, Value::Id(_))
        )
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the schema).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef { name: name.into(), ty }
    }
}

/// An ordered list of columns with an optional primary-key column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    key: Option<usize>,
}

impl Schema {
    /// Creates a schema without a primary key.
    ///
    /// # Errors
    /// Fails when two columns share a name.
    pub fn new(columns: Vec<ColumnDef>) -> DbResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(DbError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns, key: None })
    }

    /// Creates a schema whose `key` column is a primary key.
    ///
    /// # Errors
    /// Fails on duplicate column names or an unknown key column.
    pub fn with_key(columns: Vec<ColumnDef>, key: &str) -> DbResult<Self> {
        let mut s = Schema::new(columns)?;
        let idx = s
            .index_of(key)
            .ok_or_else(|| DbError::UnknownColumn(key.to_owned()))?;
        s.key = Some(idx);
        Ok(s)
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The primary-key column index, if declared.
    pub fn key_index(&self) -> Option<usize> {
        self.key
    }

    /// Validates that `values` matches the schema's arity and types.
    pub fn check_row(&self, values: &[Value]) -> DbResult<()> {
        if values.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (c, v) in self.columns.iter().zip(values) {
            if !c.ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    column: c.name.clone(),
                    value: v.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::with_key(
            vec![
                ColumnDef::new("id", ColumnType::Id),
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("price", ColumnType::Float),
            ],
            "id",
        )
        .unwrap()
    }

    #[test]
    fn lookup_and_arity() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("price"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.key_index(), Some(0));
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            ColumnDef::new("a", ColumnType::Int),
            ColumnDef::new("a", ColumnType::Str),
        ]);
        assert!(matches!(r, Err(DbError::DuplicateColumn(_))));
    }

    #[test]
    fn unknown_key_rejected() {
        let r = Schema::with_key(vec![ColumnDef::new("a", ColumnType::Int)], "b");
        assert!(matches!(r, Err(DbError::UnknownColumn(_))));
    }

    #[test]
    fn row_validation() {
        let s = sample();
        assert!(s
            .check_row(&[Value::Id(1), "m".into(), 9.5.into()])
            .is_ok());
        assert!(matches!(
            s.check_row(&[Value::Id(1), "m".into()]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::Id(1), Value::Int(2), 9.5.into()]),
            Err(DbError::TypeMismatch { .. })
        ));
        // Null inhabits any column.
        assert!(s.check_row(&[Value::Id(1), Value::Null, Value::Null]).is_ok());
    }
}
