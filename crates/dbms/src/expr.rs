//! Scalar expressions: the WHERE-clause language of the substrate engine.
//!
//! Besides evaluation, this module provides the structural tools the
//! Section 5.1 rewrite needs: enumerating the *atoms* of a boolean
//! combination and substituting an atom by a constant (`F'` is `F` with `p`
//! replaced by `true`, `F''` is `F` with `p` replaced by `false`).

use crate::error::{DbError, DbResult};
use crate::value::Value;
use std::fmt;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison under query semantics (numeric coercion).
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        let ord = a.query_cmp(b);
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => !ord.is_eq(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant value.
    Const(Value),
    /// A column reference, optionally qualified (`table.column`).
    Column(String),
    /// Comparison of two scalar expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two numeric expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// `Const(Bool(true))`.
    pub fn truth() -> Expr {
        Expr::Const(Value::Bool(true))
    }

    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Constant.
    pub fn val(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Comparison helper.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Arithmetic helper.
    pub fn arith(op: ArithOp, a: Expr, b: Expr) -> Expr {
        Expr::Arith(op, Box::new(a), Box::new(b))
    }

    /// Evaluates against a row-resolution function mapping column names to
    /// values.
    pub fn eval<F>(&self, resolve: &F) -> DbResult<Value>
    where
        F: Fn(&str) -> DbResult<Value>,
    {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Column(name) => resolve(name),
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(resolve)?, b.eval(resolve)?);
                Ok(Value::Bool(op.apply(&a, &b)))
            }
            Expr::Arith(op, a, b) => {
                let (av, bv) = (a.eval(resolve)?, b.eval(resolve)?);
                let (x, y) = match (av.as_f64(), bv.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        return Err(DbError::EvalType {
                            detail: format!("arithmetic on non-numeric values {av} and {bv}"),
                        })
                    }
                };
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                };
                Ok(Value::from(r))
            }
            Expr::And(a, b) => {
                Ok(Value::Bool(a.eval_bool(resolve)? && b.eval_bool(resolve)?))
            }
            Expr::Or(a, b) => {
                Ok(Value::Bool(a.eval_bool(resolve)? || b.eval_bool(resolve)?))
            }
            Expr::Not(a) => Ok(Value::Bool(!a.eval_bool(resolve)?)),
        }
    }

    /// Evaluates and demands a boolean.
    pub fn eval_bool<F>(&self, resolve: &F) -> DbResult<bool>
    where
        F: Fn(&str) -> DbResult<Value>,
    {
        match self.eval(resolve)? {
            Value::Bool(b) => Ok(b),
            other => Err(DbError::EvalType {
                detail: format!("expected boolean, got {other}"),
            }),
        }
    }

    /// Whether this node is an *atom*: a leaf predicate of the boolean
    /// structure (a comparison, or a bare boolean constant/column).
    pub fn is_atom(&self) -> bool {
        !matches!(self, Expr::And(..) | Expr::Or(..) | Expr::Not(..))
    }

    /// Collects references to the atoms of the boolean structure, left to
    /// right (Section 5.1's "F is a boolean combination of atoms").
    pub fn atoms(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Expr::Not(a) => a.collect_atoms(out),
            atom => out.push(atom),
        }
    }

    /// Returns `self` with every occurrence of `atom` (structural equality)
    /// replaced by the boolean constant `value` — the Section 5.1
    /// substitution producing `F'` (`value = true`) and `F''`
    /// (`value = false`).
    pub fn substitute_atom(&self, atom: &Expr, value: bool) -> Expr {
        if self == atom {
            return Expr::Const(Value::Bool(value));
        }
        match self {
            Expr::And(a, b) => Expr::And(
                Box::new(a.substitute_atom(atom, value)),
                Box::new(b.substitute_atom(atom, value)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.substitute_atom(atom, value)),
                Box::new(b.substitute_atom(atom, value)),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.substitute_atom(atom, value))),
            other => other.clone(),
        }
    }

    /// All column names referenced anywhere in the expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Const(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) => a.collect_columns(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Cmp(op, a, b) => {
                let s = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::Arith(op, a, b) => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver<'a>(pairs: &'a [(&'a str, Value)]) -> impl Fn(&str) -> DbResult<Value> + 'a {
        move |name: &str| {
            pairs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| DbError::UnknownColumn(name.to_owned()))
        }
    }

    #[test]
    fn arithmetic_and_comparison() {
        let cols = [("price", 80.0.into()), ("tax", 5.0.into())];
        let r = resolver(&cols);
        // price + tax <= 100
        let e = Expr::cmp(
            CmpOp::Le,
            Expr::arith(ArithOp::Add, Expr::col("price"), Expr::col("tax")),
            Expr::val(100.0),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e2 = Expr::cmp(CmpOp::Gt, Expr::col("price"), Expr::val(100i64));
        assert_eq!(e2.eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn boolean_connectives() {
        let cols: [(&str, Value); 0] = [];
        let r = resolver(&cols);
        let t = Expr::truth();
        let f = Expr::val(false);
        assert!(t.clone().and(t.clone()).eval_bool(&r).unwrap());
        assert!(!t.clone().and(f.clone()).eval_bool(&r).unwrap());
        assert!(t.clone().or(f.clone()).eval_bool(&r).unwrap());
        assert!(!f.clone().or(f.clone()).eval_bool(&r).unwrap());
        assert!(f.negate().eval_bool(&r).unwrap());
    }

    #[test]
    fn type_errors_reported() {
        let cols = [("s", "abc".into())];
        let r = resolver(&cols);
        let e = Expr::arith(ArithOp::Add, Expr::col("s"), Expr::val(1i64));
        assert!(matches!(e.eval(&r), Err(DbError::EvalType { .. })));
        assert!(Expr::col("s").eval_bool(&r).is_err());
        assert!(Expr::col("missing").eval(&r).is_err());
    }

    #[test]
    fn atoms_enumeration() {
        // (a > 1 AND b < 2) OR NOT (c = 3)
        let a1 = Expr::cmp(CmpOp::Gt, Expr::col("a"), Expr::val(1i64));
        let a2 = Expr::cmp(CmpOp::Lt, Expr::col("b"), Expr::val(2i64));
        let a3 = Expr::cmp(CmpOp::Eq, Expr::col("c"), Expr::val(3i64));
        let f = a1.clone().and(a2.clone()).or(a3.clone().negate());
        let atoms = f.atoms();
        assert_eq!(atoms, vec![&a1, &a2, &a3]);
    }

    #[test]
    fn substitution_produces_f_prime() {
        let p = Expr::cmp(CmpOp::Gt, Expr::col("x"), Expr::val(5i64));
        let q = Expr::cmp(CmpOp::Lt, Expr::col("y"), Expr::val(2i64));
        let f = p.clone().and(q.clone());
        let f_prime = f.substitute_atom(&p, true);
        let f_dblprime = f.substitute_atom(&p, false);
        assert_eq!(f_prime, Expr::truth().and(q.clone()));
        assert_eq!(f_dblprime, Expr::val(false).and(q.clone()));
        // q remains untouched.
        assert_eq!(f_prime.atoms().len(), 2);
    }

    #[test]
    fn columns_collection() {
        let f = Expr::cmp(
            CmpOp::Le,
            Expr::arith(ArithOp::Mul, Expr::col("a"), Expr::col("b")),
            Expr::col("c"),
        );
        assert_eq!(f.columns(), vec!["a", "b", "c"]);
    }

    #[test]
    fn display_round_trippable_shape() {
        let f = Expr::cmp(CmpOp::Ge, Expr::col("p"), Expr::val(1.5)).negate();
        assert_eq!(f.to_string(), "(NOT (p >= 1.5))");
    }
}
