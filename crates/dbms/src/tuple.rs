//! Row values.

use crate::value::Value;
use std::fmt;

/// A row: an ordered list of values matching some [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at column index `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Mutable value at column index `i`.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut Value> {
        self.0.get_mut(i)
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Concatenation of two tuples (used by the cartesian product).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Projection onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Consumes the tuple, returning the values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Tuple::new(vec![Value::Id(1), "a".into(), 2.0.into()]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), Some(&"a".into()));
        assert_eq!(t.get(5), None);
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Tuple::new(vec![Value::Int(3)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[2, 0]).values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Id(1), "m".into()]);
        assert_eq!(t.to_string(), "(#1, 'm')");
    }
}
