//! In-memory relational DBMS substrate.
//!
//! Section 5.1 of the paper builds MOST "on top of an existing DBMS": the
//! MOST layer rewrites queries, hands nontemporal subqueries to the
//! underlying engine, and post-processes the results.  The paper names
//! Sybase as the intended host; this crate is the from-scratch substitute —
//! a small but complete relational engine with:
//!
//! * typed [`value::Value`]s with a total order (so they can key hash maps
//!   and sort deterministically, including floats);
//! * [`schema::Schema`] / [`table::Table`] storage with primary keys;
//! * a scalar [`expr::Expr`] language (columns, constants, arithmetic,
//!   comparisons, boolean connectives) with the substitution hooks the
//!   Section 5.1 atom-elimination rewrite needs;
//! * a [`query::SelectQuery`] AST (select–from–where over one or more
//!   tables) and a nested-loop [`exec`]utor.
//!
//! The engine is deliberately *nontemporal*: it knows nothing about dynamic
//! attributes.  The MOST layer (crate `most-core`) stores each dynamic
//! attribute `A` as the three physical columns `A.value`, `A.updatetime`
//! and `A.function` — exactly the decomposition Section 5.1 prescribes —
//! and compensates in rewriting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod exec;
pub mod expr;
pub mod query;
pub mod schema;
pub mod table;
pub mod tuple;
pub mod value;

pub use catalog::Catalog;
pub use error::{DbError, DbResult};
pub use expr::Expr;
pub use query::SelectQuery;
pub use schema::{ColumnDef, ColumnType, Schema};
pub use table::Table;
pub use tuple::Tuple;
pub use value::{F64, Value};
