//! The table catalog: the "database" of the substrate engine.

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::table::Table;
use std::collections::BTreeMap;

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    /// Fails when the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> DbResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::TableExists(name));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Immutable access to a table.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Drops a table.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("a", ColumnType::Int)]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(c.table("t").is_ok());
        assert!(c.table_mut("t").is_ok());
        assert!(matches!(
            c.create_table("t", schema()),
            Err(DbError::TableExists(_))
        ));
        assert_eq!(c.table_names().collect::<Vec<_>>(), vec!["t"]);
        c.drop_table("t").unwrap();
        assert!(matches!(c.table("t"), Err(DbError::UnknownTable(_))));
        assert!(c.drop_table("t").is_err());
    }
}
