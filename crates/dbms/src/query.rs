//! The select–from–where query AST.

use crate::expr::Expr;
use std::fmt;

/// A table reference in a FROM clause, with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias used to qualify columns (defaults to the table name).
    pub alias: String,
}

impl TableRef {
    /// Reference without alias.
    pub fn new(table: impl Into<String>) -> Self {
        let table = table.into();
        TableRef { alias: table.clone(), table }
    }

    /// Reference with an explicit alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef { table: table.into(), alias: alias.into() }
    }
}

/// A `SELECT <exprs> FROM <tables> WHERE <predicate>` query.
///
/// Multi-table FROM clauses are evaluated as a filtered cartesian product
/// (the substrate performs no join optimization; the paper's rewriting layer
/// only needs correct answers from the host DBMS, and the benchmark
/// experiments measure the MOST layer, not the host's planner).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Projected expressions, each with an output column name.
    pub select: Vec<(String, Expr)>,
    /// FROM tables.
    pub from: Vec<TableRef>,
    /// WHERE predicate (use [`Expr::truth`] for none).
    pub where_clause: Expr,
}

impl SelectQuery {
    /// Starts building a query over one table.
    pub fn from_table(table: impl Into<String>) -> Self {
        SelectQuery {
            select: Vec::new(),
            from: vec![TableRef::new(table)],
            where_clause: Expr::truth(),
        }
    }

    /// Adds a projected column (name doubles as the output name).
    pub fn column(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        self.select.push((name.clone(), Expr::Column(name)));
        self
    }

    /// Adds a projected expression under an output name.
    pub fn expr(mut self, name: impl Into<String>, e: Expr) -> Self {
        self.select.push((name.into(), e));
        self
    }

    /// Sets the WHERE clause.
    pub fn filter(mut self, e: Expr) -> Self {
        self.where_clause = e;
        self
    }

    /// Adds a FROM table.
    pub fn join_table(mut self, r: TableRef) -> Self {
        self.from.push(r);
        self
    }

    /// Output column names, in order.
    pub fn output_names(&self) -> Vec<&str> {
        self.select.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, (name, e)) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e} AS {name}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if t.alias == t.table {
                write!(f, "{}", t.table)?;
            } else {
                write!(f, "{} AS {}", t.table, t.alias)?;
            }
        }
        write!(f, " WHERE {}", self.where_clause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn builder_accumulates() {
        let q = SelectQuery::from_table("motels")
            .column("name")
            .expr("cheap", Expr::cmp(CmpOp::Le, Expr::col("price"), Expr::val(60.0)))
            .filter(Expr::cmp(CmpOp::Gt, Expr::col("rooms"), Expr::val(0i64)));
        assert_eq!(q.output_names(), vec!["name", "cheap"]);
        assert_eq!(q.from.len(), 1);
    }

    #[test]
    fn display_is_sql_like() {
        let q = SelectQuery::from_table("motels")
            .column("name")
            .filter(Expr::cmp(CmpOp::Le, Expr::col("price"), Expr::val(60.0)));
        assert_eq!(
            q.to_string(),
            "SELECT name AS name FROM motels WHERE (price <= 60)"
        );
    }

    #[test]
    fn aliased_tables() {
        let q = SelectQuery::from_table("objects")
            .join_table(TableRef::aliased("objects", "o2"))
            .column("objects.id");
        assert!(q.to_string().contains("objects AS o2"));
    }
}
