//! Nested-loop executor for [`SelectQuery`].

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::query::SelectQuery;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A query result: named columns and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Tuple>,
}

impl ResultSet {
    /// Index of an output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Execution counters (used by the benchmark harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples of the (cartesian) input enumerated.
    pub rows_scanned: u64,
    /// Tuples surviving the WHERE clause.
    pub rows_output: u64,
}

/// Column-name resolution for a FROM clause: maps both `alias.column` and
/// unambiguous bare `column` names to slot indices in the concatenated row.
struct Resolver {
    slots: HashMap<String, usize>,
    ambiguous: Vec<String>,
}

impl Resolver {
    fn build(catalog: &Catalog, q: &SelectQuery) -> DbResult<Self> {
        let mut slots = HashMap::new();
        let mut ambiguous = Vec::new();
        let mut offset = 0usize;
        for tref in &q.from {
            let table = catalog.table(&tref.table)?;
            for (i, col) in table.schema().columns().iter().enumerate() {
                slots.insert(format!("{}.{}", tref.alias, col.name), offset + i);
                match slots.entry(col.name.clone()) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(offset + i);
                    }
                    std::collections::hash_map::Entry::Occupied(_) => {
                        ambiguous.push(col.name.clone());
                    }
                }
            }
            offset += table.schema().arity();
        }
        Ok(Resolver { slots, ambiguous })
    }

    fn resolve(&self, row: &Tuple, name: &str) -> DbResult<Value> {
        if self.ambiguous.iter().any(|a| a == name) {
            return Err(DbError::AmbiguousColumn(name.to_owned()));
        }
        let idx = self
            .slots
            .get(name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_owned()))?;
        Ok(row.values()[*idx].clone())
    }
}

/// Executes a query, returning rows and execution counters.
pub fn execute_with_stats(catalog: &Catalog, q: &SelectQuery) -> DbResult<(ResultSet, ExecStats)> {
    let resolver = Resolver::build(catalog, q)?;
    let mut stats = ExecStats::default();

    // Short-circuit a constant-false WHERE clause (the Section 5.1 rewrite
    // produces such branches for `F'' AND NOT p` when F has one atom).
    if let Expr::Const(Value::Bool(false)) = q.where_clause {
        return Ok((
            ResultSet {
                columns: q.select.iter().map(|(n, _)| n.clone()).collect(),
                rows: Vec::new(),
            },
            stats,
        ));
    }

    let tables: Vec<&[Tuple]> = q
        .from
        .iter()
        .map(|tref| catalog.table(&tref.table).map(|t| t.rows()))
        .collect::<DbResult<_>>()?;

    let mut rows = Vec::new();
    let mut indices = vec![0usize; tables.len()];
    if tables.iter().all(|t| !t.is_empty()) {
        'outer: loop {
            let mut combined = Tuple::new(Vec::new());
            for (ti, &rows_of) in tables.iter().enumerate() {
                combined = combined.concat(&rows_of[indices[ti]]);
            }
            stats.rows_scanned += 1;
            let resolve = |name: &str| resolver.resolve(&combined, name);
            if q.where_clause.eval_bool(&resolve)? {
                stats.rows_output += 1;
                let mut out = Vec::with_capacity(q.select.len());
                for (_, e) in &q.select {
                    out.push(e.eval(&resolve)?);
                }
                rows.push(Tuple::new(out));
            }
            // Odometer increment over the cartesian product.
            for ti in (0..tables.len()).rev() {
                indices[ti] += 1;
                if indices[ti] < tables[ti].len() {
                    continue 'outer;
                }
                indices[ti] = 0;
                if ti == 0 {
                    break 'outer;
                }
            }
        }
    }

    // Registry traffic stays out of the scan loop: one batch per query.
    most_obs::inc("dbms.queries");
    most_obs::add("dbms.rows_scanned", stats.rows_scanned);
    most_obs::add("dbms.rows_output", stats.rows_output);
    if q.from.len() > 1 {
        most_obs::add("dbms.rows_joined", stats.rows_scanned);
    }
    Ok((
        ResultSet {
            columns: q.select.iter().map(|(n, _)| n.clone()).collect(),
            rows,
        },
        stats,
    ))
}

/// Executes a query.
pub fn execute(catalog: &Catalog, q: &SelectQuery) -> DbResult<ResultSet> {
    execute_with_stats(catalog, q).map(|(rs, _)| rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::query::TableRef;
    use crate::schema::{ColumnDef, ColumnType, Schema};

    fn setup() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "motels",
            Schema::with_key(
                vec![
                    ColumnDef::new("id", ColumnType::Id),
                    ColumnDef::new("name", ColumnType::Str),
                    ColumnDef::new("price", ColumnType::Float),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let t = c.table_mut("motels").unwrap();
        t.insert(vec![Value::Id(1), "Rest Inn".into(), 79.0.into()]).unwrap();
        t.insert(vec![Value::Id(2), "Highway 6".into(), 55.0.into()]).unwrap();
        t.insert(vec![Value::Id(3), "Grand".into(), 180.0.into()]).unwrap();
        c
    }

    #[test]
    fn filter_and_project() {
        let c = setup();
        let q = SelectQuery::from_table("motels")
            .column("name")
            .filter(Expr::cmp(CmpOp::Le, Expr::col("price"), Expr::val(100.0)));
        let (rs, stats) = execute_with_stats(&c, &q).unwrap();
        assert_eq!(rs.columns, vec!["name"]);
        assert_eq!(rs.len(), 2);
        assert_eq!(stats.rows_scanned, 3);
        assert_eq!(stats.rows_output, 2);
    }

    #[test]
    fn projection_expressions() {
        let c = setup();
        let q = SelectQuery::from_table("motels")
            .column("id")
            .expr(
                "discounted",
                Expr::arith(crate::expr::ArithOp::Mul, Expr::col("price"), Expr::val(0.9)),
            )
            .filter(Expr::cmp(CmpOp::Eq, Expr::col("id"), Expr::Const(Value::Id(2))));
        let rs = execute(&c, &q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].get(1), Some(&Value::from(55.0 * 0.9)));
        assert_eq!(rs.column_index("discounted"), Some(1));
    }

    #[test]
    fn self_join_with_aliases() {
        let c = setup();
        // Pairs of distinct motels where the first is cheaper.
        let q = SelectQuery {
            select: vec![
                ("a".into(), Expr::col("m1.id")),
                ("b".into(), Expr::col("m2.id")),
            ],
            from: vec![
                TableRef::aliased("motels", "m1"),
                TableRef::aliased("motels", "m2"),
            ],
            where_clause: Expr::cmp(
                CmpOp::Lt,
                Expr::col("m1.price"),
                Expr::col("m2.price"),
            ),
        };
        let (rs, stats) = execute_with_stats(&c, &q).unwrap();
        assert_eq!(stats.rows_scanned, 9);
        assert_eq!(rs.len(), 3); // 55<79, 55<180, 79<180
    }

    #[test]
    fn ambiguous_bare_column_is_error() {
        let c = setup();
        let q = SelectQuery {
            select: vec![("p".into(), Expr::col("price"))],
            from: vec![
                TableRef::aliased("motels", "m1"),
                TableRef::aliased("motels", "m2"),
            ],
            where_clause: Expr::truth(),
        };
        assert!(matches!(
            execute(&c, &q),
            Err(DbError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn constant_false_short_circuits() {
        let c = setup();
        let q = SelectQuery::from_table("motels")
            .column("id")
            .filter(Expr::val(false));
        let (rs, stats) = execute_with_stats(&c, &q).unwrap();
        assert!(rs.is_empty());
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn empty_table_yields_empty_product() {
        let mut c = setup();
        c.create_table(
            "empty",
            Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]).unwrap(),
        )
        .unwrap();
        let q = SelectQuery::from_table("motels")
            .join_table(TableRef::new("empty"))
            .column("name");
        let rs = execute(&c, &q).unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let c = setup();
        let q = SelectQuery::from_table("nope").column("id");
        assert!(matches!(execute(&c, &q), Err(DbError::UnknownTable(_))));
        let q = SelectQuery::from_table("motels").column("nope");
        assert!(matches!(execute(&c, &q), Err(DbError::UnknownColumn(_))));
    }
}
