//! Error type for the relational engine.

use crate::value::Value;
use std::fmt;

/// Result alias for DBMS operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Two columns in one schema share a name.
    DuplicateColumn(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A table with the same name already exists.
    TableExists(String),
    /// Row arity differs from the schema.
    ArityMismatch {
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value does not inhabit its column's type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Offending value.
        value: Value,
    },
    /// A primary-key value is already present.
    DuplicateKey(Value),
    /// A primary-key value was not found.
    KeyNotFound(Value),
    /// An expression applied an operation to incompatible values.
    EvalType {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A column reference in a query was ambiguous across FROM tables.
    AmbiguousColumn(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            DbError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            DbError::TypeMismatch { column, value } => {
                write!(f, "value {value} does not fit column `{column}`")
            }
            DbError::DuplicateKey(v) => write!(f, "duplicate key {v}"),
            DbError::KeyNotFound(v) => write!(f, "key {v} not found"),
            DbError::EvalType { detail } => write!(f, "type error in expression: {detail}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DbError::UnknownTable("cars".into()).to_string(),
            "unknown table `cars`"
        );
        assert_eq!(
            DbError::ArityMismatch { expected: 3, got: 2 }.to_string(),
            "arity mismatch: expected 3 values, got 2"
        );
        assert!(DbError::DuplicateKey(Value::Id(1)).to_string().contains("#1"));
    }
}
