//! Property tests for the substrate engine: the executor must agree with an
//! independent reference evaluator written here from scratch.

use most_dbms::exec::execute_with_stats;
use most_dbms::expr::{ArithOp, CmpOp, Expr};
use most_dbms::query::SelectQuery;
use most_dbms::schema::{ColumnDef, ColumnType, Schema};
use most_dbms::value::Value;
use most_dbms::Catalog;
use most_testkit::check::{ints, one_of, select, tuple2, tuple3, vecs, Check, Gen};

/// Rows of (id, a, b) with float columns.
fn build_catalog(rows: &[(u64, f64, f64)]) -> Catalog {
    let mut c = Catalog::new();
    c.create_table(
        "t",
        Schema::with_key(
            vec![
                ColumnDef::new("id", ColumnType::Id),
                ColumnDef::new("a", ColumnType::Float),
                ColumnDef::new("b", ColumnType::Float),
            ],
            "id",
        )
        .unwrap(),
    )
    .unwrap();
    let table = c.table_mut("t").unwrap();
    for &(id, a, b) in rows {
        table
            .insert(vec![Value::Id(id), a.into(), b.into()])
            .unwrap();
    }
    c
}

/// A random predicate over columns `a` and `b`.
#[derive(Debug, Clone)]
enum Pred {
    Cmp(CmpOp, Atom, Atom),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

#[derive(Debug, Clone, Copy)]
enum Atom {
    ColA,
    ColB,
    Const(i32),
    Sum, // a + b
}

impl Atom {
    fn to_expr(self) -> Expr {
        match self {
            Atom::ColA => Expr::col("a"),
            Atom::ColB => Expr::col("b"),
            Atom::Const(c) => Expr::val(c as f64),
            Atom::Sum => Expr::arith(ArithOp::Add, Expr::col("a"), Expr::col("b")),
        }
    }

    fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            Atom::ColA => a,
            Atom::ColB => b,
            Atom::Const(c) => c as f64,
            Atom::Sum => a + b,
        }
    }
}

impl Pred {
    fn to_expr(&self) -> Expr {
        match self {
            Pred::Cmp(op, x, y) => Expr::cmp(*op, x.to_expr(), y.to_expr()),
            Pred::And(l, r) => l.to_expr().and(r.to_expr()),
            Pred::Or(l, r) => l.to_expr().or(r.to_expr()),
            Pred::Not(p) => p.to_expr().negate(),
        }
    }

    /// Independent reference evaluation.
    fn holds(&self, a: f64, b: f64) -> bool {
        match self {
            Pred::Cmp(op, x, y) => {
                let (x, y) = (x.eval(a, b), y.eval(a, b));
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                }
            }
            Pred::And(l, r) => l.holds(a, b) && r.holds(a, b),
            Pred::Or(l, r) => l.holds(a, b) || r.holds(a, b),
            Pred::Not(p) => !p.holds(a, b),
        }
    }
}

fn arb_atom() -> Gen<Atom> {
    one_of(vec![
        select(&[Atom::ColA, Atom::ColB, Atom::Sum]),
        ints(-20i32..20).map(Atom::Const),
    ])
}

fn arb_cmp_op() -> Gen<CmpOp> {
    select(&[CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge])
}

/// Random predicate tree of bounded depth (mirrors the old
/// `prop_recursive(3, ..)` strategy).
fn arb_pred(depth: u32) -> Gen<Pred> {
    let leaf =
        tuple3(arb_cmp_op(), arb_atom(), arb_atom()).map(|(op, x, y)| Pred::Cmp(op, x, y));
    if depth == 0 {
        return leaf;
    }
    let inner = arb_pred(depth - 1);
    one_of(vec![
        leaf,
        tuple2(inner.clone(), inner.clone())
            .map(|(l, r)| Pred::And(Box::new(l), Box::new(r))),
        tuple2(inner.clone(), inner.clone())
            .map(|(l, r)| Pred::Or(Box::new(l), Box::new(r))),
        inner.map(|p| Pred::Not(Box::new(p))),
    ])
}

fn arb_rows() -> Gen<Vec<(u64, f64, f64)>> {
    vecs(tuple2(ints(-15i32..15), ints(-15i32..15)), 0..40).map(|cells| {
        cells
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| (i as u64, a as f64, b as f64))
            .collect()
    })
}

#[test]
fn executor_matches_reference() {
    Check::new("dbms::executor_matches_reference").cases(128).run(
        &tuple2(arb_rows(), arb_pred(3)),
        |(rows, pred)| {
            let catalog = build_catalog(rows);
            let q = SelectQuery::from_table("t").column("id").filter(pred.to_expr());
            let (rs, stats) = execute_with_stats(&catalog, &q).expect("executes");
            let got: Vec<u64> = rs
                .rows
                .iter()
                .map(|r| r.get(0).unwrap().as_id().unwrap())
                .collect();
            let want: Vec<u64> = rows
                .iter()
                .filter(|&&(_, a, b)| pred.holds(a, b))
                .map(|&(id, _, _)| id)
                .collect();
            assert_eq!(stats.rows_scanned, rows.len() as u64);
            assert_eq!(stats.rows_output, want.len() as u64);
            assert_eq!(got, want);
        },
    );
}

#[test]
fn projection_expressions_match_reference() {
    Check::new("dbms::projection_expressions_match_reference").cases(128).run(
        &tuple3(arb_rows(), arb_atom(), arb_atom()),
        |(rows, x, y)| {
            let catalog = build_catalog(rows);
            let q = SelectQuery::from_table("t")
                .column("id")
                .expr("v", Expr::arith(ArithOp::Mul, x.to_expr(), y.to_expr()));
            let (rs, _) = execute_with_stats(&catalog, &q).expect("executes");
            for (row, &(_, a, b)) in rs.rows.iter().zip(rows) {
                let got = row.get(1).unwrap().as_f64().unwrap();
                let want = x.eval(a, b) * y.eval(a, b);
                assert_eq!(got, want);
            }
        },
    );
}
