//! Compiled query plans: one-time lowering of a parsed formula into its
//! atom set, plus a per-atom interval-result cache that survives across
//! continuous-query refreshes.
//!
//! The appendix algorithm is bottom-up: every evaluation recomputes `R_g`
//! for each atomic subformula from scratch, even when the triggering update
//! batch could not have changed that atom (a PRICE write does not move any
//! trajectory, so every spatial atom's relation is unchanged).  A
//! [`CompiledPlan`] is built **once**, when a continuous query is
//! registered: it enumerates the formula's atoms under stable structural
//! keys (their deterministic [`Display`](std::fmt::Display) rendering), so
//! the owner can attach per-atom dependency sets and an [`AtomCache`] of
//! previously computed relations.
//!
//! [`evaluate_compiled`] then runs the *standard* evaluator with the cache
//! installed as a thread-local session: when the recursion reaches an atom
//! whose key is in the plan, a cached [`VarRelation`] is replayed instead
//! of re-enumerating candidates.  Because the cache only ever holds
//! relations computed by the very same evaluator against an equivalent
//! database state (the owner invalidates entries whose dependency set an
//! update batch touches, and stamps the cache per clock tick), compiled
//! evaluation is byte-identical to interpretation by construction.
//!
//! Atoms pinned by an assignment quantifier (`[x <- t] g`) render with the
//! pinned constant in place of `x`, which is never one of the plan's
//! precollected keys — such instantiations simply bypass the cache.

use crate::answer::Answer;
use crate::ast::{Formula, Query};
use crate::context::EvalContext;
use crate::error::FtlResult;
use crate::relation::VarRelation;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Whether a formula node is an atomic predicate (a cacheable leaf of the
/// bottom-up evaluation).
pub fn is_atom(f: &Formula) -> bool {
    matches!(
        f,
        Formula::Cmp(..)
            | Formula::Inside(..)
            | Formula::Outside(..)
            | Formula::InsideMoving(..)
            | Formula::OutsideMoving(..)
            | Formula::WithinSphere(..)
    )
}

/// One atomic predicate of a compiled plan.
#[derive(Debug, Clone)]
pub struct CompiledAtom {
    /// Stable structural key: the atom's deterministic `Display` rendering.
    pub key: String,
    /// The atom subformula itself (for dependency extraction by the owner).
    pub formula: Formula,
}

/// A query lowered to its flat atom set, compiled once at registration.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    query: Query,
    atoms: Vec<CompiledAtom>,
    keys: BTreeSet<String>,
}

impl CompiledPlan {
    /// Compiles a query: collects its atomic subformulas (in pre-order,
    /// deduplicated by key — a formula mentioning `INSIDE(o, P)` twice
    /// shares one cache slot).
    pub fn compile(q: &Query) -> CompiledPlan {
        let mut atoms: Vec<CompiledAtom> = Vec::new();
        let mut keys = BTreeSet::new();
        q.formula.visit(&mut |g| {
            if is_atom(g) {
                let key = g.to_string();
                if keys.insert(key.clone()) {
                    atoms.push(CompiledAtom { key, formula: g.clone() });
                }
            }
        });
        most_obs::inc("ftl.plan.compiles");
        most_obs::add("ftl.plan.atoms", atoms.len() as u64);
        CompiledPlan { query: q.clone(), atoms, keys }
    }

    /// The compiled query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The plan's atoms, in first-appearance order.
    pub fn atoms(&self) -> &[CompiledAtom] {
        &self.atoms
    }
}

/// Per-atom relation cache for one registered query, surviving across
/// refreshes of the same clock tick.
///
/// Entries are only valid against one `(clock, generation)` stamp: atom
/// relations are expressed in ticks relative to the evaluation origin, so a
/// clock advance flushes everything; the generation covers mutations that
/// bypass the update classifier (e.g. region definitions).  Within a
/// stamp, the owner invalidates exactly the entries whose dependency set an
/// update batch touches.
#[derive(Debug, Clone, Default)]
pub struct AtomCache {
    stamp: Option<(u64, u64)>,
    entries: BTreeMap<String, VarRelation>,
}

impl AtomCache {
    /// An empty cache.
    pub fn new() -> AtomCache {
        AtomCache::default()
    }

    /// Pins the cache to a `(clock, generation)` stamp, flushing every
    /// entry if the stamp moved since the last call.
    pub fn ensure_stamp(&mut self, stamp: (u64, u64)) {
        if self.stamp != Some(stamp) {
            if !self.entries.is_empty() {
                most_obs::inc("ftl.plan.flushes");
            }
            self.entries.clear();
            self.stamp = Some(stamp);
        }
    }

    /// Drops every entry whose key satisfies `doomed`; returns the number
    /// of entries removed.
    pub fn invalidate(&mut self, mut doomed: impl FnMut(&str) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|key, _| !doomed(key));
        let removed = before - self.entries.len();
        if removed > 0 {
            most_obs::add("ftl.plan.invalidated", removed as u64);
        }
        removed
    }

    /// Number of cached atom relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The active cache session of the evaluating thread.  Installed by
/// [`evaluate_compiled`] around a standard [`crate::eval::evaluate_query`]
/// run; probed by the evaluator at every atom.  Thread-local is sound with
/// the evaluator's scoped-thread sharding because sharding happens *below*
/// the atom level (inside a single atom's candidate loop) — atom entry and
/// exit always execute on the thread that installed the session.
struct Session {
    keys: BTreeSet<String>,
    entries: BTreeMap<String, VarRelation>,
    hits: u64,
    misses: u64,
}

thread_local! {
    static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// Outcome of a session probe for one formula node.
pub(crate) enum Probe {
    /// No session, or the node is not one of the plan's cacheable atoms.
    Off,
    /// Cached relation: replay it.
    Hit(VarRelation),
    /// Cacheable atom with no entry yet: compute, then [`store`] under the
    /// returned key.
    Miss(String),
}

/// Probes the active session (if any) for a formula node.
pub(crate) fn probe(f: &Formula) -> Probe {
    SESSION.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(session) = slot.as_mut() else {
            return Probe::Off;
        };
        if !is_atom(f) {
            return Probe::Off;
        }
        let key = f.to_string();
        if !session.keys.contains(&key) {
            // Pinned instantiation (assignment body) or foreign atom.
            return Probe::Off;
        }
        match session.entries.get(&key) {
            Some(rel) => {
                session.hits += 1;
                Probe::Hit(rel.clone())
            }
            None => {
                session.misses += 1;
                Probe::Miss(key)
            }
        }
    })
}

/// Stores a freshly computed atom relation in the active session.
pub(crate) fn store(key: String, rel: &VarRelation) {
    SESSION.with(|slot| {
        if let Some(session) = slot.borrow_mut().as_mut() {
            session.entries.insert(key, rel.clone());
        }
    });
}

/// Clears the session on drop, so a panicking evaluation cannot leak a
/// stale session into the next query evaluated on this thread.
struct SessionGuard;

impl SessionGuard {
    fn install(session: Session) -> SessionGuard {
        SESSION.with(|slot| {
            let prev = slot.borrow_mut().replace(session);
            debug_assert!(prev.is_none(), "nested compiled evaluations");
        });
        SessionGuard
    }

    fn finish(self) -> Session {
        SESSION.with(|slot| slot.borrow_mut().take()).expect("session installed")
        // `drop(self)` then takes the already-empty slot: harmless.
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        SESSION.with(|slot| {
            slot.borrow_mut().take();
        });
    }
}

/// Evaluates a compiled plan, replaying cached atom relations and caching
/// the ones it computes.  The result is byte-identical to
/// [`crate::eval::evaluate_query`] on the plan's query — the cache only
/// short-circuits atoms whose relation the owner guarantees unchanged (via
/// [`AtomCache::ensure_stamp`] / [`AtomCache::invalidate`]).
pub fn evaluate_compiled(
    ctx: &dyn EvalContext,
    plan: &CompiledPlan,
    cache: &mut AtomCache,
) -> FtlResult<Answer> {
    let session = Session {
        keys: plan.keys.clone(),
        entries: std::mem::take(&mut cache.entries),
        hits: 0,
        misses: 0,
    };
    let guard = SessionGuard::install(session);
    let result = crate::eval::evaluate_query(ctx, &plan.query);
    let session = guard.finish();
    cache.entries = session.entries;
    // One registry batch per evaluation, never per atom.
    most_obs::add("ftl.plan.cache_hits", session.hits);
    most_obs::add("ftl.plan.cache_misses", session.misses);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MemoryContext;
    use crate::eval::evaluate_query;
    use most_dbms::value::Value;
    use most_spatial::{Point, Polygon, Trajectory, Velocity};

    fn ctx() -> MemoryContext {
        let mut ctx = MemoryContext::new(60);
        for i in 0..6u64 {
            ctx.add_object(
                i,
                Trajectory::starting_at(Point::new(i as f64 * 10.0, 0.0), Velocity::new(1.0, 0.0)),
            );
            ctx.set_attr(i, "PRICE", Value::from(50.0 + i as f64 * 10.0));
        }
        ctx.add_region("P", Polygon::rectangle(20.0, -5.0, 40.0, 5.0));
        ctx
    }

    fn queries() -> Vec<Query> {
        [
            "RETRIEVE o WHERE Eventually INSIDE(o, P)",
            "RETRIEVE o WHERE o.PRICE <= 75",
            "RETRIEVE o WHERE o.PRICE <= 75 AND Eventually within 10 INSIDE(o, P)",
            "RETRIEVE o WHERE [x <- o.PRICE] Always (o.PRICE = x)",
        ]
        .iter()
        .map(|s| Query::parse(s).unwrap())
        .collect()
    }

    #[test]
    fn compile_collects_deduplicated_atoms() {
        let q = Query::parse(
            "RETRIEVE o WHERE (INSIDE(o, P) AND o.PRICE <= 75) OR INSIDE(o, P)",
        )
        .unwrap();
        let plan = CompiledPlan::compile(&q);
        let keys: Vec<&str> = plan.atoms().iter().map(|a| a.key.as_str()).collect();
        assert_eq!(keys, vec!["INSIDE(o, P)", "o.PRICE <= 75"]);
    }

    #[test]
    fn compiled_matches_interpreter_cold_and_warm() {
        let ctx = ctx();
        for q in queries() {
            let reference = evaluate_query(&ctx, &q).unwrap();
            let plan = CompiledPlan::compile(&q);
            let mut cache = AtomCache::new();
            cache.ensure_stamp((0, 0));
            let cold = evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
            assert_eq!(cold, reference, "cold run for `{}`", q);
            // Second run replays every cached atom relation.
            let warm = evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
            assert_eq!(warm, reference, "warm run for `{}`", q);
        }
    }

    #[test]
    fn stamp_change_flushes_entries() {
        let ctx = ctx();
        let q = Query::parse("RETRIEVE o WHERE o.PRICE <= 75").unwrap();
        let plan = CompiledPlan::compile(&q);
        let mut cache = AtomCache::new();
        cache.ensure_stamp((0, 0));
        evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
        cache.ensure_stamp((1, 0));
        assert!(cache.is_empty(), "clock advance must flush the cache");
        cache.ensure_stamp((1, 1));
        evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_is_selective() {
        let ctx = ctx();
        let q = Query::parse("RETRIEVE o WHERE o.PRICE <= 75 AND Eventually INSIDE(o, P)")
            .unwrap();
        let plan = CompiledPlan::compile(&q);
        let mut cache = AtomCache::new();
        cache.ensure_stamp((0, 0));
        evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
        assert_eq!(cache.len(), 2);
        let removed = cache.invalidate(|key| key.contains("PRICE"));
        assert_eq!(removed, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stale_cache_entry_is_replayed_verbatim() {
        // The cache *trusts* its owner: a deliberately stale entry must be
        // served back unchanged (this is what makes owner-side invalidation
        // observable and the equivalence tests meaningful).
        let mut ctx = ctx();
        let q = Query::parse("RETRIEVE o WHERE o.PRICE <= 75").unwrap();
        let plan = CompiledPlan::compile(&q);
        let mut cache = AtomCache::new();
        cache.ensure_stamp((0, 0));
        let before = evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
        // Mutate the context without telling the cache.
        ctx.set_attr(0, "PRICE", Value::from(1000.0));
        let stale = evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
        assert_eq!(stale, before, "uninvalidated entries replay verbatim");
        // Invalidation restores agreement with the interpreter.
        cache.invalidate(|key| key.contains("PRICE"));
        let fresh = evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
        assert_eq!(fresh, evaluate_query(&ctx, &q).unwrap());
        assert_ne!(fresh, before);
    }

    #[test]
    fn session_clears_after_evaluation() {
        let ctx = ctx();
        let q = Query::parse("RETRIEVE o WHERE o.PRICE <= 75").unwrap();
        let plan = CompiledPlan::compile(&q);
        let mut cache = AtomCache::new();
        cache.ensure_stamp((0, 0));
        evaluate_compiled(&ctx, &plan, &mut cache).unwrap();
        assert!(matches!(probe(&q.formula), Probe::Off));
    }
}
