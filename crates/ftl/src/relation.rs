//! The appendix's relations `R_g`: free-variable instantiations paired with
//! normalized interval sets, and the joins that combine them.
//!
//! "For each subformula `g` of `f` our algorithm computes a relation `R_g`
//! ... the first `l` attributes correspond to the `l` variables, and the
//! last attribute denotes a time interval."  A [`VarRelation`] stores one
//! row per instantiation with its whole (normalized, non-consecutive)
//! interval set — equivalent to the appendix's multiple rows per
//! instantiation, with the non-consecutiveness invariant maintained by
//! construction.
//!
//! Join semantics (matching the appendix):
//!
//! * conjunction — inner natural join, intervals intersected;
//! * `Until` — driven from the right operand (`g2`); a matching left row
//!   contributes its interval set, a missing one contributes the empty set
//!   (a `g2`-only state satisfies `Until` outright).  When the left operand
//!   has variables the right lacks, callers (`eval::expand_for_until`)
//!   first expand `g2` over the active domain so those instantiations are
//!   not lost — the appendix's literal join would drop them, the §3.3
//!   semantics keep them;
//! * disjunction / negation (extensions) — require expansion of both sides
//!   to a common variable set over the active object domain, provided by
//!   [`VarRelation::expand`].

use crate::error::{FtlError, FtlResult};
use most_dbms::value::Value;
use most_temporal::{Horizon, IntervalSet};
use std::collections::HashMap;

/// A relation over named variables with an interval-set column.
#[derive(Debug, Clone, PartialEq)]
pub struct VarRelation {
    vars: Vec<String>,
    rows: Vec<(Vec<Value>, IntervalSet)>,
}

impl VarRelation {
    /// Creates a relation; rows with empty interval sets are dropped and
    /// duplicate instantiations are merged by union.
    pub fn new(vars: Vec<String>, rows: Vec<(Vec<Value>, IntervalSet)>) -> Self {
        let mut merged: HashMap<Vec<Value>, IntervalSet> = HashMap::with_capacity(rows.len());
        for (vals, set) in rows {
            debug_assert_eq!(vals.len(), vars.len());
            if set.is_empty() {
                continue;
            }
            merged
                .entry(vals)
                .and_modify(|s| *s = s.union(&set))
                .or_insert(set);
        }
        let mut rows: Vec<_> = merged.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        VarRelation { vars, rows }
    }

    /// The 0-variable relation holding a single (empty) instantiation with
    /// the given interval set.
    pub fn nullary(set: IntervalSet) -> Self {
        VarRelation::new(Vec::new(), vec![(Vec::new(), set)])
    }

    /// Variable names (column order).
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Rows: `(instantiation, interval set)`, sorted by instantiation.
    pub fn rows(&self) -> &[(Vec<Value>, IntervalSet)] {
        &self.rows
    }

    /// Consumes the relation, returning its rows.  Callers that turn the
    /// final projection into an [`Answer`](crate::answer::Answer) take
    /// ownership here instead of cloning every value vector and interval
    /// set out of the evaluation map.
    pub fn into_rows(self) -> Vec<(Vec<Value>, IntervalSet)> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The interval set of an instantiation, or `None`.
    pub fn get(&self, values: &[Value]) -> Option<&IntervalSet> {
        self.rows
            .binary_search_by(|(v, _)| v.as_slice().cmp(values))
            .ok()
            .map(|i| &self.rows[i].1)
    }

    /// Applies a transform to every interval set (unary temporal
    /// operators).
    pub fn map_sets<F: Fn(&IntervalSet) -> IntervalSet>(&self, f: F) -> VarRelation {
        VarRelation::new(
            self.vars.clone(),
            self.rows
                .iter()
                .map(|(v, s)| (v.clone(), f(s)))
                .collect(),
        )
    }

    /// Conjunction: natural join, interval sets intersected.
    pub fn and_join(&self, other: &VarRelation) -> VarRelation {
        self.join(other, JoinKind::Inner, |a, b| a.intersect(b))
    }

    /// `Until`: right-driven join; a missing left partner behaves as the
    /// empty set, so right-only states survive.
    pub fn until_join(&self, other: &VarRelation) -> VarRelation {
        self.join(other, JoinKind::RightTotal, |a, b| a.until(b))
    }

    /// `until_within c`: right-driven join with the bounded-until interval
    /// transform.
    pub fn until_within_join(&self, c: u64, other: &VarRelation) -> VarRelation {
        self.join(other, JoinKind::RightTotal, |a, b| a.until_within(c, b))
    }

    /// Disjunction over relations with identical variable sets (callers
    /// expand first when sets differ).
    pub fn or_union(&self, other: &VarRelation) -> FtlResult<VarRelation> {
        if self.vars != other.vars {
            return Err(FtlError::Unsafe(format!(
                "OR operands bind different variables ({:?} vs {:?}); expansion failed",
                self.vars, other.vars
            )));
        }
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(VarRelation::new(self.vars.clone(), rows))
    }

    /// Active-domain negation: for every instantiation of `self.vars` over
    /// `domain_of(var)`, the complement of this relation's set (missing
    /// instantiations complement the empty set, i.e. become the full
    /// horizon).
    pub fn complement<F>(&self, h: Horizon, domain_of: F) -> FtlResult<VarRelation>
    where
        F: Fn(&str) -> FtlResult<Vec<Value>>,
    {
        let domains: Vec<Vec<Value>> = self
            .vars
            .iter()
            .map(|v| domain_of(v))
            .collect::<FtlResult<_>>()?;
        let mut rows = Vec::new();
        let mut inst = Vec::with_capacity(self.vars.len());
        self.enumerate_domain(&domains, &mut inst, &mut |values| {
            let set = self
                .get(values)
                .map(|s| s.complement(h))
                .unwrap_or_else(|| IntervalSet::full(h));
            rows.push((values.to_vec(), set));
        });
        Ok(VarRelation::new(self.vars.clone(), rows))
    }

    /// Expands the relation to a superset of variables, instantiating the
    /// new ones over their domains (cartesian).
    pub fn expand<F>(&self, new_vars: &[String], domain_of: F) -> FtlResult<VarRelation>
    where
        F: Fn(&str) -> FtlResult<Vec<Value>>,
    {
        let extra: Vec<&String> = new_vars.iter().filter(|v| !self.vars.contains(v)).collect();
        if extra.is_empty() && new_vars.len() == self.vars.len() {
            // Possibly just a reorder.
            if new_vars == self.vars {
                return Ok(self.clone());
            }
        }
        let mut vars = self.vars.clone();
        for v in &extra {
            vars.push((*v).clone());
        }
        let domains: Vec<Vec<Value>> = extra
            .iter()
            .map(|v| domain_of(v))
            .collect::<FtlResult<_>>()?;
        let mut rows = Vec::new();
        for (vals, set) in &self.rows {
            let mut inst = Vec::new();
            enumerate(&domains, &mut inst, &mut |suffix| {
                let mut v = vals.clone();
                v.extend_from_slice(suffix);
                rows.push((v, set.clone()));
            });
        }
        // Reorder columns to match new_vars order if requested order differs.
        let rel = VarRelation::new(vars, rows);
        rel.reorder(new_vars)
    }

    /// Projects/reorders columns to exactly `new_vars` (must be a subset of
    /// the relation's variables; dropped columns union their interval sets
    /// per remaining instantiation).
    pub fn reorder(&self, new_vars: &[String]) -> FtlResult<VarRelation> {
        let indices: Vec<usize> = new_vars
            .iter()
            .map(|v| {
                self.vars
                    .iter()
                    .position(|w| w == v)
                    .ok_or_else(|| FtlError::Unsafe(format!("unknown variable `{v}` in projection")))
            })
            .collect::<FtlResult<_>>()?;
        let rows = self
            .rows
            .iter()
            .map(|(vals, set)| {
                (
                    indices.iter().map(|&i| vals[i].clone()).collect(),
                    set.clone(),
                )
            })
            .collect();
        Ok(VarRelation::new(new_vars.to_vec(), rows))
    }

    fn enumerate_domain(
        &self,
        domains: &[Vec<Value>],
        inst: &mut Vec<Value>,
        f: &mut impl FnMut(&[Value]),
    ) {
        enumerate(domains, inst, f)
    }

    fn join(
        &self,
        other: &VarRelation,
        kind: JoinKind,
        op: impl Fn(&IntervalSet, &IntervalSet) -> IntervalSet,
    ) -> VarRelation {
        // Output variables: left vars then right-only vars.
        let mut vars = self.vars.clone();
        for v in &other.vars {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
        let common: Vec<String> = self
            .vars
            .iter()
            .filter(|v| other.vars.contains(v))
            .cloned()
            .collect();
        let left_common_idx: Vec<usize> = common
            .iter()
            .map(|v| self.vars.iter().position(|w| w == v).expect("common var"))
            .collect();
        let right_common_idx: Vec<usize> = common
            .iter()
            .map(|v| other.vars.iter().position(|w| w == v).expect("common var"))
            .collect();
        let right_extra_idx: Vec<usize> = other
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| !self.vars.contains(v))
            .map(|(i, _)| i)
            .collect();
        // Whether every left variable also occurs on the right — the
        // condition under which a right row with no left partner can still
        // be emitted (all output columns determined).
        let left_subsumed = self.vars.iter().all(|v| other.vars.contains(v));
        let left_extra_idx: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| !other.vars.contains(v))
            .map(|(i, _)| i)
            .collect();

        // Index the left side by common-variable key.
        let mut left_index: HashMap<Vec<&Value>, Vec<usize>> = HashMap::new();
        for (i, (vals, _)) in self.rows.iter().enumerate() {
            let key: Vec<&Value> = left_common_idx.iter().map(|&k| &vals[k]).collect();
            left_index.entry(key).or_default().push(i);
        }

        let mut rows: Vec<(Vec<Value>, IntervalSet)> = Vec::new();
        let empty = IntervalSet::empty();
        for (rvals, rset) in &other.rows {
            let key: Vec<&Value> = right_common_idx.iter().map(|&k| &rvals[k]).collect();
            match left_index.get(&key) {
                Some(matches) => {
                    for &li in matches {
                        let (lvals, lset) = &self.rows[li];
                        let set = op(lset, rset);
                        if set.is_empty() {
                            continue;
                        }
                        let mut vals = lvals.clone();
                        for &ri in &right_extra_idx {
                            vals.push(rvals[ri].clone());
                        }
                        rows.push((vals, set));
                    }
                    // A right row additionally stands alone when the left
                    // side's extra variables are absent (left subsumed) —
                    // covered below only when no match exists; with matches,
                    // the g2-only contribution is already inside `op` (the
                    // until transform includes g2's own states).
                }
                None if kind == JoinKind::RightTotal && left_subsumed => {
                    let set = op(&empty, rset);
                    if !set.is_empty() {
                        // Output order: left vars (all present on the right)
                        // then right-only vars.
                        let mut vals: Vec<Value> = Vec::with_capacity(vars.len());
                        for v in &self.vars {
                            let ri = other
                                .vars
                                .iter()
                                .position(|w| w == v)
                                .expect("left subsumed by right");
                            vals.push(rvals[ri].clone());
                        }
                        for &ri in &right_extra_idx {
                            vals.push(rvals[ri].clone());
                        }
                        rows.push((vals, set));
                    }
                }
                None => {}
            }
        }
        let _ = left_extra_idx;
        VarRelation::new(vars, rows)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    /// Rows require partners on both sides.
    Inner,
    /// Every right row contributes; a missing left partner acts as the
    /// empty interval set (when the left variables are subsumed).
    RightTotal,
}

fn enumerate(domains: &[Vec<Value>], inst: &mut Vec<Value>, f: &mut impl FnMut(&[Value])) {
    if inst.len() == domains.len() {
        f(inst);
        return;
    }
    let depth = inst.len();
    for v in &domains[depth] {
        inst.push(v.clone());
        enumerate(domains, inst, f);
        inst.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_temporal::Interval;

    fn set(ivs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_intervals(ivs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[allow(clippy::type_complexity)]
    fn rel(vars: &[&str], rows: &[(&[u64], &[(u64, u64)])]) -> VarRelation {
        VarRelation::new(
            vars.iter().map(|s| s.to_string()).collect(),
            rows.iter()
                .map(|(ids, ivs)| {
                    (
                        ids.iter().map(|&i| Value::Id(i)).collect(),
                        set(ivs),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn construction_merges_duplicates_and_drops_empty() {
        let r = VarRelation::new(
            vec!["o".into()],
            vec![
                (vec![Value::Id(1)], set(&[(0, 2)])),
                (vec![Value::Id(1)], set(&[(3, 5)])),
                (vec![Value::Id(2)], IntervalSet::empty()),
            ],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&[Value::Id(1)]), Some(&set(&[(0, 5)])));
        assert_eq!(r.get(&[Value::Id(2)]), None);
    }

    #[test]
    fn and_join_intersects_on_common_vars() {
        let a = rel(&["o"], &[(&[1], &[(0, 10)]), (&[2], &[(5, 8)])]);
        let b = rel(&["o"], &[(&[1], &[(5, 20)]), (&[3], &[(0, 1)])]);
        let j = a.and_join(&b);
        assert_eq!(j.len(), 1);
        assert_eq!(j.get(&[Value::Id(1)]), Some(&set(&[(5, 10)])));
    }

    #[test]
    fn and_join_cross_product_when_disjoint_vars() {
        let a = rel(&["o"], &[(&[1], &[(0, 10)])]);
        let b = rel(&["n"], &[(&[7], &[(5, 20)]), (&[8], &[(11, 12)])]);
        let j = a.and_join(&b);
        assert_eq!(j.vars(), &["o".to_string(), "n".to_string()]);
        assert_eq!(j.len(), 1); // (1,8) intersects empty
        assert_eq!(
            j.get(&[Value::Id(1), Value::Id(7)]),
            Some(&set(&[(5, 10)]))
        );
    }

    #[test]
    fn until_join_keeps_right_only_states() {
        // g2 holds for object 3 which never satisfies g1: Until still holds
        // on g2's intervals.
        let f = rel(&["o"], &[(&[1], &[(0, 4)])]);
        let g = rel(&["o"], &[(&[1], &[(5, 6)]), (&[3], &[(2, 3)])]);
        let j = f.until_join(&g);
        assert_eq!(j.get(&[Value::Id(1)]), Some(&set(&[(0, 6)])));
        assert_eq!(j.get(&[Value::Id(3)]), Some(&set(&[(2, 3)])));
    }

    #[test]
    fn until_join_inner_when_left_has_extra_vars() {
        // At the *relation* level, right rows lacking a left partner cannot
        // bind o and are dropped; the evaluator restores completeness by
        // expanding g over the domain first (eval::expand_for_until).
        let f = rel(&["o", "n"], &[(&[1, 7], &[(0, 4)])]);
        let g = rel(&["n"], &[(&[7], &[(5, 6)]), (&[9], &[(0, 1)])]);
        let j = f.until_join(&g);
        assert_eq!(j.len(), 1);
        assert_eq!(
            j.get(&[Value::Id(1), Value::Id(7)]),
            Some(&set(&[(0, 6)]))
        );
    }

    #[test]
    fn nullary_relations_cross_cleanly() {
        let t = VarRelation::nullary(set(&[(0, 100)]));
        let g = rel(&["o"], &[(&[4], &[(3, 9)])]);
        let j = t.and_join(&g);
        assert_eq!(j.get(&[Value::Id(4)]), Some(&set(&[(3, 9)])));
        // false Until g == g
        let f = VarRelation::nullary(IntervalSet::empty());
        let j = f.until_join(&g);
        assert_eq!(j.get(&[Value::Id(4)]), Some(&set(&[(3, 9)])));
    }

    #[test]
    fn or_union_requires_matching_vars() {
        let a = rel(&["o"], &[(&[1], &[(0, 2)])]);
        let b = rel(&["o"], &[(&[1], &[(4, 5)]), (&[2], &[(0, 0)])]);
        let u = a.or_union(&b).unwrap();
        assert_eq!(u.get(&[Value::Id(1)]), Some(&set(&[(0, 2), (4, 5)])));
        assert_eq!(u.len(), 2);
        let c = rel(&["n"], &[(&[1], &[(0, 2)])]);
        assert!(a.or_union(&c).is_err());
    }

    #[test]
    fn complement_over_domain() {
        let h = Horizon::new(10);
        let a = rel(&["o"], &[(&[1], &[(0, 4)])]);
        let domain = |_: &str| Ok(vec![Value::Id(1), Value::Id(2)]);
        let c = a.complement(h, domain).unwrap();
        assert_eq!(c.get(&[Value::Id(1)]), Some(&set(&[(5, 10)])));
        assert_eq!(c.get(&[Value::Id(2)]), Some(&set(&[(0, 10)])));
    }

    #[test]
    fn expand_adds_domain_vars() {
        let a = rel(&["o"], &[(&[1], &[(0, 4)])]);
        let domain = |_: &str| Ok(vec![Value::Id(7), Value::Id(8)]);
        let e = a
            .expand(&["o".to_string(), "n".to_string()], domain)
            .unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.get(&[Value::Id(1), Value::Id(7)]), Some(&set(&[(0, 4)])));
    }

    #[test]
    fn reorder_projects_and_merges() {
        let a = rel(
            &["o", "n"],
            &[(&[1, 7], &[(0, 2)]), (&[1, 8], &[(4, 6)])],
        );
        let p = a.reorder(&["o".to_string()]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(&[Value::Id(1)]), Some(&set(&[(0, 2), (4, 6)])));
        assert!(a.reorder(&["zzz".to_string()]).is_err());
    }

    #[test]
    fn map_sets_applies_transform() {
        let a = rel(&["o"], &[(&[1], &[(3, 5)])]);
        let m = a.map_sets(|s| s.eventually());
        assert_eq!(m.get(&[Value::Id(1)]), Some(&set(&[(0, 5)])));
    }
}
